module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Sched = Aaa.Schedule
module Cg = Aaa.Codegen

exception Deadlock of string

type config = {
  iterations : int;
  law : Timing_law.t;
  comm_jitter_frac : float;
  bcet_frac : float;
  durations : Aaa.Durations.t option;
  overrun_prob : float;
  overrun_factor : float;
  seed : int;
  condition : iteration:int -> var:string -> int;
  injection : Injection.t;
  recovery : Recovery.policy;
  bus_models : (string * Media.Bus.config) list;
}

let default_config =
  {
    iterations = 100;
    law = Timing_law.Uniform;
    comm_jitter_frac = 0.;
    bcet_frac = 0.5;
    durations = None;
    overrun_prob = 0.;
    overrun_factor = 1.5;
    seed = 42;
    condition = (fun ~iteration:_ ~var:_ -> 0);
    injection = Injection.none;
    recovery = Recovery.disabled;
    bus_models = [];
  }

type op_exec = {
  oe_iteration : int;
  oe_op : Alg.op_id;
  oe_operator : Arch.operator_id;
  oe_start : float;
  oe_finish : float;
  oe_skipped : bool;
  oe_failed : bool;
}

type comm_exec = {
  ce_iteration : int;
  ce_slot : Sched.comm_slot;
  ce_start : float;
  ce_finish : float;
}

type trace = {
  executive : Cg.t;
  period : float;
  iterations : int;
  ops : op_exec list;
  comms : comm_exec list;
  iteration_end : float array;
  overruns : int;
  lost_transfers : int;
  stale_reads : int;
  retransmissions : int;
  recovered_transfers : int;
  recovery_events : Recovery.event list;
  detection_latency : float option;
  switched_at : int option;
  bus_log : (string * Media.Bus.completion list) list;
  continuation : trace option;
}

(* identity of one hop of a transfer within one iteration *)
let slot_key (c : Sched.comm_slot) =
  ( (fst c.Sched.cm_src :> int),
    snd c.Sched.cm_src,
    (fst c.Sched.cm_dst :> int),
    snd c.Sched.cm_dst,
    c.Sched.cm_hop )

type operator_state = {
  os_id : Arch.operator_id;
  os_program : Cg.instr array;
  mutable os_pc : int;
  mutable os_iter : int;
  mutable os_time : float;
}

type medium_state = {
  ms_transfers : Sched.comm_slot array;
  mutable ms_index : int;
  mutable ms_iter : int;
  mutable ms_time : float;
}

let run_single ~(config : config) exe =
  if config.iterations <= 0 then invalid_arg "Machine.run: non-positive iteration count";
  let sched = exe.Cg.schedule in
  let alg = sched.Sched.algorithm in
  let arch = sched.Sched.architecture in
  let period = Alg.period alg in
  let rng = Numerics.Rng.create config.seed in
  let posted : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let finished : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let slot_table kind table key =
    match Hashtbl.find_opt table key with
    | Some arr -> arr
    | None ->
        let arr = Array.make config.iterations Float.nan in
        Hashtbl.replace table key arr;
        ignore kind;
        arr
  in
  let operators =
    List.map
      (fun (operator, body) ->
        { os_id = operator; os_program = Array.of_list body; os_pc = 0; os_iter = 0; os_time = 0. })
      exe.Cg.programs
  in
  let media =
    List.map
      (fun (_, transfers) ->
        { ms_transfers = Array.of_list transfers; ms_index = 0; ms_iter = 0; ms_time = 0. })
      exe.Cg.media_programs
  in
  let ops_log = ref [] in
  let comms_log = ref [] in
  let inj = config.injection in
  let have_inj = not (Injection.is_none inj) in
  (* shared-bus models: one fresh Media.Bus.t per modeled medium per
     run (each phase of a failover run gets its own, in its own frame) *)
  let buses =
    if config.bus_models = [] then [||]
    else begin
      let arr = Array.make (Arch.medium_count arch) None in
      List.iter
        (fun (bname, bcfg) ->
          match Arch.find_medium arch bname with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "[MEDIA004] Machine.run: bus model %S names no medium of architecture %S"
                   bname (Arch.name arch))
          | Some mid ->
              if Arch.medium_kind arch mid <> Arch.Bus then
                invalid_arg
                  (Printf.sprintf
                     "[MEDIA004] Machine.run: medium %S is not a shared bus"
                     bname);
              arr.((mid :> int)) <- Some (Media.Bus.create bcfg))
        config.bus_models;
      arr
    end
  in
  let have_bus = Array.length buses > 0 in
  let bus_of mid = if have_bus then buses.(mid) else None in
  let pol = config.recovery in
  let retrans_on = have_inj && Recovery.retransmission_enabled pol in
  (* per hop instance: the payload carried is stale (lost somewhere
     upstream); the slot itself always fires, so injected faults never
     block the executive *)
  let lost : (int * int * int * int * int, bool array) Hashtbl.t = Hashtbl.create 16 in
  let lost_arr key =
    match Hashtbl.find_opt lost key with
    | Some a -> a
    | None ->
        let a = Array.make config.iterations false in
        Hashtbl.replace lost key a;
        a
  in
  let lost_transfers = ref 0 and stale_reads = ref 0 in
  let retransmissions = ref 0 and recovered_transfers = ref 0 in
  let events = ref [] in
  (* retransmissions already spent, per medium and iteration *)
  let retry_used : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let operator_dead os =
    have_inj
    && inj.Injection.operator_failed ~operator:(Arch.operator_name arch os.os_id)
         ~time:os.os_time
  in
  let sample_exec_duration op operator =
    (* the WCET is the planned slot length; the BCET comes from the
       durations table when provided, else from [bcet_frac] *)
    let wcet =
      match List.find_opt (fun s -> s.Sched.cs_op = op) sched.Sched.comp with
      | Some s -> s.Sched.cs_duration
      | None -> 0.
    in
    let bcet =
      let from_table =
        Option.bind config.durations (fun table ->
            Aaa.Durations.bcet table ~op:(Alg.op_name alg op)
              ~operator:(Arch.operator_name arch operator))
      in
      match from_table with
      | Some b -> Float.min b wcet
      | None -> config.bcet_frac *. wcet
    in
    let nominal = Timing_law.sample config.law rng ~bcet ~wcet in
    if config.overrun_prob > 0. && Numerics.Rng.float rng 1. < config.overrun_prob then
      nominal *. config.overrun_factor
    else nominal
  in
  let sample_comm_duration planned =
    if config.comm_jitter_frac <= 0. then planned
    else
      let f = Float.min 1. config.comm_jitter_frac in
      if planned <= 0. then planned
      else Numerics.Rng.uniform rng ((1. -. f) *. planned) planned
  in
  (* one attempt to advance an operator; returns true on progress *)
  let step_operator os =
    if os.os_iter >= config.iterations then false
    else
      match os.os_program.(os.os_pc) with
      | Cg.Wait_period ->
          os.os_time <- Float.max os.os_time (float_of_int os.os_iter *. period);
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Exec op ->
          let skipped =
            match Alg.op_cond alg op with
            | None -> false
            | Some { Alg.var; value } -> config.condition ~iteration:os.os_iter ~var <> value
          in
          let failed = (not skipped) && operator_dead os in
          let start = os.os_time in
          let finish =
            if skipped || failed then start
            else begin
              let d = sample_exec_duration op os.os_id in
              match
                if have_inj then
                  inj.Injection.overrun ~iteration:os.os_iter ~op:(Alg.op_name alg op)
                else None
              with
              | Some factor -> start +. (d *. factor)
              | None -> start +. d
            end
          in
          os.os_time <- finish;
          ops_log :=
            {
              oe_iteration = os.os_iter;
              oe_op = op;
              oe_operator = os.os_id;
              oe_start = start;
              oe_finish = finish;
              oe_skipped = skipped;
              oe_failed = failed;
            }
            :: !ops_log;
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Send c ->
          let arr = slot_table `Posted posted (slot_key c) in
          arr.(os.os_iter) <- os.os_time;
          (* a dead producer posts instantly, but the value it posts is
             the previous iteration's (its outputs are frozen) *)
          if operator_dead os then begin
            let la = lost_arr (slot_key c) in
            if not la.(os.os_iter) then begin
              la.(os.os_iter) <- true;
              incr lost_transfers
            end
          end;
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Recv c ->
          let arr = slot_table `Finished finished (slot_key c) in
          let t = arr.(os.os_iter) in
          if Float.is_nan t then false
          else begin
            os.os_time <- Float.max os.os_time t;
            if (have_inj || have_bus) && (lost_arr (slot_key c)).(os.os_iter) then begin
              incr stale_reads;
              if pol.Recovery.freshness_watchdog then
                events :=
                  Recovery.Stale_detected
                    {
                      time = os.os_time;
                      iteration = os.os_iter;
                      op = Alg.op_name alg (fst c.Sched.cm_dst);
                    }
                  :: !events
            end;
            os.os_pc <- os.os_pc + 1;
            true
          end
  in
  let wrap_operator os =
    if os.os_iter < config.iterations && os.os_pc >= Array.length os.os_program then begin
      os.os_iter <- os.os_iter + 1;
      os.os_pc <- 0
    end
  in
  let step_medium ms =
    if ms.ms_iter >= config.iterations || Array.length ms.ms_transfers = 0 then false
    else begin
      let c = ms.ms_transfers.(ms.ms_index) in
      (* hop 0 waits for the producer's post; later hops wait for the
         previous hop's completion *)
      let posted_arr =
        if c.Sched.cm_hop = 0 then slot_table `Posted posted (slot_key c)
        else
          slot_table `Finished finished
            (let a, b, cc, d, hop = slot_key c in
             (a, b, cc, d, hop - 1))
      in
      let t_posted = posted_arr.(ms.ms_iter) in
      if Float.is_nan t_posted then false
      else begin
        let bus = bus_of (c.Sched.cm_medium :> int) in
        (* with a bus model attached, the transfer becomes a frame
           arbitrating against the bus's other traffic; without one,
           the fixed-duration path below is bit-for-bit the original *)
        let start, finish0, bus_dropped =
          match bus with
          | None ->
              let start = Float.max ms.ms_time t_posted in
              (start, start +. sample_comm_duration c.Sched.cm_duration, false)
          | Some b ->
              let release = Float.max ms.ms_time t_posted in
              let node = (c.Sched.cm_from :> int) in
              let duration = sample_comm_duration c.Sched.cm_duration in
              if Media.Bus.node_off b ~node ~time:release then
                (* a bus-off interface posts nothing: the slot still
                   elapses (no bus occupancy) so the Recv unblocks *)
                (release, release +. duration, true)
              else
                let comp =
                  Media.Bus.transmit b ~ident:(Media.Bus.slot_identifier c)
                    ~node ~release ~duration
                in
                ( comp.Media.Bus.c_start,
                  comp.Media.Bus.c_finish,
                  comp.Media.Bus.c_dropped )
        in
        let finish = ref finish0 in
        if bus_dropped then begin
          let la = lost_arr (slot_key c) in
          if not la.(ms.ms_iter) then begin
            la.(ms.ms_iter) <- true;
            incr lost_transfers
          end
        end;
        if have_inj || have_bus then begin
          let inherited =
            let key =
              if c.Sched.cm_hop = 0 then slot_key c
              else
                let a, b, d, e, hop = slot_key c in
                (a, b, d, e, hop - 1)
            in
            (lost_arr key).(ms.ms_iter)
          in
          let medium_name = Arch.medium_name arch c.Sched.cm_medium in
          let dropped =
            have_inj
            && (inj.Injection.medium_down ~medium:medium_name ~time:start
               || inj.Injection.transfer_lost ~iteration:ms.ms_iter ~slot:c)
          in
          if inherited then
            (* stale at the source (or already dropped by the bus): a
               retransmission would resend the same stale payload, so
               the mark just propagates *)
            (lost_arr (slot_key c)).(ms.ms_iter) <- true
          else if dropped then begin
            (* bounded retransmission with exponential backoff; every
               retry extends the slot, consuming real medium time *)
            let delivered = ref false in
            let attempts = ref 0 in
            if retrans_on then begin
              let mkey = ((c.Sched.cm_medium :> int), ms.ms_iter) in
              let used =
                ref (Option.value (Hashtbl.find_opt retry_used mkey) ~default:0)
              in
              while
                (not !delivered)
                && !attempts < pol.Recovery.max_retries
                && !used < pol.Recovery.retry_budget
              do
                incr attempts;
                incr used;
                incr retransmissions;
                let retry_start =
                  !finish +. Recovery.backoff_delay pol ~attempt:!attempts
                in
                (* a retransmission re-arbitrates like any other frame
                   when a bus model is attached *)
                let retry_bus_dropped =
                  match bus with
                  | None ->
                      finish :=
                        retry_start +. sample_comm_duration c.Sched.cm_duration;
                      false
                  | Some b ->
                      let comp =
                        Media.Bus.transmit b
                          ~ident:(Media.Bus.slot_identifier c)
                          ~node:(c.Sched.cm_from :> int)
                          ~release:retry_start
                          ~duration:(sample_comm_duration c.Sched.cm_duration)
                      in
                      finish := comp.Media.Bus.c_finish;
                      comp.Media.Bus.c_dropped
                in
                delivered :=
                  not
                    (retry_bus_dropped
                    || inj.Injection.medium_down ~medium:medium_name
                         ~time:retry_start
                    || inj.Injection.retry_lost ~attempt:!attempts
                         ~iteration:ms.ms_iter ~slot:c)
              done;
              Hashtbl.replace retry_used mkey !used;
              events :=
                (if !delivered then
                   Recovery.Transfer_recovered
                     {
                       time = !finish;
                       iteration = ms.ms_iter;
                       medium = medium_name;
                       attempts = !attempts;
                     }
                 else
                   Recovery.Retries_exhausted
                     {
                       time = !finish;
                       iteration = ms.ms_iter;
                       medium = medium_name;
                       attempts = !attempts;
                     })
                :: !events
            end;
            if !delivered then incr recovered_transfers
            else begin
              (lost_arr (slot_key c)).(ms.ms_iter) <- true;
              incr lost_transfers
            end
          end
        end;
        let fin_arr = slot_table `Finished finished (slot_key c) in
        fin_arr.(ms.ms_iter) <- !finish;
        ms.ms_time <- !finish;
        comms_log :=
          { ce_iteration = ms.ms_iter; ce_slot = c; ce_start = start; ce_finish = !finish }
          :: !comms_log;
        if ms.ms_index + 1 >= Array.length ms.ms_transfers then begin
          ms.ms_index <- 0;
          ms.ms_iter <- ms.ms_iter + 1
        end
        else ms.ms_index <- ms.ms_index + 1;
        true
      end
    end
  in
  let all_done () =
    List.for_all (fun os -> os.os_iter >= config.iterations) operators
    && List.for_all
         (fun ms -> ms.ms_iter >= config.iterations || Array.length ms.ms_transfers = 0)
         media
  in
  let describe_blocked () =
    let operator_desc =
      List.filter_map
        (fun os ->
          if os.os_iter >= config.iterations then None
          else
            Some
              (Printf.sprintf "%s blocked at pc=%d (iteration %d)"
                 (Arch.operator_name arch os.os_id)
                 os.os_pc os.os_iter))
        operators
    in
    String.concat "; " operator_desc
  in
  let rec drive () =
    if not (all_done ()) then begin
      let progress = ref false in
      List.iter
        (fun os ->
          (* advance greedily while possible to keep the loop cheap *)
          while step_operator os do
            progress := true;
            wrap_operator os
          done)
        operators;
      List.iter (fun ms -> while step_medium ms do progress := true done) media;
      if not !progress then
        raise (Deadlock (Printf.sprintf "executive deadlock: %s" (describe_blocked ())));
      drive ()
    end
  in
  drive ();
  let ops = List.rev !ops_log in
  let comms = List.rev !comms_log in
  let iteration_end = Array.make config.iterations 0. in
  List.iter
    (fun oe ->
      iteration_end.(oe.oe_iteration) <- Float.max iteration_end.(oe.oe_iteration) oe.oe_finish)
    ops;
  let overruns = ref 0 in
  Array.iteri
    (fun k t_end -> if t_end > (float_of_int (k + 1) *. period) +. 1e-9 then incr overruns)
    iteration_end;
  let bus_log =
    if not have_bus then []
    else begin
      let horizon = float_of_int config.iterations *. period in
      List.filter_map
        (fun (mid : Arch.medium_id) ->
          match buses.((mid :> int)) with
          | None -> None
          | Some b ->
              Media.Bus.drain b ~until:horizon;
              Some (Arch.medium_name arch mid, Media.Bus.log b))
        (Arch.media arch)
    end
  in
  {
    executive = exe;
    period;
    iterations = config.iterations;
    ops;
    comms;
    iteration_end;
    overruns = !overruns;
    lost_transfers = !lost_transfers;
    stale_reads = !stale_reads;
    retransmissions = !retransmissions;
    recovered_transfers = !recovered_transfers;
    recovery_events = List.sort Recovery.compare_event !events;
    detection_latency = None;
    switched_at = None;
    bus_log;
    continuation = None;
  }

(* re-express an injection in the failover executive's frame, which
   starts at iteration [iterations] / absolute time [offset] *)
let shift_injection (i : Injection.t) ~iterations ~offset =
  {
    Injection.operator_failed =
      (fun ~operator ~time -> i.Injection.operator_failed ~operator ~time:(time +. offset));
    medium_down =
      (fun ~medium ~time -> i.Injection.medium_down ~medium ~time:(time +. offset));
    transfer_lost =
      (fun ~iteration ~slot ->
        i.Injection.transfer_lost ~iteration:(iteration + iterations) ~slot);
    retry_lost =
      (fun ~attempt ~iteration ~slot ->
        i.Injection.retry_lost ~attempt ~iteration:(iteration + iterations) ~slot);
    overrun =
      (fun ~iteration ~op -> i.Injection.overrun ~iteration:(iteration + iterations) ~op);
  }

let shift_event ~offset ~k = function
  | Recovery.Stale_detected e ->
      Recovery.Stale_detected
        { e with time = e.time +. offset; iteration = e.iteration + k }
  | Recovery.Transfer_recovered e ->
      Recovery.Transfer_recovered
        { e with time = e.time +. offset; iteration = e.iteration + k }
  | Recovery.Retries_exhausted e ->
      Recovery.Retries_exhausted
        { e with time = e.time +. offset; iteration = e.iteration + k }
  | Recovery.Failstop_confirmed e ->
      Recovery.Failstop_confirmed { e with time = e.time +. offset }
  | Recovery.Mode_switched e ->
      Recovery.Mode_switched { e with time = e.time +. offset; iteration = e.iteration + k }
  | Recovery.Voter_switched e ->
      Recovery.Voter_switched { e with time = e.time +. offset; iteration = e.iteration + k }

let run ?(config = default_config) exe =
  if config.iterations <= 0 then invalid_arg "Machine.run: non-positive iteration count";
  let pol = config.recovery in
  let sched = exe.Cg.schedule in
  let period = Alg.period sched.Sched.algorithm in
  let confirmation =
    if Injection.is_none config.injection then None
    else
      Recovery.confirm pol ~operator_failed:config.injection.Injection.operator_failed
        ~operators:
          (List.map
             (Arch.operator_name sched.Sched.architecture)
             (Arch.operators sched.Sched.architecture))
        ~period ~iterations:config.iterations
  in
  match confirmation with
  | None -> run_single ~config exe
  | Some conf -> (
      let confirmed =
        Recovery.Failstop_confirmed
          {
            time = conf.Recovery.confirm_time;
            operator = conf.Recovery.operator;
            fail_time = conf.Recovery.fail_time;
          }
      in
      let latency = Some (conf.Recovery.confirm_time -. conf.Recovery.fail_time) in
      let k_switch =
        Recovery.switch_iteration pol ~confirm_time:conf.Recovery.confirm_time ~period
      in
      match List.assoc_opt conf.Recovery.operator pol.Recovery.failover with
      | Some failover_exe when k_switch < config.iterations ->
          (* two-phase run: the nominal executive up to the switch
             release, the failover executive — fed the same injection
             and condition stream re-expressed in its frame — after it.
             The continuation trace stays in its own (failover) frame
             so it remains self-consistent; the top-level counters are
             whole-run totals. *)
          let offset = float_of_int k_switch *. period in
          let phase1 = run_single ~config:{ config with iterations = k_switch } exe in
          let phase2 =
            run_single
              ~config:
                {
                  config with
                  iterations = config.iterations - k_switch;
                  injection = shift_injection config.injection ~iterations:k_switch ~offset;
                  condition =
                    (fun ~iteration ~var ->
                      config.condition ~iteration:(iteration + k_switch) ~var);
                  recovery = { pol with Recovery.failover = [] };
                }
              failover_exe
          in
          let iteration_end = Array.make config.iterations 0. in
          Array.blit phase1.iteration_end 0 iteration_end 0 k_switch;
          Array.iteri
            (fun k t -> iteration_end.(k_switch + k) <- t +. offset)
            phase2.iteration_end;
          let events =
            phase1.recovery_events
            @ [
                confirmed;
                Recovery.Mode_switched
                  { time = offset; iteration = k_switch; operator = conf.Recovery.operator };
              ]
            @ List.map (shift_event ~offset ~k:k_switch) phase2.recovery_events
            |> List.sort Recovery.compare_event
          in
          {
            executive = exe;
            period;
            iterations = config.iterations;
            ops = phase1.ops;
            comms = phase1.comms;
            iteration_end;
            overruns = phase1.overruns + phase2.overruns;
            lost_transfers = phase1.lost_transfers + phase2.lost_transfers;
            stale_reads = phase1.stale_reads + phase2.stale_reads;
            retransmissions = phase1.retransmissions + phase2.retransmissions;
            recovered_transfers = phase1.recovered_transfers + phase2.recovered_transfers;
            recovery_events = events;
            detection_latency = latency;
            switched_at = Some k_switch;
            bus_log = phase1.bus_log;
            continuation = Some phase2;
          }
      | Some _ | None ->
          (* confirmed, but no failover executive (or none needed
             within the run): the detection still dates the event *)
          let t = run_single ~config exe in
          {
            t with
            recovery_events =
              List.sort Recovery.compare_event (confirmed :: t.recovery_events);
            detection_latency = latency;
          })

let rec instants trace op =
  let arr = Array.make trace.iterations Float.nan in
  List.iter
    (fun oe ->
      if oe.oe_op = op && (not oe.oe_skipped) && not oe.oe_failed then
        arr.(oe.oe_iteration) <- oe.oe_finish)
    trace.ops;
  (match (trace.continuation, trace.switched_at) with
  | Some cont, Some k_switch ->
      let offset = float_of_int k_switch *. trace.period in
      Array.iteri
        (fun k t -> if not (Float.is_nan t) then arr.(k_switch + k) <- t +. offset)
        (instants cont op)
  | _ -> ());
  arr

let latencies_of trace ids =
  List.map
    (fun op ->
      let inst = instants trace op in
      let lat =
        Array.mapi
          (fun k t -> if Float.is_nan t then t else t -. (float_of_int k *. trace.period))
          inst
      in
      (op, lat))
    ids

let sampling_latencies trace =
  latencies_of trace (Alg.sensors trace.executive.Cg.schedule.Sched.algorithm)

let actuation_latencies trace =
  latencies_of trace (Alg.actuators trace.executive.Cg.schedule.Sched.algorithm)

(* Per-iteration freshness of the actuated outputs: every actuator ran
   to completion this release (not skipped, not failed) and the
   watchdog dated no stale read during the iteration.  This is the
   evidence stream Standby's output voter consumes. *)
let fresh_actuations trace =
  let fresh = Array.make trace.iterations true in
  List.iter
    (fun op ->
      Array.iteri (fun k t -> if Float.is_nan t then fresh.(k) <- false) (instants trace op))
    (Alg.actuators trace.executive.Cg.schedule.Sched.algorithm);
  List.iter
    (function
      | Recovery.Stale_detected { iteration; _ }
        when iteration >= 0 && iteration < trace.iterations ->
          fresh.(iteration) <- false
      | _ -> ())
    trace.recovery_events;
  fresh

let utilization trace =
  let arch = trace.executive.Cg.schedule.Sched.architecture in
  let horizon = float_of_int trace.iterations *. trace.period in
  (* busy time per operator *name*: the failover architecture renumbers
     the surviving operators, so a mode switch is stitched by name *)
  let rec busy_by_name t =
    let arch_t = t.executive.Cg.schedule.Sched.architecture in
    let own =
      List.map
        (fun operator ->
          ( Arch.operator_name arch_t operator,
            List.fold_left
              (fun acc oe ->
                if oe.oe_operator = operator && not oe.oe_skipped then
                  acc +. (oe.oe_finish -. oe.oe_start)
                else acc)
              0. t.ops ))
        (Arch.operators arch_t)
    in
    match t.continuation with
    | None -> own
    | Some cont ->
        let rest = busy_by_name cont in
        List.map
          (fun (name, b) ->
            (name, b +. Option.value (List.assoc_opt name rest) ~default:0.))
          own
  in
  let busy = busy_by_name trace in
  List.map
    (fun operator ->
      let name = Arch.operator_name arch operator in
      (operator, Option.value (List.assoc_opt name busy) ~default:0. /. horizon))
    (Arch.operators arch)

let latencies_csv trace =
  let alg = trace.executive.Cg.schedule.Sched.algorithm in
  let columns =
    List.map (fun (op, lat) -> ("Ls_" ^ Alg.op_name alg op, lat)) (sampling_latencies trace)
    @ List.map
        (fun (op, lat) -> ("La_" ^ Alg.op_name alg op, lat))
        (actuation_latencies trace)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    ("iteration," ^ String.concat "," (List.map fst columns) ^ "\n");
  for k = 0 to trace.iterations - 1 do
    Buffer.add_string buf (string_of_int k);
    List.iter
      (fun (_, lat) -> Buffer.add_string buf (Printf.sprintf ",%.9g" lat.(k)))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let rec order_conformant trace =
  let sched = trace.executive.Cg.schedule in
  (* iterations executed by *this* executive: everything before the
     mode switch when one happened *)
  let phase_iterations =
    match trace.switched_at with Some k -> k | None -> trace.iterations
  in
  (* on every operator, executions must follow the scheduled sequence
     within each iteration, without overlap *)
  let ok = ref true in
  List.iter
    (fun operator ->
      let expected = List.map (fun s -> s.Sched.cs_op) (Sched.on_operator sched operator) in
      for k = 0 to phase_iterations - 1 do
        let actual =
          List.filter_map
            (fun oe ->
              if oe.oe_operator = operator && oe.oe_iteration = k then Some oe else None)
            trace.ops
        in
        let names = List.map (fun oe -> oe.oe_op) actual in
        if names <> expected then ok := false;
        let rec overlap = function
          | a :: (b :: _ as rest) ->
              if a.oe_finish > b.oe_start +. 1e-9 then ok := false;
              overlap rest
          | [ _ ] | [] -> ()
        in
        overlap actual
      done)
    (Arch.operators sched.Sched.architecture);
  !ok && match trace.continuation with Some cont -> order_conformant cont | None -> true
