(** Hot-standby replica execution with deterministic output voting.

    PR 4's recovery path tolerates a fail-stop by blackout-then-switch:
    the plant runs open-loop from the failure until
    [confirm_time + blackout], then the failover executive takes over.
    This module removes the blackout entirely: the failover copy of the
    protected operator's work (the replica-pinned degraded schedule
    from [Fault.Degrade]) runs {e concurrently} on the surviving
    processors every period, publishing its outputs through the same
    media model, and a deterministic {e output voter} selects the
    actuated stream each period:

    - {e primary-preferred}: while the primary's actuations are fresh
      (every actuator completed, no stale read dated by the watchdog —
      {!Machine.fresh_actuations}), its value is actuated;
    - {e freshness tie-break}: the period the primary goes stale the
      voter falls through to the standby stream, which is already live
      — zero blackout;
    - {e pinning on heartbeat evidence}: once the same supervisor
      arithmetic that drives the mode switch ({!Recovery.confirm})
      confirms the protected operator's fail-stop, the standby stream
      is pinned permanently and a {!Recovery.Voter_switched} event is
      dated.

    The voter is a pure function of the two traces' dated values, so
    the whole construction inherits the executives' bit-for-bit
    determinism contract.  With zero injected faults every vote is
    [Primary] and the voted actuation stream equals the plain
    executive's — the no-fault path is unchanged (QCheck-verified). *)

type vote = Primary | Standby | Held

val vote_name : vote -> string

type decision = {
  d_iteration : int;
  d_vote : vote;
  d_time : float;
      (** actuation instant of the voted stream ([nan] when [Held]) *)
  d_diverged : bool;
      (** both streams fresh but their actuation dates differ *)
}

type trace = {
  protects : string;  (** the operator whose fail-stop is covered *)
  primary : Machine.trace;
  replica : Machine.trace;
  decisions : decision array;  (** one per iteration *)
  takeover : (int * float) option;
      (** first standby-voted release and its actuation instant *)
  divergences : int list;  (** iterations with [d_diverged] *)
  events : Recovery.event list;
      (** primary stream events plus the voter's, chronological *)
}

val run :
  ?config:Machine.config ->
  protects:string ->
  standby:Aaa.Codegen.t ->
  Aaa.Codegen.t ->
  trace
(** [run ~protects ~standby exe] executes the primary executive [exe]
    and the replica executive [standby] (the failover copy for
    operator [protects], from [Fault.Degrade.failover_executives])
    concurrently under the same config — same seed, same injection —
    and votes per period.  Neither stream mode-switches mid-run; the
    replica's architecture excludes [protects], so the injected
    fail-stop only silences the primary.  The freshness tie-break
    needs [config.recovery.freshness_watchdog] on to see stale reads.
    Raises [Invalid_argument] when [protects] is not an operator of
    [exe]'s architecture. *)

val votes : trace -> vote array

val tally : trace -> int * int * int
(** [(primary, standby, held)] vote counts. *)

val actuated_instants : trace -> (Aaa.Algorithm.op_id * float array) list
(** Per actuator of the primary algorithm, the voted per-iteration
    actuation instants: the primary's where the vote is [Primary], the
    replica's where [Standby] (matched by operation name), [nan] where
    [Held].  With zero faults this equals [Machine.instants] of the
    plain run. *)

val pp_decision : Format.formatter -> decision -> unit
val pp : Format.formatter -> trace -> unit
