type t = {
  operator_failed : operator:string -> time:float -> bool;
  medium_down : medium:string -> time:float -> bool;
  transfer_lost : iteration:int -> slot:Aaa.Schedule.comm_slot -> bool;
  retry_lost : attempt:int -> iteration:int -> slot:Aaa.Schedule.comm_slot -> bool;
  overrun : iteration:int -> op:string -> float option;
}

let none =
  {
    operator_failed = (fun ~operator:_ ~time:_ -> false);
    medium_down = (fun ~medium:_ ~time:_ -> false);
    transfer_lost = (fun ~iteration:_ ~slot:_ -> false);
    retry_lost = (fun ~attempt:_ ~iteration:_ ~slot:_ -> false);
    overrun = (fun ~iteration:_ ~op:_ -> None);
  }

let make ?operator_failed ?medium_down ?transfer_lost ?retry_lost ?overrun () =
  {
    operator_failed = Option.value operator_failed ~default:none.operator_failed;
    medium_down = Option.value medium_down ~default:none.medium_down;
    transfer_lost = Option.value transfer_lost ~default:none.transfer_lost;
    retry_lost = Option.value retry_lost ~default:none.retry_lost;
    overrun = Option.value overrun ~default:none.overrun;
  }

(* field-wise physical comparison: catches structurally-empty
   injections assembled by callers from [none]'s decision functions
   (e.g. [make ()] or [{ none with ... }] left at the defaults), not
   just the [none] value itself *)
let is_none t =
  t == none
  || (t.operator_failed == none.operator_failed
     && t.medium_down == none.medium_down
     && t.transfer_lost == none.transfer_lost
     && t.retry_lost == none.retry_lost
     && t.overrun == none.overrun)
