type t = {
  operator_failed : operator:string -> time:float -> bool;
  medium_down : medium:string -> time:float -> bool;
  transfer_lost : iteration:int -> slot:Aaa.Schedule.comm_slot -> bool;
  overrun : iteration:int -> op:string -> float option;
}

let none =
  {
    operator_failed = (fun ~operator:_ ~time:_ -> false);
    medium_down = (fun ~medium:_ ~time:_ -> false);
    transfer_lost = (fun ~iteration:_ ~slot:_ -> false);
    overrun = (fun ~iteration:_ ~op:_ -> None);
  }

let is_none t = t == none
