(** Structural fault injection into the executive simulators.

    The timing-level config knobs of {!Machine} and {!Async} (overrun
    probability, comm jitter) model a {e faulty characterisation}; an
    injection models {e structural} faults — a processor that
    fail-stops, a medium that goes dark for a window, messages lost on
    the wire, correlated WCET-overrun bursts.  The record is a set of
    pure decision functions so a caller (typically
    [Fault.Scenario.injection]) can precompute every decision from a
    seed and keep runs bit-for-bit reproducible.

    Injected faults never block the executive: a lost transfer still
    consumes its slot (the carrier departs, the payload is stale), a
    dead operator's program runs instantly posting frozen values — so
    the consumer falls back to the previous iteration's value and the
    trace counts a {e freshness violation} instead of deadlocking.
    When a {!Recovery.policy} enables retransmission, a dropped
    transfer is retried and each retry's fate is decided by
    [retry_lost] (a fresh coordinate per attempt keeps the decision
    streams independent) plus [medium_down] at the retry's departure
    time. *)

type t = {
  operator_failed : operator:string -> time:float -> bool;
      (** fail-stop: true once the operator is dead at [time] (absolute
          simulation time).  Must be monotone in [time] for a given
          operator. *)
  medium_down : medium:string -> time:float -> bool;
      (** outage window: true while the medium cannot carry data at
          [time]; transfers departing inside a window lose their
          payload. *)
  transfer_lost : iteration:int -> slot:Aaa.Schedule.comm_slot -> bool;
      (** per-transfer message loss (decided per iteration and hop). *)
  retry_lost : attempt:int -> iteration:int -> slot:Aaa.Schedule.comm_slot -> bool;
      (** whether retransmission [attempt] (1-based) of this transfer
          instance is lost too — only consulted when a
          {!Recovery.policy} enables retries. *)
  overrun : iteration:int -> op:string -> float option;
      (** [Some f] stretches the operation's drawn duration by factor
          [f > 1] at that iteration (correlated bursts); [None] leaves
          the timing law alone. *)
}

val none : t
(** No structural faults — the default of both executors. *)

val make :
  ?operator_failed:(operator:string -> time:float -> bool) ->
  ?medium_down:(medium:string -> time:float -> bool) ->
  ?transfer_lost:(iteration:int -> slot:Aaa.Schedule.comm_slot -> bool) ->
  ?retry_lost:(attempt:int -> iteration:int -> slot:Aaa.Schedule.comm_slot -> bool) ->
  ?overrun:(iteration:int -> op:string -> float option) ->
  unit ->
  t
(** Smart constructor: omitted decisions share {!none}'s functions, so
    a partial injection stays cheap and [make ()] {e is} recognised by
    {!is_none}. *)

val is_none : t -> bool
(** Structural check: true for {!none} itself and for any injection
    whose every decision function is (physically) {!none}'s — lets the
    executors skip the bookkeeping entirely on fault-free runs,
    including ones assembled by callers via {!make} or record update
    of {!none}. *)
