(** Online fault detection & recovery policies for the simulated
    executives.

    PR 1 made injected faults {e observable} (stale reads, frozen
    values); this module makes them {e detectable and recoverable}
    while the executive runs.  A {!policy} bundles three mechanisms:

    - {e freshness watchdogs}: every [Recv] whose payload went stale
      under the injection raises a dated {!event} instead of failing
      silently;
    - {e bounded retransmission}: a transfer dropped on the wire is
      retried up to [max_retries] times with deterministic exponential
      backoff, within a per-medium per-period [retry_budget].  Retries
      consume real medium time, so recovery can itself cause overruns;
    - {e heartbeat supervision}: an operator is expected to prove
      liveness at every periodic release; after [heartbeat_k]
      consecutive misses the fail-stop is {e confirmed}
      ([heartbeat_timeout] after the last missed release) and — after a
      reconfiguration [blackout] — the executive switches to the
      matching precomputed failover executive from [failover] (see
      [Fault.Degrade.failover_table]).

    Everything here is pure policy and arithmetic: the module holds no
    state and never runs anything, so {!Machine} can depend on it
    without a cycle, and the supervisor's decisions are a pure function
    of the injection — bit-for-bit reproducible and independent of the
    run's sampled jitter.

    Determinism contract: heartbeat observation happens at the
    periodic releases [k·period], so confirmation and switch instants
    depend only on the injection's [operator_failed] predicate (which
    must be monotone in time), never on sampled durations.  Retry
    {e outcomes} are decided by the injection's [retry_lost] hash and
    the medium clock, both reproducible from the seed. *)

type policy = {
  freshness_watchdog : bool;
      (** date stale [Recv]s as {!Stale_detected} events *)
  max_retries : int;  (** retransmission attempts per lost transfer *)
  retry_budget : int;
      (** retransmissions allowed per medium within one period *)
  backoff_base : float;  (** backoff before the first retry, seconds *)
  backoff_factor : float;
      (** geometric growth of the backoff (>= 1) *)
  heartbeat_timeout : float;
      (** how long after a periodic release a missing heartbeat is
          declared missed; [0.] disables the supervisor *)
  heartbeat_k : int;
      (** consecutive missed heartbeats that confirm a fail-stop *)
  blackout : float;
      (** reconfiguration blackout between confirmation and the
          earliest switch release, seconds *)
  failover : (string * Aaa.Codegen.t) list;
      (** per failed operator, the executive generated from its
          precomputed failover schedule *)
}

val disabled : policy
(** Everything off — the default of both executors. *)

val make :
  ?freshness_watchdog:bool ->
  ?max_retries:int ->
  ?retry_budget:int ->
  ?backoff_base:float ->
  ?backoff_factor:float ->
  ?heartbeat_timeout:float ->
  ?heartbeat_k:int ->
  ?blackout:float ->
  ?failover:(string * Aaa.Codegen.t) list ->
  period:float ->
  unit ->
  policy
(** A fully enabled policy with period-relative defaults: watchdog on,
    2 retries within a budget of 4, backoff starting at [period/50]
    doubling per attempt, heartbeat timeout of one [period] with
    [k = 2], a blackout of one [period], no failover executives.
    Raises [Invalid_argument] (with a ["[REC001]"] prefix recovered by
    the verify catalogue) on non-positive period, negative counts or
    times, or a backoff factor below 1. *)

(** {2 Events}

    Dated observations of the detection / recovery machinery, in
    absolute simulation time. *)

type event =
  | Stale_detected of { time : float; iteration : int; op : string }
      (** a [Recv] consumed a stale payload — the freshness watchdog
          fired at the consuming operation *)
  | Transfer_recovered of {
      time : float;
      iteration : int;
      medium : string;
      attempts : int;
    }  (** a retransmission delivered the payload after [attempts] retries *)
  | Retries_exhausted of {
      time : float;
      iteration : int;
      medium : string;
      attempts : int;
    }
      (** the retry chain gave up ([attempts] may be 0 when the budget
          was already spent) — the payload stays lost *)
  | Failstop_confirmed of { time : float; operator : string; fail_time : float }
      (** [heartbeat_k] consecutive heartbeats missed; [fail_time] is
          the actual failure instant (recovered by bisection) *)
  | Mode_switched of { time : float; iteration : int; operator : string }
      (** the executive switched to [operator]'s failover schedule at
          release [iteration] *)
  | Voter_switched of { time : float; iteration : int; operator : string }
      (** {!Standby}'s output voter pinned the hot-standby stream of
          failed [operator] from release [iteration] on — zero
          blackout, since the replica was already live *)

val event_time : event -> float

val compare_event : event -> event -> int
(** Chronological, with a deterministic structural tiebreak — total
    regardless of the executors' interleaving. *)

val pp_event : Format.formatter -> event -> unit

(** {2 Pure supervisor arithmetic} *)

val retransmission_enabled : policy -> bool
val supervisor_enabled : policy -> bool

val backoff_delay : policy -> attempt:int -> float
(** [backoff_base · backoff_factor^(attempt−1)] for [attempt >= 1]. *)

val worst_case_retry_time : policy -> transfer_duration:float -> float
(** Time one transfer's full retry chain can consume on its medium:
    [Σ_{a=1..max_retries} (backoff a + transfer_duration)] — the
    quantity the REC002 verify rule holds against the period. *)

val first_failure : failed:(time:float -> bool) -> horizon:float -> float option
(** Earliest failure instant of a monotone fail-stop predicate over
    [\[0, horizon\]], by bisection; [None] if alive at [horizon]. *)

type confirmation = {
  operator : string;
  fail_time : float;  (** bisected actual failure instant *)
  first_missed : int;  (** first release whose heartbeat was missed *)
  confirm_time : float;
      (** [(first_missed + heartbeat_k − 1)·period + heartbeat_timeout] *)
}

val confirm :
  policy ->
  operator_failed:(operator:string -> time:float -> bool) ->
  operators:string list ->
  period:float ->
  iterations:int ->
  confirmation option
(** The earliest fail-stop the heartbeat supervisor confirms within
    the run, across [operators] (ties broken by list order).  [None]
    when the supervisor is disabled or no failure accumulates
    [heartbeat_k] misses before the run ends. *)

val switch_iteration : policy -> confirm_time:float -> period:float -> int
(** Index of the first periodic release at or after
    [confirm_time + blackout] — where the mode switch takes effect. *)
