(** Baseline executor: a {e time-triggered table without
    synchronisation}.

    The classic alternative to SynDEx's synchronised executive: every
    operation, every transfer slot and every buffer read is fired at
    its {e static schedule offset} within the period, with no run-time
    synchronisation at all (a TTP/FlexRay-style static table).  Under
    the WCET contract this is correct — data is always posted before
    its bus slot departs and arrives before its planned read instant.
    But when an execution overruns its WCET (faulty characterisation,
    unmodelled interference), the fresh value misses its bus slot or
    its read instant and the consumer silently uses the {e previous}
    iteration's value, while the synchronised executive of {!Machine}
    blocks and stays coherent.

    {!run} counts those {e freshness violations}; the comparison
    against {!Machine} under injected overruns is the [baseline]
    experiment of EXPERIMENTS.md. *)

type config = {
  iterations : int;
  law : Timing_law.t;
  comm_jitter_frac : float;
  bcet_frac : float;
  overrun_prob : float;  (** probability an execution exceeds its WCET *)
  overrun_factor : float;  (** duration multiplier on overrun *)
  seed : int;
  condition : iteration:int -> var:string -> int;
  injection : Injection.t;
      (** structural faults — a fail-stopped producer posts nothing
          (its bus slots depart with the old value), a transfer lost
          on the wire or inside a medium outage never arrives; both
          surface as freshness [violations] *)
  recovery : Recovery.policy;
      (** detection & retransmission only: the freshness watchdog dates
          every violation and dropped transfers are retried within the
          budget (retries push the medium's later slots back, so
          recovery can cause overruns).  Reads stay at their planned
          table offsets, so a retried payload — delivered after backoff
          — typically lands {e after} this period's read: the transfer
          counts as recovered in the ledger while the read remains a
          dated violation.  The heartbeat supervisor / mode switch is
          {!Machine}-only — a static table cannot re-dispatch online;
          [failover] is ignored here. *)
  bus_models : (string * Media.Bus.config) list;
      (** shared-bus network models, keyed by medium name — same
          contract as {!Machine.config}.  Each listed medium's slots
          become frames enqueued at their planned table offsets,
          arbitrating against the bus's background traffic; since reads
          stay at their planned offsets, arbitration delay surfaces
          directly as freshness [violations].  Default [\[\]]: fixed
          planned durations, bit-for-bit as before. *)
}

val default_config : config
(** Same defaults as {!Machine.default_config}. *)

type trace = {
  period : float;
  iterations : int;
  violations : int;  (** stale-data reads *)
  remote_consumptions : int;  (** total remote reads checked *)
  actuation_latencies : (Aaa.Algorithm.op_id * float array) list;
      (** per actuator, per iteration [La(k)] — comparable to
          {!Machine.actuation_latencies}; [nan] where the actuator's
          operator had fail-stopped *)
  overruns : int;  (** iterations whose work spilled past the release *)
  lost_transfers : int;
      (** transfer instances the injection dropped on the wire and the
          retry chain (if any) failed to save *)
  retransmissions : int;  (** retry attempts spent by the recovery policy *)
  recovered_transfers : int;
      (** dropped transfers a retransmission saved *)
  recovery_events : Recovery.event list;
      (** dated {!Recovery.Stale_detected} / retransmission events,
          sorted under {!Recovery.compare_event} (the internal
          freshness sweep enumerates in hash order) *)
  bus_log : (string * Media.Bus.completion list) list;
      (** per modeled bus, every frame completion in chronological
          order, drained to the run horizon — empty without
          [bus_models] *)
}

val run : ?config:config -> Aaa.Codegen.t -> trace
(** Executes the time-triggered baseline.  Never deadlocks (nothing
    blocks). *)
