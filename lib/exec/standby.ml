module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Cg = Aaa.Codegen
module Sched = Aaa.Schedule

type vote = Primary | Standby | Held

let vote_name = function Primary -> "primary" | Standby -> "standby" | Held -> "held"

type decision = {
  d_iteration : int;
  d_vote : vote;
  d_time : float;
  d_diverged : bool;
}

type trace = {
  protects : string;
  primary : Machine.trace;
  replica : Machine.trace;
  decisions : decision array;
  takeover : (int * float) option;
  divergences : int list;
  events : Recovery.event list;
}

(* per-iteration instant the last actuator of [tr] settles (the
   stream's actuation date); nan where no actuator completed *)
let last_actuation tr =
  let out = Array.make tr.Machine.iterations Float.nan in
  List.iter
    (fun op ->
      Array.iteri
        (fun k t ->
          if not (Float.is_nan t) then
            if Float.is_nan out.(k) || t > out.(k) then out.(k) <- t)
        (Machine.instants tr op))
    (Alg.actuators tr.Machine.executive.Cg.schedule.Sched.algorithm);
  out

let eps = 1e-9

let run ?(config = Machine.default_config) ~protects ~standby exe =
  let pol = config.Machine.recovery in
  let sched = exe.Cg.schedule in
  let period = Alg.period sched.Sched.algorithm in
  if Arch.find_operator sched.Sched.architecture protects = None then
    invalid_arg (Printf.sprintf "Standby.run: unknown operator %S" protects);
  (* neither stream mode-switches: the replica IS the failover copy,
     already live — degradation happens in the voter, not by swapping
     executives mid-run *)
  let stream_config =
    { config with Machine.recovery = { pol with Recovery.failover = [] } }
  in
  let primary = Machine.run ~config:stream_config exe in
  let replica = Machine.run ~config:stream_config standby in
  let n = min primary.Machine.iterations replica.Machine.iterations in
  let fresh_p = Machine.fresh_actuations primary in
  let fresh_s = Machine.fresh_actuations replica in
  let inst_p = last_actuation primary in
  let inst_s = last_actuation replica in
  (* the same heartbeat evidence the mode-switch path consumes: once
     the protected operator's fail-stop is confirmed, the voter pins
     the standby stream permanently *)
  let confirmation =
    if Injection.is_none config.Machine.injection then None
    else
      match
        Recovery.confirm pol
          ~operator_failed:config.Machine.injection.Injection.operator_failed
          ~operators:
            (List.map
               (Arch.operator_name sched.Sched.architecture)
               (Arch.operators sched.Sched.architecture))
          ~period ~iterations:n
      with
      | Some c when c.Recovery.operator = protects -> Some c
      | Some _ | None -> None
  in
  let pin_k =
    match confirmation with
    | Some c -> int_of_float (Float.ceil ((c.Recovery.confirm_time /. period) -. eps))
    | None -> max_int
  in
  let decisions =
    Array.init n (fun k ->
        let vote =
          if k >= pin_k then
            if fresh_s.(k) then Standby else if fresh_p.(k) then Primary else Held
          else if fresh_p.(k) then Primary
          else if fresh_s.(k) then Standby
          else Held
        in
        let time =
          match vote with
          | Primary -> inst_p.(k)
          | Standby -> inst_s.(k)
          | Held -> Float.nan
        in
        let diverged =
          fresh_p.(k) && fresh_s.(k) && Float.abs (inst_p.(k) -. inst_s.(k)) > eps
        in
        { d_iteration = k; d_vote = vote; d_time = time; d_diverged = diverged })
  in
  let takeover =
    let rec find k =
      if k >= n then None
      else if decisions.(k).d_vote = Standby then Some (k, decisions.(k).d_time)
      else find (k + 1)
    in
    find 0
  in
  let events =
    let voter =
      match (confirmation, takeover) with
      | Some _, Some (k, t) ->
          [ Recovery.Voter_switched { time = t; iteration = k; operator = protects } ]
      | _ -> []
    in
    List.sort Recovery.compare_event (voter @ primary.Machine.recovery_events)
  in
  let divergences =
    Array.to_list decisions
    |> List.filter_map (fun d -> if d.d_diverged then Some d.d_iteration else None)
  in
  { protects; primary; replica; decisions; takeover; divergences; events }

let votes tr = Array.map (fun d -> d.d_vote) tr.decisions

let tally tr =
  Array.fold_left
    (fun (p, s, h) d ->
      match d.d_vote with
      | Primary -> (p + 1, s, h)
      | Standby -> (p, s + 1, h)
      | Held -> (p, s, h + 1))
    (0, 0, 0) tr.decisions

let actuated_instants tr =
  let n = Array.length tr.decisions in
  let alg_p = tr.primary.Machine.executive.Cg.schedule.Sched.algorithm in
  let alg_s = tr.replica.Machine.executive.Cg.schedule.Sched.algorithm in
  List.map
    (fun op ->
      let inst_p = Machine.instants tr.primary op in
      let inst_s =
        match Alg.find_op alg_s (Alg.op_name alg_p op) with
        | Some op' -> Machine.instants tr.replica op'
        | None -> Array.make n Float.nan
      in
      ( op,
        Array.init n (fun k ->
            match tr.decisions.(k).d_vote with
            | Primary -> inst_p.(k)
            | Standby -> inst_s.(k)
            | Held -> Float.nan) ))
    (Alg.actuators alg_p)

let pp_decision ppf d =
  Format.fprintf ppf "k=%d: %s%s%s" d.d_iteration (vote_name d.d_vote)
    (if Float.is_nan d.d_time then "" else Printf.sprintf " at %g" d.d_time)
    (if d.d_diverged then " [diverged]" else "")

let pp ppf tr =
  let p, s, h = tally tr in
  Format.fprintf ppf "@[<v>hot standby for %S: %d primary / %d standby / %d held votes@,"
    tr.protects p s h;
  (match tr.takeover with
  | Some (k, t) ->
      Format.fprintf ppf "takeover at iteration %d (t=%g, zero blackout)@," k t
  | None -> Format.fprintf ppf "no takeover: primary stayed fresh@,");
  Format.fprintf ppf "%d divergence(s)@]" (List.length tr.divergences)
