(** Numerical integration of ordinary differential equations
    [dx/dt = f(t, x)].

    The hybrid simulation engine integrates the continuous plant only
    *between* discrete events, so every integrator here exposes an
    "integrate from [t0] to [t1]" entry point that lands exactly on
    [t1] regardless of internal step control. *)

type rhs = float -> float array -> float array
(** Right-hand side of the ODE: [f t x] returns [dx/dt]. *)

type method_ =
  | Euler  (** explicit Euler, first order *)
  | Rk2  (** Heun's method, second order *)
  | Rk4  (** classic Runge–Kutta, fourth order *)
  | Rkf45 of { rtol : float; atol : float }
      (** Runge–Kutta–Fehlberg 4(5) with adaptive step control *)

val default_method : method_
(** [Rkf45 { rtol = 1e-6; atol = 1e-9 }]. *)

val step_rk4 : rhs -> float -> float array -> float -> float array
(** [step_rk4 f t x h] is one classic RK4 step of size [h]. *)

val step_euler : rhs -> float -> float array -> float -> float array
val step_rk2 : rhs -> float -> float array -> float -> float array

val integrate :
  ?meth:method_ ->
  ?max_step:float ->
  ?observer:(float -> float array -> unit) ->
  rhs ->
  t0:float ->
  t1:float ->
  float array ->
  float array
(** [integrate f ~t0 ~t1 x0] returns the state at [t1] starting from
    [x0] at [t0].  [max_step] bounds the internal step (default:
    [(t1−t0)/10] for fixed-step methods, unbounded for adaptive).
    [observer] is called after each accepted internal step (and on the
    initial state).  Requires [t1 >= t0]; [t1 = t0] returns a copy of
    [x0]. *)

(** {2 Allocation-free variant}

    The simulation engine's hot path calls the integrator between
    every pair of event instants, so the entry points below avoid the
    per-stage state-vector allocations of {!integrate}: all Runge–Kutta
    stages write into a caller-supplied {!workspace} and the state is
    advanced in place.  The arithmetic (tableaus, evaluation order,
    step-size control) is {e identical} to {!integrate} — the two
    produce bit-for-bit equal trajectories. *)

type rhs_inplace = float -> float array -> dx:float array -> unit
(** [f t x ~dx] writes [dx/dt] into [dx] (fully overwriting it).  The
    callback must not retain [x] or [dx]. *)

type workspace
(** Preallocated stage buffers for one state dimension. *)

val workspace : int -> workspace
(** [workspace dim] allocates buffers for a [dim]-dimensional state. *)

val workspace_dim : workspace -> int

val integrate_inplace :
  ?meth:method_ ->
  ?max_step:float ->
  ?observer:(float -> float array -> unit) ->
  ws:workspace ->
  rhs_inplace ->
  t0:float ->
  t1:float ->
  float array ->
  unit
(** [integrate_inplace ~ws f ~t0 ~t1 x] advances [x] in place from
    [t0] to [t1].  The [observer] receives the live state array — it
    must copy what it wants to keep.  Raises [Invalid_argument] when
    [t1 < t0] or when [x] does not match the workspace dimension.
    Steady-state behaviour allocates nothing beyond what [f] itself
    allocates. *)
