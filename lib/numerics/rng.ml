type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64, used only to expand the seed into four words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let reseed g seed =
  let state = ref (Int64.of_int seed) in
  g.s0 <- splitmix64 state;
  g.s1 <- splitmix64 state;
  g.s2 <- splitmix64 state;
  g.s3 <- splitmix64 state

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* 53 uniform mantissa bits in [0,1) *)
let unit_float g =
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float g bound =
  if bound <= 0. then invalid_arg "Rng.float: non-positive bound";
  unit_float g *. bound

let uniform g lo hi =
  if hi <= lo then invalid_arg "Rng.uniform: empty interval";
  lo +. (unit_float g *. (hi -. lo))

let int g n =
  if n <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 g) 1) (Int64.of_int n))

let bool g = Int64.logand (bits64 g) 1L = 1L

let gaussian g ?(mu = 0.) ?(sigma = 1.) () =
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float g in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential g lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: non-positive rate";
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. lambda

let triangular g ~lo ~mode ~hi =
  if not (lo <= mode && mode <= hi && lo < hi) then
    invalid_arg "Rng.triangular: require lo <= mode <= hi and lo < hi";
  let u = unit_float g in
  let fc = (mode -. lo) /. (hi -. lo) in
  if u < fc then lo +. sqrt (u *. (hi -. lo) *. (mode -. lo))
  else hi -. sqrt ((1. -. u) *. (hi -. lo) *. (hi -. mode))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice g a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int g (Array.length a))
