(** One-dimensional interpolation over sorted breakpoints — the
    numeric core of lookup-table blocks (sensor calibration curves,
    engine maps, gain scheduling). *)

type t
(** An immutable interpolant. *)

val make : xs:float array -> ys:float array -> t
(** Breakpoints [xs] (strictly increasing, at least two) with values
    [ys] of the same length.  Raises [Invalid_argument] otherwise. *)

val eval : t -> float -> float
(** Piecewise-linear evaluation; clamps outside the breakpoint range
    (constant extrapolation, the usual embedded-map semantics). *)

val eval_extrapolate : t -> float -> float
(** Like {!eval} but extrapolates linearly from the end segments. *)

val domain : t -> float * float

val codomain : t -> float * float
(** [(min, max)] over the table values — bounds of {!eval}, whose
    clamped extrapolation and piecewise-linear interior never leave
    the hull of the breakpoint values. *)

val of_function : ?n:int -> (float -> float) -> lo:float -> hi:float -> t
(** Samples a function on [n] (default 32) evenly spaced breakpoints
    over [\[lo, hi\]]. *)
