type t = { xs : float array; ys : float array }

let make ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp.make: need at least two breakpoints";
  if Array.length ys <> n then invalid_arg "Interp.make: xs/ys length mismatch";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then invalid_arg "Interp.make: breakpoints must increase"
  done;
  { xs = Array.copy xs; ys = Array.copy ys }

(* index of the segment containing x (clamped to valid segments) *)
let segment t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    (* binary search for the last breakpoint <= x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let lerp t x =
  let i = segment t x in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  y0 +. ((x -. x0) /. (x1 -. x0) *. (y1 -. y0))

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else lerp t x

let eval_extrapolate = lerp

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let codomain t =
  Array.fold_left
    (fun (lo, hi) y -> (Float.min lo y, Float.max hi y))
    (t.ys.(0), t.ys.(0)) t.ys

let of_function ?(n = 32) f ~lo ~hi =
  if n < 2 then invalid_arg "Interp.of_function: need at least two samples";
  if hi <= lo then invalid_arg "Interp.of_function: empty domain";
  let xs = Array.init n (fun i -> lo +. (float_of_int i /. float_of_int (n - 1) *. (hi -. lo))) in
  make ~xs ~ys:(Array.map f xs)
