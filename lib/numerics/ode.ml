type rhs = float -> float array -> float array

type method_ =
  | Euler
  | Rk2
  | Rk4
  | Rkf45 of { rtol : float; atol : float }

let default_method = Rkf45 { rtol = 1e-6; atol = 1e-9 }

let step_euler f t x h = Vec.axpy h (f t x) x

let step_rk2 f t x h =
  let k1 = f t x in
  let k2 = f (t +. h) (Vec.axpy h k1 x) in
  Vec.axpy (h /. 2.) (Vec.add k1 k2) x

let step_rk4 f t x h =
  let k1 = f t x in
  let k2 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k1 x) in
  let k3 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k2 x) in
  let k4 = f (t +. h) (Vec.axpy h k3 x) in
  let sum = Vec.add k1 (Vec.add (Vec.scale 2. k2) (Vec.add (Vec.scale 2. k3) k4)) in
  Vec.axpy (h /. 6.) sum x

(* Fehlberg 4(5) tableau *)
let rkf45_step f t x h =
  let k1 = f t x in
  let k2 = f (t +. (h /. 4.)) (Vec.axpy (h /. 4.) k1 x) in
  let k3 =
    f
      (t +. (3. *. h /. 8.))
      (Vec.add x
         (Vec.scale h (Vec.add (Vec.scale (3. /. 32.) k1) (Vec.scale (9. /. 32.) k2))))
  in
  let k4 =
    f
      (t +. (12. *. h /. 13.))
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (1932. /. 2197.) k1)
               (Vec.add (Vec.scale (-7200. /. 2197.) k2) (Vec.scale (7296. /. 2197.) k3)))))
  in
  let k5 =
    f (t +. h)
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (439. /. 216.) k1)
               (Vec.add (Vec.scale (-8.) k2)
                  (Vec.add (Vec.scale (3680. /. 513.) k3) (Vec.scale (-845. /. 4104.) k4))))))
  in
  let k6 =
    f
      (t +. (h /. 2.))
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (-8. /. 27.) k1)
               (Vec.add (Vec.scale 2. k2)
                  (Vec.add
                     (Vec.scale (-3544. /. 2565.) k3)
                     (Vec.add (Vec.scale (1859. /. 4104.) k4) (Vec.scale (-11. /. 40.) k5)))))))
  in
  let order4 =
    Vec.add x
      (Vec.scale h
         (Vec.add
            (Vec.scale (25. /. 216.) k1)
            (Vec.add
               (Vec.scale (1408. /. 2565.) k3)
               (Vec.add (Vec.scale (2197. /. 4104.) k4) (Vec.scale (-1. /. 5.) k5)))))
  in
  let order5 =
    Vec.add x
      (Vec.scale h
         (Vec.add
            (Vec.scale (16. /. 135.) k1)
            (Vec.add
               (Vec.scale (6656. /. 12825.) k3)
               (Vec.add
                  (Vec.scale (28561. /. 56430.) k4)
                  (Vec.add (Vec.scale (-9. /. 50.) k5) (Vec.scale (2. /. 55.) k6))))))
  in
  (order4, order5)

let integrate_fixed step ?observer f ~t0 ~t1 x0 ~h =
  let x = ref (Vec.copy x0) in
  let t = ref t0 in
  (match observer with Some g -> g t0 !x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let h = Float.min h (t1 -. !t) in
    x := step f !t !x h;
    t := !t +. h;
    (match observer with Some g -> g !t !x | None -> ())
  done;
  !x

let integrate_rkf45 ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x0 =
  let x = ref (Vec.copy x0) in
  let t = ref t0 in
  let span = t1 -. t0 in
  let hmax = match max_step with Some h -> h | None -> span in
  let h = ref (Float.min hmax (span /. 10.)) in
  let hmin = 1e-12 *. (1. +. Float.abs t1) in
  (match observer with Some g -> g t0 !x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let hcur = Float.min !h (t1 -. !t) in
    let x4, x5 = rkf45_step f !t !x hcur in
    let err =
      let e = ref 0. in
      Array.iteri
        (fun i a ->
          let scale = atol +. (rtol *. Float.max (Float.abs a) (Float.abs x5.(i))) in
          e := Float.max !e (Float.abs (a -. x5.(i)) /. scale))
        x4;
      !e
    in
    if err <= 1. || hcur <= hmin then begin
      t := !t +. hcur;
      x := x5;
      (match observer with Some g -> g !t !x | None -> ())
    end;
    (* standard PI-free step update with safety factor *)
    let factor =
      if err = 0. then 4. else Float.min 4. (Float.max 0.1 (0.9 *. (err ** (-0.2))))
    in
    h := Float.min hmax (Float.max hmin (hcur *. factor))
  done;
  !x

(* ------------------------------------------------------------------ *)
(* In-place integration: same tableaus and the same floating-point
   evaluation order as the allocating steppers above (bit-for-bit
   identical trajectories), but every stage writes into a preallocated
   workspace so the steady state allocates nothing. *)

type rhs_inplace = float -> float array -> dx:float array -> unit

type workspace = {
  dim : int;
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  k5 : float array;
  k6 : float array;
  xtmp : float array;
  x4 : float array;
  x5 : float array;
}

let workspace dim =
  if dim < 0 then invalid_arg "Ode.workspace: negative dimension";
  let mk () = Array.make dim 0. in
  {
    dim;
    k1 = mk ();
    k2 = mk ();
    k3 = mk ();
    k4 = mk ();
    k5 = mk ();
    k6 = mk ();
    xtmp = mk ();
    x4 = mk ();
    x5 = mk ();
  }

let workspace_dim ws = ws.dim

let check_dim name ws x =
  if Array.length x <> ws.dim then
    invalid_arg (Printf.sprintf "Ode.%s: state dimension %d, workspace dimension %d" name (Array.length x) ws.dim)

(* one step of each method, advancing [x] in place; float operations
   associate exactly as in step_euler/step_rk2/step_rk4/rkf45_step *)

let step_euler_ip ws f t x h =
  f t x ~dx:ws.k1;
  for i = 0 to ws.dim - 1 do
    x.(i) <- (h *. ws.k1.(i)) +. x.(i)
  done

let step_rk2_ip ws f t x h =
  f t x ~dx:ws.k1;
  for i = 0 to ws.dim - 1 do
    ws.xtmp.(i) <- (h *. ws.k1.(i)) +. x.(i)
  done;
  f (t +. h) ws.xtmp ~dx:ws.k2;
  for i = 0 to ws.dim - 1 do
    x.(i) <- ((h /. 2.) *. (ws.k1.(i) +. ws.k2.(i))) +. x.(i)
  done

let step_rk4_ip ws f t x h =
  f t x ~dx:ws.k1;
  for i = 0 to ws.dim - 1 do
    ws.xtmp.(i) <- ((h /. 2.) *. ws.k1.(i)) +. x.(i)
  done;
  f (t +. (h /. 2.)) ws.xtmp ~dx:ws.k2;
  for i = 0 to ws.dim - 1 do
    ws.xtmp.(i) <- ((h /. 2.) *. ws.k2.(i)) +. x.(i)
  done;
  f (t +. (h /. 2.)) ws.xtmp ~dx:ws.k3;
  for i = 0 to ws.dim - 1 do
    ws.xtmp.(i) <- (h *. ws.k3.(i)) +. x.(i)
  done;
  f (t +. h) ws.xtmp ~dx:ws.k4;
  for i = 0 to ws.dim - 1 do
    let sum = ws.k1.(i) +. ((2. *. ws.k2.(i)) +. ((2. *. ws.k3.(i)) +. ws.k4.(i))) in
    x.(i) <- ((h /. 6.) *. sum) +. x.(i)
  done

let rkf45_step_ip ws f t x h =
  let { k1; k2; k3; k4; k5; k6; xtmp; x4; x5; dim } = ws in
  f t x ~dx:k1;
  for i = 0 to dim - 1 do
    xtmp.(i) <- ((h /. 4.) *. k1.(i)) +. x.(i)
  done;
  f (t +. (h /. 4.)) xtmp ~dx:k2;
  for i = 0 to dim - 1 do
    xtmp.(i) <- x.(i) +. (h *. (((3. /. 32.) *. k1.(i)) +. ((9. /. 32.) *. k2.(i))))
  done;
  f (t +. (3. *. h /. 8.)) xtmp ~dx:k3;
  for i = 0 to dim - 1 do
    xtmp.(i) <-
      x.(i)
      +. (h
          *. (((1932. /. 2197.) *. k1.(i))
              +. (((-7200. /. 2197.) *. k2.(i)) +. ((7296. /. 2197.) *. k3.(i)))))
  done;
  f (t +. (12. *. h /. 13.)) xtmp ~dx:k4;
  for i = 0 to dim - 1 do
    xtmp.(i) <-
      x.(i)
      +. (h
          *. (((439. /. 216.) *. k1.(i))
              +. ((-8. *. k2.(i))
                  +. (((3680. /. 513.) *. k3.(i)) +. ((-845. /. 4104.) *. k4.(i))))))
  done;
  f (t +. h) xtmp ~dx:k5;
  for i = 0 to dim - 1 do
    xtmp.(i) <-
      x.(i)
      +. (h
          *. (((-8. /. 27.) *. k1.(i))
              +. ((2. *. k2.(i))
                  +. (((-3544. /. 2565.) *. k3.(i))
                      +. (((1859. /. 4104.) *. k4.(i)) +. ((-11. /. 40.) *. k5.(i)))))))
  done;
  f (t +. (h /. 2.)) xtmp ~dx:k6;
  for i = 0 to dim - 1 do
    x4.(i) <-
      x.(i)
      +. (h
          *. (((25. /. 216.) *. k1.(i))
              +. (((1408. /. 2565.) *. k3.(i))
                  +. (((2197. /. 4104.) *. k4.(i)) +. ((-1. /. 5.) *. k5.(i))))))
  done;
  for i = 0 to dim - 1 do
    x5.(i) <-
      x.(i)
      +. (h
          *. (((16. /. 135.) *. k1.(i))
              +. (((6656. /. 12825.) *. k3.(i))
                  +. (((28561. /. 56430.) *. k4.(i))
                      +. (((-9. /. 50.) *. k5.(i)) +. ((2. /. 55.) *. k6.(i)))))))
  done

let integrate_fixed_ip step ws ?observer f ~t0 ~t1 x ~h =
  let t = ref t0 in
  (match observer with Some g -> g t0 x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let h = Float.min h (t1 -. !t) in
    step ws f !t x h;
    t := !t +. h;
    (match observer with Some g -> g !t x | None -> ())
  done

let integrate_rkf45_ip ws ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x =
  let t = ref t0 in
  let span = t1 -. t0 in
  let hmax = match max_step with Some h -> h | None -> span in
  let h = ref (Float.min hmax (span /. 10.)) in
  let hmin = 1e-12 *. (1. +. Float.abs t1) in
  (match observer with Some g -> g t0 x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let hcur = Float.min !h (t1 -. !t) in
    rkf45_step_ip ws f !t x hcur;
    let err =
      let e = ref 0. in
      for i = 0 to ws.dim - 1 do
        let a = ws.x4.(i) in
        let scale = atol +. (rtol *. Float.max (Float.abs a) (Float.abs ws.x5.(i))) in
        e := Float.max !e (Float.abs (a -. ws.x5.(i)) /. scale)
      done;
      !e
    in
    if err <= 1. || hcur <= hmin then begin
      t := !t +. hcur;
      Array.blit ws.x5 0 x 0 ws.dim;
      (match observer with Some g -> g !t x | None -> ())
    end;
    let factor =
      if err = 0. then 4. else Float.min 4. (Float.max 0.1 (0.9 *. (err ** (-0.2))))
    in
    h := Float.min hmax (Float.max hmin (hcur *. factor))
  done

let integrate_inplace ?(meth = default_method) ?max_step ?observer ~ws f ~t0 ~t1 x =
  check_dim "integrate_inplace" ws x;
  if t1 < t0 then invalid_arg "Ode.integrate_inplace: t1 < t0";
  if t1 = t0 then (match observer with Some g -> g t0 x | None -> ())
  else
    let default_h = match max_step with Some h -> h | None -> (t1 -. t0) /. 10. in
    match meth with
    | Euler -> integrate_fixed_ip step_euler_ip ws ?observer f ~t0 ~t1 x ~h:default_h
    | Rk2 -> integrate_fixed_ip step_rk2_ip ws ?observer f ~t0 ~t1 x ~h:default_h
    | Rk4 -> integrate_fixed_ip step_rk4_ip ws ?observer f ~t0 ~t1 x ~h:default_h
    | Rkf45 { rtol; atol } ->
        integrate_rkf45_ip ws ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x

let integrate ?(meth = default_method) ?max_step ?observer f ~t0 ~t1 x0 =
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  if t1 = t0 then begin
    (match observer with Some g -> g t0 x0 | None -> ());
    Vec.copy x0
  end
  else
    let default_h = match max_step with Some h -> h | None -> (t1 -. t0) /. 10. in
    match meth with
    | Euler -> integrate_fixed step_euler ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rk2 -> integrate_fixed step_rk2 ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rk4 -> integrate_fixed step_rk4 ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rkf45 { rtol; atol } -> integrate_rkf45 ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x0
