(** Deterministic pseudo-random numbers for reproducible experiments.

    A self-contained xoshiro256** generator seeded explicitly, so every
    simulation, timing law and benchmark in the repository is exactly
    repeatable.  Not cryptographic. *)

type t
(** Generator state (mutable). *)

val create : int -> t
(** [create seed] builds a generator from any integer seed (expanded
    through SplitMix64). *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val reseed : t -> int -> unit
(** [reseed g seed] resets [g] in place to the exact state of
    [create seed] — the generator has no hidden state beyond its four
    words, so closures capturing [g] (e.g. the jittered delay blocks
    of a compiled co-simulation engine) replay a seed's draw sequence
    bit-for-bit after a reseed. *)

val split : t -> t
(** Derives a statistically independent generator; the parent state
    advances. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]; [n] must be positive. *)

val bool : t -> bool

val gaussian : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Normal deviate via Box–Muller (default standard normal). *)

val exponential : t -> float -> float
(** [exponential g lambda] with rate [lambda > 0]. *)

val triangular : t -> lo:float -> mode:float -> hi:float -> float
(** Triangular distribution — common WCET-jitter model. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty. *)
