module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture

let float f = Printf.sprintf "%h" f
let int i = string_of_int i
let string s = Printf.sprintf "%d:%s" (String.length s) s

let kind = function
  | Alg.Sensor -> "sensor"
  | Alg.Actuator -> "actuator"
  | Alg.Compute -> "compute"
  | Alg.Memory -> "memory"

let ports a = Array.to_list a |> List.map int |> String.concat ","

let algorithm alg =
  let buf = Buffer.create 512 in
  let add s = Buffer.add_string buf (string s) in
  add "alg";
  add (Alg.name alg);
  add (float (Alg.period alg));
  List.iter
    (fun op ->
      add (Alg.op_name alg op);
      add (kind (Alg.op_kind alg op));
      add (ports (Alg.op_inputs alg op));
      add (ports (Alg.op_outputs alg op));
      match Alg.op_cond alg op with
      | None -> add "-"
      | Some { Alg.var; value } ->
          add var;
          add (int value))
    (Alg.ops alg);
  List.iter
    (fun (((src : Alg.op_id), sp), ((dst : Alg.op_id), dp)) ->
      add (Printf.sprintf "%d.%d>%d.%d" (src :> int) sp (dst :> int) dp))
    (Alg.dependencies alg);
  (* conditioning variables, sorted for canonicity *)
  let vars =
    List.filter_map (fun op -> Option.map (fun c -> c.Alg.var) (Alg.op_cond alg op)) (Alg.ops alg)
    |> List.sort_uniq compare
  in
  List.iter
    (fun var ->
      add var;
      match Alg.condition_source alg ~var with
      | Some ((op : Alg.op_id), port) -> add (Printf.sprintf "%d.%d" (op :> int) port)
      | None -> add "-")
    vars;
  Buffer.contents buf

let architecture arch =
  let buf = Buffer.create 256 in
  let add s = Buffer.add_string buf (string s) in
  add "arch";
  add (Arch.name arch);
  List.iter (fun o -> add (Arch.operator_name arch o)) (Arch.operators arch);
  List.iter
    (fun m ->
      add (Arch.medium_name arch m);
      add (match Arch.medium_kind arch m with Arch.Bus -> "bus" | Arch.Point_to_point -> "p2p");
      List.iter (fun o -> add (Arch.operator_name arch o)) (Arch.medium_endpoints arch m);
      (* recover the costing parameters: duration(w) = latency + w·tpw *)
      let latency = Arch.comm_duration arch m ~words:0 in
      add (float latency);
      add (float (Arch.comm_duration arch m ~words:1 -. latency)))
    (Arch.media arch);
  Buffer.contents buf

let durations d =
  let entries =
    Aaa.Durations.fold d ~init:[] ~f:(fun ~op ~operator ~wcet ~bcet acc ->
        (op, operator, wcet, bcet) :: acc)
    |> List.sort compare
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string "dur");
  List.iter
    (fun (op, operator, wcet, bcet) ->
      Buffer.add_string buf (string op);
      Buffer.add_string buf (string operator);
      Buffer.add_string buf (string (float wcet));
      Buffer.add_string buf (string (float bcet)))
    entries;
  Buffer.contents buf

let schedule s = string "sched" ^ string (Aaa.Schedule_io.print s)

let law = function
  | Exec.Timing_law.Wcet -> "wcet"
  | Exec.Timing_law.Bcet -> "bcet"
  | Exec.Timing_law.Uniform -> "uniform"
  | Exec.Timing_law.Triangular f -> "triangular:" ^ float f
  | Exec.Timing_law.Gaussian { mean_frac; sigma_frac } ->
      Printf.sprintf "gaussian:%s:%s" (float mean_frac) (float sigma_frac)

let mode = function
  | Translator.Delay_graph.Static_wcet -> "static"
  | Translator.Delay_graph.Jittered { law = l; bcet_frac; seed } ->
      Printf.sprintf "jittered:%s:%s:%d" (law l) (float bcet_frac) seed

let strategy = function
  | None -> "default"
  | Some Aaa.Adequation.Pressure -> "pressure"
  | Some Aaa.Adequation.Earliest_finish -> "eft"

let digest fields =
  Digest.to_hex (Digest.string (String.concat "" (List.map string fields)))
