(** Canonical digests of evaluation problems — the {!Cache} keys.

    A cache is only sound if the key captures {e everything} the
    evaluation depends on.  For scilife that is the design parameters
    (its name, period and horizon stand in for the diagram builder and
    cost functional, which are closures — two designs differing in
    either must carry different names), the extracted algorithm graph,
    the architecture graph, the WCET/BCET tables, and the co-simulation
    mode (timing law, BCET fraction, seed).  Each helper below renders
    one of these to a canonical text form — stable across process
    runs, insertion orders and hash-table iteration orders — and
    {!digest} hashes the assembled field list.

    Floats are rendered in hexadecimal ([%h]) so equal values always
    produce equal text and nothing is lost to decimal rounding. *)

val float : float -> string
val int : int -> string
val string : string -> string
(** Length-prefixed, so concatenated fields cannot alias. *)

val algorithm : Aaa.Algorithm.t -> string
(** Name, period, operations in insertion order (name, kind, port
    widths, condition), dependencies and condition sources. *)

val architecture : Aaa.Architecture.t -> string
(** Name, operators in insertion order, media with kind, endpoints and
    transfer costing. *)

val durations : Aaa.Durations.t -> string
(** Every (operation, operator, WCET, BCET) entry in sorted order —
    canonical even though the table's fold order is unspecified. *)

val schedule : Aaa.Schedule.t -> string
(** The serialised schedule ({!Aaa.Schedule_io.print}) — keys
    evaluations of an already-adequated implementation. *)

val law : Exec.Timing_law.t -> string

val mode : Translator.Delay_graph.mode -> string
(** Static WCET, or the jittered law with BCET fraction and seed. *)

val strategy : Aaa.Adequation.strategy option -> string

val digest : string list -> string
(** Hex digest of the tagged field list.  Fields are length-prefixed
    before hashing, so no two distinct field lists collide textually. *)
