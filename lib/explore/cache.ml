type 'a backing = {
  path : string;
  encode : 'a -> string;
  mutable oc : out_channel;
  mutable closed : bool;
  threshold : int;  (* auto-compaction trigger in bytes; 0 = never *)
  mutable floor : int;
      (* log size right after the last rewrite: re-trigger only past
         max(threshold, 2·floor), so a live set that genuinely needs
         the space cannot thrash the rewriter *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable backing : 'a backing option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    backing = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let log_flags = [ Open_wronly; Open_creat; Open_append; Open_binary ]

let record key s =
  Printf.sprintf "%d %d\n%s%s\n" (String.length key) (String.length s) key s

(* Rewrite the log with one record per live entry, in insertion order
   (lock held).  The replacement is written complete and flushed to a
   sibling file, then renamed over the log: a crash anywhere leaves
   either the old log or the fully-written new one, so the
   truncated-tail replay contract is untouched. *)
let compact_locked t =
  match t.backing with
  | None -> 0
  | Some b when b.closed -> 0
  | Some b ->
      let tmp = b.path ^ ".compact" in
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
      in
      let written = ref 0 in
      (try
         Queue.iter
           (fun key ->
             match Hashtbl.find_opt t.table key with
             | Some v ->
                 output_string oc (record key (b.encode v));
                 incr written
             | None -> ())
           t.order;
         Stdlib.flush oc;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      close_out b.oc;
      Sys.rename tmp b.path;
      b.oc <- open_out_gen log_flags 0o644 b.path;
      b.floor <- pos_out b.oc;
      !written

(* Append one record to the log.  Always called with the cache lock
   held, which is the lost-write fix: a write interleaved with another
   domain's would corrupt the length-prefixed framing, and an insert
   that reached the table but not the log (or vice versa) would
   desynchronise memory and disk.  Once the log outgrows the
   compaction threshold — dead records from replaced or evicted
   entries pile up forever otherwise — it is rewritten in place with
   only the live entries. *)
let append_locked t key v =
  match t.backing with
  | None -> ()
  | Some b when b.closed -> ()
  | Some b ->
      output_string b.oc (record key (b.encode v));
      if b.threshold > 0 && pos_out b.oc > max b.threshold (2 * b.floor) then
        ignore (compact_locked t)

let insert_locked t key v =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.replace t.table key v;
    Queue.add key t.order;
    append_locked t key v;
    while Hashtbl.length t.table > t.capacity do
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.table oldest;
      t.evictions <- t.evictions + 1
    done
  end

let find_or_add t ~key f =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = f () in
      locked t (fun () -> insert_locked t key v);
      v

let find_opt t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~key v =
  locked t (fun () ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.replace t.table key v;
        append_locked t key v
      end
      else insert_locked t key v)

(* ------------------------------------------------------------------ *)
(* persistence *)

(* Replay one log file into the table (lock held).  Records are
   length-prefixed, so values may contain newlines; a truncated tail
   record — a crash mid-append — is silently dropped.  Replaying the
   insert sequence through the same FIFO eviction reproduces the live
   window the writing process ended with. *)
let replay_locked t ~path ~decode =
  let loaded = ref 0 in
  (* byte offset just past the last complete record: everything beyond
     it is a record torn by a crash and must be cut before appending,
     or the garbage would hide every later record from the next
     replay *)
  let good = ref 0 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (try
           while true do
             let header = input_line ic in
             let klen, vlen = Scanf.sscanf header " %d %d" (fun a b -> (a, b)) in
             if klen < 0 || vlen < 0 then raise Exit;
             let key = really_input_string ic klen in
             let v = really_input_string ic vlen in
             (match input_char ic with '\n' -> () | _ -> raise Exit);
             let v = decode v in
             (* replace existing entries like [add]; fresh keys go
                through the eviction path *)
             if Hashtbl.mem t.table key then Hashtbl.replace t.table key v
             else begin
               Hashtbl.replace t.table key v;
               Queue.add key t.order;
               while Hashtbl.length t.table > t.capacity do
                 Hashtbl.remove t.table (Queue.pop t.order)
               done
             end;
             incr loaded;
             good := pos_in ic
           done
         with End_of_file | Exit | Scanf.Scan_failure _ | Failure _ -> ());
        if !good < in_channel_length ic then Unix.truncate path !good)
  end;
  !loaded

let open_backing ?(compact_threshold = 1 lsl 20) t ~path ~encode ~decode =
  if compact_threshold < 0 then
    invalid_arg "Cache.open_backing: negative compaction threshold";
  locked t (fun () ->
      if t.backing <> None then invalid_arg "Cache.open_backing: already backed";
      if Hashtbl.length t.table > 0 then
        invalid_arg "Cache.open_backing: cache already holds entries";
      let loaded = replay_locked t ~path ~decode in
      let oc = open_out_gen log_flags 0o644 path in
      t.backing <-
        Some
          {
            path;
            encode;
            oc;
            closed = false;
            threshold = compact_threshold;
            floor = pos_out oc;
          };
      loaded)

let compact t = locked t (fun () -> compact_locked t)

let flush t =
  locked t (fun () ->
      match t.backing with
      | Some b when not b.closed -> Stdlib.flush b.oc
      | Some _ | None -> ())

let close t =
  locked t (fun () ->
      match t.backing with
      | Some b when not b.closed ->
          Stdlib.flush b.oc;
          close_out b.oc;
          b.closed <- true
      | Some _ | None -> ())

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then Float.nan else float_of_int s.hits /. float_of_int lookups

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      match t.backing with
      | Some b when not b.closed ->
          (* truncate the log so a reload does not resurrect entries *)
          close_out b.oc;
          b.oc <- open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 b.path;
          b.floor <- 0
      | Some _ | None -> ())

let pp_stats ppf s =
  let lookups = s.hits + s.misses in
  Format.fprintf ppf "%d hits / %d misses" s.hits s.misses;
  if lookups > 0 then Format.fprintf ppf " (%.1f %% hit rate)" (100. *. hit_rate s);
  Format.fprintf ppf ", %d entries, %d evictions" s.size s.evictions
