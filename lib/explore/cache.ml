type 'a t = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let insert_locked t key v =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.replace t.table key v;
    Queue.add key t.order;
    while Hashtbl.length t.table > t.capacity do
      let oldest = Queue.pop t.order in
      Hashtbl.remove t.table oldest;
      t.evictions <- t.evictions + 1
    done
  end

let find_or_add t ~key f =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = f () in
      locked t (fun () -> insert_locked t key v);
      v

let find_opt t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~key v =
  locked t (fun () ->
      if Hashtbl.mem t.table key then Hashtbl.replace t.table key v
      else insert_locked t key v)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then Float.nan else float_of_int s.hits /. float_of_int lookups

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let pp_stats ppf s =
  let lookups = s.hits + s.misses in
  Format.fprintf ppf "%d hits / %d misses" s.hits s.misses;
  if lookups > 0 then Format.fprintf ppf " (%.1f %% hit rate)" (100. *. hit_rate s);
  Format.fprintf ppf ", %d entries, %d evictions" s.size s.evictions
