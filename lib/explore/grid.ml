type platform = {
  label : string;
  price : float;
  architecture : Aaa.Architecture.t;
  durations_of : float -> Aaa.Durations.t;
}

type candidate = {
  platform : platform;
  fraction : float;
  mode : Translator.Delay_graph.mode;
}

let candidates ?(fractions = [ 0.3; 0.6; 0.9 ]) ?(seeds = [])
    ?(law = Exec.Timing_law.Uniform) ?(bcet_frac = 0.4) ~platforms () =
  if platforms = [] then invalid_arg "Grid.candidates: no platforms";
  if fractions = [] then invalid_arg "Grid.candidates: no fractions";
  List.iter
    (fun f ->
      if not (f > 0. && f <= 1.) then
        invalid_arg (Printf.sprintf "Grid.candidates: fraction %g outside (0, 1]" f))
    fractions;
  List.concat_map
    (fun platform ->
      List.concat_map
        (fun fraction ->
          match seeds with
          | [] -> [ { platform; fraction; mode = Translator.Delay_graph.Static_wcet } ]
          | seeds ->
              List.map
                (fun seed ->
                  {
                    platform;
                    fraction;
                    mode = Translator.Delay_graph.Jittered { law; bcet_frac; seed };
                  })
                seeds)
        fractions)
    platforms

let size = List.length

let tag c =
  Printf.sprintf "%s f=%g %s" c.platform.label c.fraction
    (match c.mode with
    | Translator.Delay_graph.Static_wcet -> "wcet"
    | Translator.Delay_graph.Jittered { seed; _ } -> Printf.sprintf "seed=%d" seed)
