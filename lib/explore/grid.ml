type platform = {
  label : string;
  price : float;
  architecture : Aaa.Architecture.t;
  durations_of : float -> Aaa.Durations.t;
}

type candidate = {
  platform : platform;
  fraction : float;
  mode : Translator.Delay_graph.mode;
}

let validate ~platforms ~fractions =
  if platforms = [] then invalid_arg "Grid.candidates: no platforms";
  if fractions = [] then invalid_arg "Grid.candidates: no fractions";
  List.iter
    (fun f ->
      if not (f > 0. && f <= 1.) then
        invalid_arg (Printf.sprintf "Grid.candidates: fraction %g outside (0, 1]" f))
    fractions

let seq ?(fractions = [ 0.3; 0.6; 0.9 ]) ?(seeds = [])
    ?(law = Exec.Timing_law.Uniform) ?(bcet_frac = 0.4) ~platforms () =
  validate ~platforms ~fractions;
  (* lazy row-major cross-product: nothing is materialized until the
     consumer pulls, so a million-candidate space costs nothing to
     describe *)
  Seq.concat_map
    (fun platform ->
      Seq.concat_map
        (fun fraction ->
          match seeds with
          | [] ->
              Seq.return
                { platform; fraction; mode = Translator.Delay_graph.Static_wcet }
          | seeds ->
              Seq.map
                (fun seed ->
                  {
                    platform;
                    fraction;
                    mode = Translator.Delay_graph.Jittered { law; bcet_frac; seed };
                  })
                (List.to_seq seeds))
        (List.to_seq fractions))
    (List.to_seq platforms)

let count ?(fractions = [ 0.3; 0.6; 0.9 ]) ?(seeds = []) ~platforms () =
  validate ~platforms ~fractions;
  List.length platforms * List.length fractions * max 1 (List.length seeds)

let materialize_guard = 100_000
let warned = Atomic.make false

let candidates ?fractions ?seeds ?law ?bcet_frac ~platforms () =
  let n = count ?fractions ?seeds ~platforms () in
  if n > materialize_guard && not (Atomic.exchange warned true) then
    Printf.eprintf
      "grid: materializing %d candidates as a list; use Grid.seq and \
       Explorer.evaluate_seq to stream spaces past %d\n%!"
      n materialize_guard;
  List.of_seq (seq ?fractions ?seeds ?law ?bcet_frac ~platforms ())

let size = List.length

let tag c =
  Printf.sprintf "%s f=%g %s" c.platform.label c.fraction
    (match c.mode with
    | Translator.Delay_graph.Static_wcet -> "wcet"
    | Translator.Delay_graph.Jittered { seed; _ } -> Printf.sprintf "seed=%d" seed)
