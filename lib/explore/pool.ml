type task = unit -> unit

type t = {
  n_domains : int;
  queue : task Queue.t;  (* job-announcement queue the workers block on *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

(* set while a domain executes pool work, so a nested [map] from
   inside a task degrades to the sequential path instead of parking
   every domain in a wait *)
let inside_task = Domain.DLS.new_key (fun () -> false)

let domains t = t.n_domains

let run_task task =
  let saved = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task saved) task

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      if Queue.is_empty t.queue then
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
      else Some (Queue.pop t.queue)
    in
    let task = next () in
    Mutex.unlock t.lock;
    match task with
    | None -> ()
    | Some task ->
        run_task task;
        loop ()
  in
  loop ()

let create ?domains () =
  let n_domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domain count must be at least 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      n_domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  if n_domains > 1 then
    t.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

(* ------------------------------------------------------------------ *)
(* per-slot work deques

   Each participating domain owns one deque of chunk thunks.  The
   owner pushes and pops at the front (low-index end, so the
   streaming reducer's reorder buffer stays small); a thief that finds
   everything else empty locks a victim's deque and carries off the
   BACK half in one grab — stealing half rather than one amortises
   deque traffic when chunk granularity is fine.  Chunks carry their
   own result placement (by input index), so which domain runs a
   chunk never shows in the output. *)

module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;  (* index of the first element *)
    mutable len : int;
    lock : Mutex.t;
  }

  let create () =
    { buf = Array.make 16 None; head = 0; len = 0; lock = Mutex.create () }

  let locked d f =
    Mutex.lock d.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

  let grow d =
    let cap = Array.length d.buf in
    let buf = Array.make (2 * cap) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    locked d (fun () ->
        if d.len = Array.length d.buf then grow d;
        d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
        d.len <- d.len + 1)

  let pop_front d =
    locked d (fun () ->
        if d.len = 0 then None
        else begin
          let x = d.buf.(d.head) in
          d.buf.(d.head) <- None;
          d.head <- (d.head + 1) mod Array.length d.buf;
          d.len <- d.len - 1;
          x
        end)

  (* heuristic victim selection only: unlocked word-sized read *)
  let size d = d.len

  (* removes the back half (at least one element when non-empty) and
     returns it front-to-back *)
  let steal_half d =
    locked d (fun () ->
        if d.len = 0 then []
        else begin
          let n = (d.len + 1) / 2 in
          let keep = d.len - n in
          let cap = Array.length d.buf in
          let stolen = ref [] in
          for i = d.len - 1 downto keep do
            let j = (d.head + i) mod cap in
            (match d.buf.(j) with
            | Some x -> stolen := x :: !stolen
            | None -> ());
            d.buf.(j) <- None
          done;
          d.len <- keep;
          !stolen
        end)
end

(* ------------------------------------------------------------------ *)
(* jobs: one map / map-reduce call scheduled over the deques

   A job is announced to the sleeping workers through the pool queue
   (one participate task per worker); the submitting domain takes
   slot 0 and works too.  Work enters the system either dealt upfront
   (list maps) or pulled in batches from a streaming producer under
   the job lock; it then circulates between deques by stealing.
   [issued]/[completed] count chunks, so a domain can tell
   "everything is done" apart from "the rest is in flight elsewhere
   and may spill back via a steal". *)

type job = {
  jlock : Mutex.t;
  jcond : Condition.t;  (* signalled on completion and on queued work *)
  deques : (unit -> unit) Deque.t array;
  mutable pull : (unit -> (unit -> unit) list) option;
      (* streaming producer: next batch of chunk thunks, called with
         [jlock] held; cleared once exhausted.  Must not raise. *)
  mutable issued : int;
  mutable completed : int;
  mutable abort : bool;
  next_slot : int Atomic.t;
}

let make_job ~slots =
  {
    jlock = Mutex.create ();
    jcond = Condition.create ();
    deques = Array.init slots (fun _ -> Deque.create ());
    pull = None;
    issued = 0;
    completed = 0;
    abort = false;
    next_slot = Atomic.make 1;
  }

(* called by chunk thunks once their results are placed *)
let chunk_done job =
  Mutex.lock job.jlock;
  job.completed <- job.completed + 1;
  Condition.broadcast job.jcond;
  Mutex.unlock job.jlock

let wake job =
  Mutex.lock job.jlock;
  Condition.broadcast job.jcond;
  Mutex.unlock job.jlock

let finished job = Option.is_none job.pull && job.completed >= job.issued

let steal job ~slot =
  let slots = Array.length job.deques in
  let victim = ref (-1) and best = ref 0 in
  for i = 0 to slots - 1 do
    if i <> slot then begin
      let s = Deque.size job.deques.(i) in
      if s > !best then begin
        best := s;
        victim := i
      end
    end
  done;
  if !victim < 0 then None
  else
    match Deque.steal_half job.deques.(!victim) with
    | [] -> None
    | first :: rest ->
        List.iter (Deque.push_back job.deques.(slot)) rest;
        if rest <> [] then wake job;
        Some first

(* pull the next producer batch into this slot's deque, returning one
   thunk to run now *)
let refill job ~slot =
  Mutex.lock job.jlock;
  let batch =
    match job.pull with
    | None -> []
    | Some pull ->
        if job.abort then begin
          job.pull <- None;
          []
        end
        else begin
          let thunks = pull () in
          (match thunks with [] -> job.pull <- None | _ -> ());
          job.issued <- job.issued + List.length thunks;
          thunks
        end
  in
  Mutex.unlock job.jlock;
  match batch with
  | [] -> None
  | first :: rest ->
      List.iter (Deque.push_back job.deques.(slot)) rest;
      if rest <> [] then wake job;
      Some first

let get_work job ~slot =
  match Deque.pop_front job.deques.(slot) with
  | Some _ as w -> w
  | None -> (
      match steal job ~slot with
      | Some _ as w -> w
      | None -> refill job ~slot)

(* worker-side job loop: run chunks until no work can ever reappear *)
let participate job ~slot =
  let rec loop () =
    if job.abort then ()
    else
      match get_work job ~slot with
      | Some thunk ->
          thunk ();
          loop ()
      | None ->
          Mutex.lock job.jlock;
          let stop = job.abort || finished job in
          if not stop then Condition.wait job.jcond job.jlock;
          Mutex.unlock job.jlock;
          if not stop then loop ()
  in
  loop ()

(* announce the job: each sleeping worker claims a slot and joins *)
let announce t job =
  let slots = Array.length job.deques in
  Mutex.lock t.lock;
  for _ = 1 to List.length t.workers do
    Queue.add
      (fun () ->
        let slot = Atomic.fetch_and_add job.next_slot 1 in
        if slot < slots then participate job ~slot)
      t.queue
  done;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* list mapping: chunks dealt round-robin over the deques upfront, one
   result slot per input element *)

let mapi ?chunk t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when t.n_domains <= 1 || Domain.DLS.get inside_task -> List.mapi f xs
  | _ ->
      if t.closed then invalid_arg "Pool.map: pool is shut down";
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let chunk_size =
        match chunk with
        | Some c ->
            if c < 1 then invalid_arg "Pool.map: chunk must be at least 1";
            c
        | None -> max 1 ((n + (4 * t.n_domains) - 1) / (4 * t.n_domains))
      in
      let n_chunks = (n + chunk_size - 1) / chunk_size in
      let job = make_job ~slots:t.n_domains in
      let run_chunk lo () =
        let hi = min n (lo + chunk_size) in
        for i = lo to hi - 1 do
          results.(i) <-
            (try Some (Ok (run_task (fun () -> f i arr.(i))))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ())))
        done;
        chunk_done job
      in
      job.issued <- n_chunks;
      for c = 0 to n_chunks - 1 do
        Deque.push_back job.deques.(c mod t.n_domains)
          (run_chunk (c * chunk_size))
      done;
      announce t job;
      participate job ~slot:0;
      (* chunks still in flight on other domains *)
      Mutex.lock job.jlock;
      while job.completed < job.issued do
        Condition.wait job.jcond job.jlock
      done;
      Mutex.unlock job.jlock;
      (* deterministic exception selection: smallest input index wins *)
      for i = 0 to n - 1 do
        match results.(i) with
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ()
      done;
      List.init n (fun i ->
          match results.(i) with
          | Some (Ok v) -> v
          | Some (Error _) | None -> assert false)

let map ?chunk t f xs = mapi ?chunk t (fun _ x -> f x) xs

let map_reduce ?chunk t ~map:fm ~reduce ~init xs =
  List.fold_left reduce init (map ?chunk t fm xs)

(* ------------------------------------------------------------------ *)
(* streamed map-reduce: the input is a [Seq.t] pulled in batches, so
   huge candidate spaces are never materialized; mapped results are
   folded strictly in input order by the submitting domain, which
   interleaves reducing with evaluating chunks of its own *)

let default_stream_chunk = 8
let batch_chunks = 4

let map_reduce_seq ?(chunk = default_stream_chunk) ?(snapshot_every = 4096)
    ?snapshot t ~map:fm ~reduce ~init xs =
  if chunk < 1 then invalid_arg "Pool.map_reduce_seq: chunk must be at least 1";
  if snapshot_every < 1 then
    invalid_arg "Pool.map_reduce_seq: snapshot_every must be at least 1";
  let emit count acc =
    match snapshot with
    | Some cb when count mod snapshot_every = 0 -> cb ~evaluated:count acc
    | Some _ | None -> ()
  in
  if t.n_domains <= 1 || Domain.DLS.get inside_task then
    (* sequential reference: same fold order, same snapshot cadence *)
    let acc, _ =
      Seq.fold_left
        (fun (acc, count) x ->
          let acc = reduce acc (fm x) in
          let count = count + 1 in
          emit count acc;
          (acc, count))
        (init, 0) xs
    in
    acc
  else begin
    if t.closed then invalid_arg "Pool.map_reduce_seq: pool is shut down";
    let job = make_job ~slots:t.n_domains in
    (* completed chunk results keyed by chunk id; reduced in id order *)
    let pending = Hashtbl.create 64 in
    let cursor = ref xs in
    let next_chunk = ref 0 in
    (* a producer that raises is remembered and re-raised by the
       submitter only after everything it yielded has been reduced —
       exactly where the sequential fold would raise *)
    let producer_exn = ref None in
    let chunk_thunk id items () =
      let out =
        Array.map
          (fun x ->
            try Ok (run_task (fun () -> fm x))
            with e -> Error (e, Printexc.get_raw_backtrace ()))
          items
      in
      Mutex.lock job.jlock;
      Hashtbl.replace pending id out;
      job.completed <- job.completed + 1;
      Condition.broadcast job.jcond;
      Mutex.unlock job.jlock
    in
    (* pull up to [batch_chunks] chunks off the cursor (jlock held) *)
    let pull () =
      let thunks = ref [] in
      let exhausted = ref false in
      for _ = 1 to batch_chunks do
        if not !exhausted then begin
          let items = ref [] in
          let k = ref 0 in
          while !k < chunk && not !exhausted do
            match Seq.uncons !cursor with
            | Some (x, rest) ->
                cursor := rest;
                items := x :: !items;
                incr k
            | None -> exhausted := true
            | exception e ->
                if !producer_exn = None then
                  producer_exn := Some (e, Printexc.get_raw_backtrace ());
                exhausted := true
          done;
          match !items with
          | [] -> ()
          | items ->
              let id = !next_chunk in
              incr next_chunk;
              thunks :=
                chunk_thunk id (Array.of_list (List.rev items)) :: !thunks
        end
      done;
      List.rev !thunks
    in
    job.pull <- Some pull;
    announce t job;
    let acc = ref init in
    let reduced_chunks = ref 0 in
    let reduced_elems = ref 0 in
    let abort_with e bt =
      Mutex.lock job.jlock;
      job.abort <- true;
      job.pull <- None;
      Condition.broadcast job.jcond;
      Mutex.unlock job.jlock;
      Printexc.raise_with_backtrace e bt
    in
    let reduce_ready out =
      (* fold one chunk on the submitting domain; the first captured
         exception in input order aborts the job *)
      Array.iter
        (fun r ->
          match r with
          | Error (e, bt) -> abort_with e bt
          | Ok v -> (
              match reduce !acc v with
              | acc' ->
                  acc := acc';
                  incr reduced_elems;
                  emit !reduced_elems acc'
              | exception e -> abort_with e (Printexc.get_raw_backtrace ())))
        out;
      incr reduced_chunks
    in
    let rec drive () =
      Mutex.lock job.jlock;
      match Hashtbl.find_opt pending !reduced_chunks with
      | Some out ->
          Hashtbl.remove pending !reduced_chunks;
          Mutex.unlock job.jlock;
          reduce_ready out;
          drive ()
      | None ->
          let all_done = finished job && !reduced_chunks >= !next_chunk in
          Mutex.unlock job.jlock;
          if not all_done then begin
            (match get_work job ~slot:0 with
            | Some thunk -> thunk ()
            | None ->
                Mutex.lock job.jlock;
                if
                  (not (Hashtbl.mem pending !reduced_chunks))
                  && not (finished job)
                then Condition.wait job.jcond job.jlock;
                Mutex.unlock job.jlock);
            drive ()
          end
    in
    drive ();
    (match !producer_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    !acc
  end
