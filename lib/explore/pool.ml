type task = unit -> unit

type t = {
  n_domains : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

(* set while a domain executes a pool task, so a nested [map] from
   inside a task degrades to the sequential path instead of parking
   every domain in a wait *)
let inside_task = Domain.DLS.new_key (fun () -> false)

let domains t = t.n_domains

let run_task task =
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task false) task

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      if Queue.is_empty t.queue then
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
      else Some (Queue.pop t.queue)
    in
    let task = next () in
    Mutex.unlock t.lock;
    match task with
    | None -> ()
    | Some task ->
        run_task task;
        loop ()
  in
  loop ()

let create ?domains () =
  let n_domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domain count must be at least 1";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      n_domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  if n_domains > 1 then
    t.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t = create () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

(* One slot per input element; chunks write disjoint ranges, so the
   only synchronisation needed is the completion count. *)
let mapi ?chunk t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when t.n_domains <= 1 || Domain.DLS.get inside_task -> List.mapi f xs
  | _ ->
      if t.closed then invalid_arg "Pool.map: pool is shut down";
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let chunk_size =
        match chunk with
        | Some c ->
            if c < 1 then invalid_arg "Pool.map: chunk must be at least 1";
            c
        | None -> max 1 ((n + (4 * t.n_domains) - 1) / (4 * t.n_domains))
      in
      let n_chunks = (n + chunk_size - 1) / chunk_size in
      let pending = ref n_chunks in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      let run_chunk lo () =
        let hi = min n (lo + chunk_size) in
        for i = lo to hi - 1 do
          results.(i) <-
            (try Some (Ok (f i arr.(i)))
             with e -> Some (Error (e, Printexc.get_raw_backtrace ())))
        done;
        Mutex.lock done_lock;
        decr pending;
        if !pending = 0 then Condition.signal done_cond;
        Mutex.unlock done_lock
      in
      Mutex.lock t.lock;
      for c = 0 to n_chunks - 1 do
        Queue.add (run_chunk (c * chunk_size)) t.queue
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.lock;
      (* the submitter works too: drain tasks until the queue is empty,
         then wait for the in-flight chunks *)
      let rec help () =
        Mutex.lock t.lock;
        let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
        Mutex.unlock t.lock;
        match task with
        | Some task ->
            run_task task;
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock done_lock;
      while !pending > 0 do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock;
      List.init n (fun i ->
          match results.(i) with
          | Some (Ok v) -> v
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | None -> assert false)

let map ?chunk t f xs = mapi ?chunk t (fun _ x -> f x) xs

let map_reduce ?chunk t ~map:fm ~reduce ~init xs =
  List.fold_left reduce init (map ?chunk t fm xs)
