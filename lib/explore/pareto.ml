let norm x = if Float.is_nan x then Float.infinity else x

let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: mismatched objective counts";
  let no_worse = ref true and better = ref false in
  Array.iteri
    (fun i ai ->
      let ai = norm ai and bi = norm b.(i) in
      if ai > bi then no_worse := false;
      if ai < bi then better := true)
    a;
  !no_worse && !better

module Front = struct
  module Fmap = Map.Make (Float)

  type 'a entry = { objs : float array; stamp : int; item : 'a }

  (* The two-objective case — price × cost, every front the engine
     builds — keeps the staircase invariant: keys (objective 0)
     strictly increasing, objective 1 strictly decreasing, so one
     insert is a predecessor lookup (the only possible dominator has
     minimal obj1 among keys <= x0) plus removal of a contiguous run
     of dominated successors: O(log n) amortised instead of the list
     scan the old fold did.  Buckets hold full-vector ties, which all
     survive.  Other dimensions fall back to a linear scan of the
     (small) surviving front. *)
  type 'a repr =
    | Empty
    | Two of 'a entry list Fmap.t  (* key = objs.(0); bucket shares objs *)
    | Any of int * 'a entry list  (* dimension, survivors *)

  type 'a t = { next : int; repr : 'a repr }

  let empty = { next = 0; repr = Empty }

  let size t =
    match t.repr with
    | Empty -> 0
    | Two m -> Fmap.fold (fun _ b n -> n + List.length b) m 0
    | Any (_, es) -> List.length es

  let bucket_obj1 = function
    | { objs; _ } :: _ -> objs.(1)
    | [] -> assert false

  let insert_two m (e : _ entry) =
    let x0 = e.objs.(0) and x1 = e.objs.(1) in
    match Fmap.find_last_opt (fun k -> k <= x0) m with
    | Some (k0, bucket) when k0 = x0 && bucket_obj1 bucket = x1 ->
        (* full-vector tie: everyone survives *)
        Some (Fmap.add x0 (bucket @ [ e ]) m)
    | Some (_, bucket) when bucket_obj1 bucket <= x1 ->
        (* the predecessor is no worse on both axes and not equal *)
        None
    | _ ->
        (* remove the contiguous run of dominated successors *)
        let rec strip m =
          match Fmap.find_first_opt (fun k -> k >= x0) m with
          | Some (k0, bucket) when bucket_obj1 bucket >= x1 ->
              strip (Fmap.remove k0 m)
          | _ -> m
        in
        Some (Fmap.add x0 [ e ] (strip m))

  let insert_any dim es (e : _ entry) =
    if List.exists (fun o -> dominates o.objs e.objs) es then None
    else Some (dim, List.filter (fun o -> not (dominates e.objs o.objs)) es @ [ e ])

  let insert_entry t (e : _ entry) =
    let d = Array.length e.objs in
    if d = 0 then invalid_arg "Pareto.Front.insert: empty objective vector";
    match t.repr with
    | Empty ->
        if d = 2 then { next = t.next + 1; repr = Two (Fmap.add e.objs.(0) [ e ] Fmap.empty) }
        else { next = t.next + 1; repr = Any (d, [ e ]) }
    | Two m ->
        if d <> 2 then invalid_arg "Pareto.Front.insert: mismatched objective counts";
        let m = match insert_two m e with Some m -> m | None -> m in
        { next = t.next + 1; repr = Two m }
    | Any (dim, es) ->
        if d <> dim then invalid_arg "Pareto.Front.insert: mismatched objective counts";
        let repr =
          match insert_any dim es e with
          | Some (dim, es) -> Any (dim, es)
          | None -> Any (dim, es)
        in
        { next = t.next + 1; repr }

  let insert t objs item =
    let objs = Array.map norm objs in
    insert_entry t { objs; stamp = t.next; item }

  let entries t =
    let es =
      match t.repr with
      | Empty -> []
      | Two m -> Fmap.fold (fun _ b acc -> List.rev_append b acc) m []
      | Any (_, es) -> es
    in
    List.sort (fun a b -> compare a.stamp b.stamp) es

  let elements t = List.map (fun e -> e.item) (entries t)
  let points t = List.map (fun e -> (e.objs, e.item)) (entries t)

  let merge a b =
    (* b's survivors join after all of a's, keeping b's relative
       order — the reduce step folds partial fronts left to right, so
       merged insertion order is deterministic *)
    List.fold_left (fun t e -> insert_entry t { e with stamp = t.next }) a (entries b)
end

let front ~objectives items =
  let objs = List.map objectives items in
  (match objs with
  | [] -> ()
  | o0 :: rest ->
      let d = Array.length o0 in
      List.iter
        (fun o ->
          if Array.length o <> d then
            invalid_arg "Pareto.front: mismatched objective counts")
        rest);
  let f, _ =
    List.fold_left
      (fun (f, i) o -> (Front.insert f o i, i + 1))
      (Front.empty, 0) objs
  in
  let surviving = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace surviving i ()) (Front.elements f);
  List.filteri (fun i _ -> Hashtbl.mem surviving i) items

let sort_by ~objective items =
  List.stable_sort (fun a b -> Float.compare (norm (objective a)) (norm (objective b))) items
