let norm x = if Float.is_nan x then Float.infinity else x

let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: mismatched objective counts";
  let no_worse = ref true and better = ref false in
  Array.iteri
    (fun i ai ->
      let ai = norm ai and bi = norm b.(i) in
      if ai > bi then no_worse := false;
      if ai < bi then better := true)
    a;
  !no_worse && !better

let front ~objectives items =
  let objs = Array.of_list (List.map objectives items) in
  (match items with
  | [] -> ()
  | _ ->
      let d = Array.length objs.(0) in
      Array.iter
        (fun o ->
          if Array.length o <> d then
            invalid_arg "Pareto.front: mismatched objective counts")
        objs);
  List.filteri
    (fun i it ->
      ignore it;
      let dominated = ref false in
      Array.iteri (fun j oj -> if j <> i && dominates oj objs.(i) then dominated := true) objs;
      not !dominated)
    items

let sort_by ~objective items =
  List.stable_sort (fun a b -> Float.compare (norm (objective a)) (norm (objective b))) items
