(** Non-dominated (Pareto) front extraction over minimised objectives.

    The design-space engine evaluates candidate implementations into
    multi-objective points — platform price, control cost, I/O latency
    — and the decision surface is the set of candidates no other
    candidate beats on every objective at once (cf. the
    multi-candidate implementation grids of Di Benedetto et al.,
    arXiv:1308.5331). *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one (all objectives minimised).  NaN
    objectives compare as [+inf].  Raises [Invalid_argument] on
    mismatched lengths. *)

val front : objectives:('a -> float array) -> 'a list -> 'a list
(** The elements dominated by no other element, in their original
    order.  Elements with identical objective vectors all survive
    (none strictly dominates the other).  O(n²) pairwise scan —
    candidate grids are thousands of points at most. *)

val sort_by : objective:('a -> float) -> 'a list -> 'a list
(** Stable ascending sort by one objective — for rendering fronts. *)
