(** Non-dominated (Pareto) front extraction over minimised objectives.

    The design-space engine evaluates candidate implementations into
    multi-objective points — platform price, control cost, I/O latency
    — and the decision surface is the set of candidates no other
    candidate beats on every objective at once (cf. the
    multi-candidate implementation grids of Di Benedetto et al.,
    arXiv:1308.5331). *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one (all objectives minimised).  NaN
    objectives compare as [+inf].  Raises [Invalid_argument] on
    mismatched lengths. *)

module Front : sig
  (** Incremental non-dominated front — the accumulator of the
      streaming sweep's reduce step.  Functional (inserts share
      structure), so a snapshot is just the current value.

      The two-objective case — price × cost, every front the engine
      builds — is kept as a staircase (objective 0 strictly
      increasing, objective 1 strictly decreasing) in a float-keyed
      map: one insert costs a predecessor dominance lookup plus
      removal of a contiguous dominated run, O(log n) amortised,
      instead of the O(front) scan per point the post-hoc fold paid.
      Full-vector ties all survive.  Other objective counts fall back
      to a linear scan of the surviving front. *)

  type 'a t

  val empty : 'a t

  val insert : 'a t -> float array -> 'a -> 'a t
  (** [insert t objs x] adds [x] with objective vector [objs] (all
      minimised, NaN as [+inf]): dropped if dominated, otherwise
      kept, evicting the points it dominates.  Raises
      [Invalid_argument] on an empty vector or a length differing
      from earlier inserts. *)

  val merge : 'a t -> 'a t -> 'a t
  (** [merge a b] inserts [b]'s survivors into [a] ([b]'s elements
      rank after all of [a]'s in insertion order) — the reduce step
      for per-shard partial fronts. *)

  val elements : 'a t -> 'a list
  (** Survivors in insertion order. *)

  val points : 'a t -> (float array * 'a) list
  (** Survivors with their (NaN-normalized) objective vectors, in
      insertion order. *)

  val size : 'a t -> int
end

val front : objectives:('a -> float array) -> 'a list -> 'a list
(** The elements dominated by no other element, in their original
    order.  Elements with identical objective vectors all survive
    (none strictly dominates the other).  Folds through {!Front}, so
    large point sets cost O(n log f) for a surviving front of size
    [f] instead of the old O(n²) pairwise scan. *)

val sort_by : objective:('a -> float) -> 'a list -> 'a list
(** Stable ascending sort by one objective — for rendering fronts. *)
