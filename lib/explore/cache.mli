(** Memoizing evaluation cache: a bounded content-addressed table from
    canonical problem digests (see {!Key}) to evaluation results, with
    hit/miss/eviction counters for reports.

    Identical adequation / co-simulation sub-problems recur constantly
    across sweeps and grids (the same ideal simulation under every
    latency fraction, the same candidate under two grids, a re-run of
    an experiment); because every evaluation in scilife is
    deterministic, a result keyed by the full problem digest can be
    replayed from the cache bit-for-bit.

    Thread-safety: safe to share across pool domains.  Entry values
    are computed {e outside} the lock, so two domains missing the same
    key concurrently may both compute it (both count as misses, one
    insertion wins) — harmless, since values are deterministic.
    Eviction is insertion-order (FIFO) once [capacity] is exceeded.

    {2 Persistence}

    A cache can be backed by an append-only log file
    ({!open_backing}), so a long-lived service — [syndex serve] — can
    persist its memo table across restarts.  Every insertion is
    appended as a length-prefixed record {e while the cache lock is
    held}: concurrent writers can neither interleave partial records
    nor insert into the table without the matching log write (the
    lost-write window an unlocked append would open).  Reloading
    replays the insert sequence through the same FIFO eviction, so the
    table converges to the live window the writing process ended with;
    a trailing record truncated by a crash is dropped.  Evicted or
    replaced entries keep their old records (which replay harmlessly)
    until the log outgrows its compaction threshold, at which point it
    is rewritten with only the live entries — written complete to a
    sibling file and atomically renamed over the log, so a crash
    mid-compaction leaves either the old log or the new one and the
    truncated-tail replay contract is untouched ({!compact}). *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** live entries *)
  capacity : int;
}

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 4096 entries.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val find_or_add : 'a t -> key:string -> (unit -> 'a) -> 'a
(** [find_or_add c ~key f] returns the cached value for [key] (a hit —
    the stored value itself, not a copy), or computes [f ()], stores
    it and returns it (a miss).  An [f] that raises caches nothing. *)

val find_opt : 'a t -> key:string -> 'a option
(** Lookup without computing; counts as a hit or a miss. *)

val add : 'a t -> key:string -> 'a -> unit
(** Unconditional insertion (replaces an existing entry); does not
    touch the hit/miss counters. *)

val open_backing :
  ?compact_threshold:int ->
  'a t ->
  path:string ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  int
(** Attaches [path] as the cache's append-only log: existing records
    are replayed into the (necessarily empty) cache — the returned
    count — and every subsequent insertion is appended.  [encode] /
    [decode] must round-trip; values may contain any bytes including
    newlines.  A record torn by a crash is dropped and the file is
    trimmed back to the last complete record, so post-crash appends
    stay replayable.  Once the log grows past [compact_threshold]
    bytes (default 1 MiB; [0] disables) an append triggers a
    live-entries rewrite; to avoid thrashing when the live set itself
    is large, re-compaction waits until the log doubles the size the
    last rewrite left it at.  Raises [Invalid_argument] when the cache
    already holds entries or is already backed, or on a negative
    threshold; [Sys_error] when the path cannot be opened. *)

val compact : 'a t -> int
(** Rewrites the backing log with one record per live entry, in
    insertion order, and returns the number written — the explicit
    form of the automatic threshold-triggered rewrite.  The
    replacement is fully written and flushed to a sibling file, then
    atomically renamed over the log.  Returns [0] on an unbacked or
    closed cache. *)

val flush : 'a t -> unit
(** Flushes buffered log appends to the file.  No-op on an unbacked or
    closed cache. *)

val close : 'a t -> unit
(** Flushes and closes the backing log (idempotent; no-op when
    unbacked).  The cache remains usable in memory; further insertions
    are simply no longer persisted.  Call before process exit — only
    flushed records survive a restart. *)

val stats : 'a t -> stats
val hit_rate : stats -> float
(** Hits over lookups, [nan] before the first lookup. *)

val reset : 'a t -> unit
(** Drops all entries and zeroes the counters; a backing log is
    truncated so a reload cannot resurrect the dropped entries. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["42 hits / 18 misses (70.0 % hit rate), 18 entries, 0 evictions"]. *)
