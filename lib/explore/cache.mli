(** Memoizing evaluation cache: a bounded content-addressed table from
    canonical problem digests (see {!Key}) to evaluation results, with
    hit/miss/eviction counters for reports.

    Identical adequation / co-simulation sub-problems recur constantly
    across sweeps and grids (the same ideal simulation under every
    latency fraction, the same candidate under two grids, a re-run of
    an experiment); because every evaluation in scilife is
    deterministic, a result keyed by the full problem digest can be
    replayed from the cache bit-for-bit.

    Thread-safety: safe to share across pool domains.  Entry values
    are computed {e outside} the lock, so two domains missing the same
    key concurrently may both compute it (both count as misses, one
    insertion wins) — harmless, since values are deterministic.
    Eviction is insertion-order (FIFO) once [capacity] is exceeded. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** live entries *)
  capacity : int;
}

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 4096 entries.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val find_or_add : 'a t -> key:string -> (unit -> 'a) -> 'a
(** [find_or_add c ~key f] returns the cached value for [key] (a hit —
    the stored value itself, not a copy), or computes [f ()], stores
    it and returns it (a miss).  An [f] that raises caches nothing. *)

val find_opt : 'a t -> key:string -> 'a option
(** Lookup without computing; counts as a hit or a miss. *)

val add : 'a t -> key:string -> 'a -> unit
(** Unconditional insertion (replaces an existing entry); does not
    touch the hit/miss counters. *)

val stats : 'a t -> stats
val hit_rate : stats -> float
(** Hits over lookups, [nan] before the first lookup. *)

val reset : 'a t -> unit
(** Drops all entries and zeroes the counters. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["42 hits / 18 misses (70.0 % hit rate), 18 entries, 0 evictions"]. *)
