(** Declarative candidate grids: the cross-product of platforms ×
    latency fractions × execution-time seeds that the exploration
    engine evaluates through the pool and cache.

    A {e platform} is a priced architecture together with its WCET
    characterisation as a function of the latency fraction (the "same
    software on this hardware at this speed" axis the sweeps already
    use); a {e candidate} is one platform at one fraction under one
    co-simulation mode.  The periods axis of a full design-space sweep
    is carried by evaluating the grid against several designs (one per
    sampling period) — see [Lifecycle.Explorer]. *)

type platform = {
  label : string;
  price : float;  (** relative platform cost, first Pareto objective *)
  architecture : Aaa.Architecture.t;
  durations_of : float -> Aaa.Durations.t;
      (** WCET/BCET table placing the static I/O latency at the given
          fraction of the period *)
}

type candidate = {
  platform : platform;
  fraction : float;
  mode : Translator.Delay_graph.mode;
}

val seq :
  ?fractions:float list ->
  ?seeds:int list ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  platforms:platform list ->
  unit ->
  candidate Seq.t
(** The grid as a lazy stream in deterministic row-major order
    (platform, then fraction, then seed) — the producer the streaming
    sweep ([Pool.map_reduce_seq] / [Lifecycle.Explorer.evaluate_seq])
    pulls from, so million-candidate spaces are never materialized.
    Default fractions [0.3; 0.6; 0.9].  With [seeds = []] (the
    default) each cell is costed once under the static WCET model;
    otherwise once per seed under [Jittered { law; bcet_frac; seed }]
    (defaults: uniform law, BCET fraction 0.4).  The argument lists
    are validated eagerly: raises [Invalid_argument] on an empty
    platform or fraction list, or fractions outside (0, 1]. *)

val count :
  ?fractions:float list ->
  ?seeds:int list ->
  platforms:platform list ->
  unit ->
  int
(** Number of candidates {!seq} yields for the same arguments, without
    materializing anything. *)

val candidates :
  ?fractions:float list ->
  ?seeds:int list ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  platforms:platform list ->
  unit ->
  candidate list
(** [List.of_seq] of {!seq} — the eager form the list-based engine
    uses.  Warns once on stderr when asked to materialize more than
    10⁵ candidates (stream instead). *)

val size : candidate list -> int
val tag : candidate -> string
(** Compact candidate id, e.g. ["fast_mcu f=0.6 seed=901"]. *)
