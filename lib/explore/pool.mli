(** Fixed-size domain worker pool with deterministic chunked mapping.

    The design-space engine's unit of parallelism is one candidate
    evaluation — an adequation plus a co-simulation, milliseconds to
    seconds of pure computation building only fresh data structures —
    so a coarse-grained pool over OCaml 5 domains parallelises it
    near-linearly (cf. the map-reduce synthesis of Alimguzhin et al.,
    arXiv:1210.2276).

    Determinism contract: {!map} applies a {e pure} function to every
    element and places each result by its input index, so the output
    equals [List.map f xs] {e bit for bit} whatever the domain count,
    chunking or scheduling — the same discipline as the fault model's
    pure-hash sampler.  Functions must not rely on shared mutable
    state; everything in scilife's evaluation path builds fresh graphs
    per call and qualifies.

    When the pool has a single domain (the default on a single-core
    host, where [Domain.recommended_domain_count () = 1]) no domain is
    ever spawned and every operation degrades to the plain sequential
    implementation. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    submitting domain participates in its own maps, so [domains]
    domains compute in total).  Default
    [Domain.recommended_domain_count ()].  Raises [Invalid_argument]
    on [domains < 1]. *)

val domains : t -> int
(** The pool's total domain count (workers + the submitter). *)

val default : unit -> t
(** The shared process-wide pool, created on first use with the
    recommended domain count — what [?pool] arguments default to. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed by the pool's domains
    in chunks of [chunk] elements (default: enough chunks to balance
    the load, about four per domain).  Results come back in input
    order regardless of execution order.  If any application raises,
    the exception of the {e smallest} input index is re-raised after
    all chunks finish (so the raised exception is deterministic too).
    Reentrant calls from inside a pool task fall back to the
    sequential path rather than deadlock. *)

val mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Index-passing variant of {!map}. *)

val map_reduce :
  ?chunk:int -> t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce pool ~map ~reduce ~init xs] folds the mapped results
    in input order: identical to
    [List.fold_left reduce init (List.map map xs)] whatever the domain
    count.  Only the map runs in parallel. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent.  A pool must
    not be used after shutdown. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and always shuts it down —
    the scoped form tests and benchmarks use. *)
