(** Fixed-size domain worker pool with work-stealing deques and
    deterministic mapping.

    The design-space engine's unit of parallelism is one candidate
    evaluation — an adequation plus a co-simulation, milliseconds to
    seconds of pure computation building only fresh data structures —
    so a coarse-grained pool over OCaml 5 domains parallelises it
    near-linearly (cf. the map-reduce synthesis of Alimguzhin et al.,
    arXiv:1210.2276).

    Scheduling: each participating domain owns a deque of work chunks;
    the owner works off the front, and a domain that runs dry steals
    the {e back half} of the fullest other deque in one grab.  Compared
    to the static chunk assignment this replaces, irregular
    per-element costs (a cache hit is ~µs, a cold co-simulation ~ms)
    no longer leave domains idle at chunk barriers.  Chunks carry
    their result placement with them, so stealing never shows in the
    output.

    Determinism contract: {!map} applies a {e pure} function to every
    element and places each result by its input index, so the output
    equals [List.map f xs] {e bit for bit} whatever the domain count,
    chunking, stealing or scheduling — the same discipline as the
    fault model's pure-hash sampler.  Functions must not rely on
    shared mutable state; everything in scilife's evaluation path
    builds fresh graphs per call and qualifies.

    When the pool has a single domain (the default on a single-core
    host, where [Domain.recommended_domain_count () = 1]) no domain is
    ever spawned and every operation degrades to the plain sequential
    implementation. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    submitting domain participates in its own maps, so [domains]
    domains compute in total).  Default
    [Domain.recommended_domain_count ()].  Raises [Invalid_argument]
    on [domains < 1]. *)

val domains : t -> int
(** The pool's total domain count (workers + the submitter). *)

val default : unit -> t
(** The shared process-wide pool, created on first use with the
    recommended domain count — what [?pool] arguments default to. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed by the pool's domains
    in chunks of [chunk] elements (default: enough chunks to balance
    the load, about four per domain).  Results come back in input
    order regardless of execution order.  If any application raises,
    the exception of the {e smallest} input index is re-raised after
    all chunks finish (so the raised exception is deterministic too).
    Reentrant calls from inside a pool task fall back to the
    sequential path rather than deadlock. *)

val mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Index-passing variant of {!map}. *)

val map_reduce :
  ?chunk:int -> t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce pool ~map ~reduce ~init xs] folds the mapped results
    in input order: identical to
    [List.fold_left reduce init (List.map map xs)] whatever the domain
    count.  Only the map runs in parallel. *)

val map_reduce_seq :
  ?chunk:int ->
  ?snapshot_every:int ->
  ?snapshot:(evaluated:int -> 'acc -> unit) ->
  t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a Seq.t ->
  'acc
(** [map_reduce_seq pool ~map ~reduce ~init xs] is the streaming form
    of {!map_reduce}: the input sequence is pulled in small batches of
    [chunk]-element chunks (default 8) as domains run dry, so spaces
    of millions of candidates are swept without ever materializing a
    list.  The mapped results are folded {e strictly in input order}
    on the submitting domain (which interleaves reducing with chunk
    evaluation of its own), so the result equals
    [Seq.fold_left reduce init (Seq.map map xs)] bit for bit whatever
    the domain count.

    [snapshot] is an anytime callback: after every [snapshot_every]
    elements reduced (default 4096) it receives the running
    accumulator and the exact count reduced so far — same cadence on
    the sequential path, so snapshot-observable behaviour is
    deterministic too.  The callback runs on the submitting domain;
    it must not mutate the accumulator.

    Exceptions: the first raising element {e in input order} wins —
    its exception is re-raised and the remaining stream is abandoned
    (chunks already in flight still complete).  A producer ([Seq])
    exception is re-raised after everything yielded before it has
    been reduced, exactly where the sequential fold would raise.
    Raises [Invalid_argument] on [chunk < 1] or
    [snapshot_every < 1]. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains.  Idempotent.  A pool must
    not be used after shutdown. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and always shuts it down —
    the scoped form tests and benchmarks use. *)
