(** Timed schedules — the output of the adequation.

    A schedule assigns every operation a (operator, start, WCET)
    slot and every inter-operator dependency a (medium, start,
    duration) communication slot, such that on each operator and each
    medium the slots form a total order (the off-line non-preemptive
    schedule of paper §3.2).  All times are offsets from the start of
    one iteration; the schedule repeats every {!Algorithm.period}. *)

type comp_slot = {
  cs_op : Algorithm.op_id;
  cs_operator : Architecture.operator_id;
  cs_start : float;
  cs_duration : float;  (** WCET used by the adequation *)
}

type comm_slot = {
  cm_src : Algorithm.op_id * int;  (** producing (operation, output) *)
  cm_dst : Algorithm.op_id * int;  (** consuming (operation, input);
      port [-1] marks a conditioning-variable broadcast *)
  cm_medium : Architecture.medium_id;
  cm_from : Architecture.operator_id;
  cm_to : Architecture.operator_id;
  cm_hop : int;
      (** position in the transfer's route: [0] leaves the producer's
          operator; the last hop reaches the consumer's.  Direct
          transfers have a single hop [0]. *)
  cm_start : float;
  cm_duration : float;
  cm_read : float;
      (** planned read offset of the consumer: the instant the
          time-triggered executive samples the transferred value.
          Defaults to [cm_start +. cm_duration] (read at completion);
          {!insert_slack} moves it later to reserve a retransmission
          window.  Never earlier than completion (rule SCHED012). *)
}

val read_offset : comm_slot -> float
(** [cm_read], the planned read offset. *)

val retry_slack : comm_slot -> float
(** [cm_read - (cm_start + cm_duration)]: the slack reserved between a
    transfer's completion and its planned read. *)

type t = {
  algorithm : Algorithm.t;
  architecture : Architecture.t;
  comp : comp_slot list;  (** ascending start time *)
  comm : comm_slot list;  (** ascending start time *)
  makespan : float;
}

val make :
  algorithm:Algorithm.t ->
  architecture:Architecture.t ->
  comp:comp_slot list ->
  comm:comm_slot list ->
  t
(** Sorts the slots, computes the makespan and checks well-formedness:
    non-negative slot times, no overlap on an operator or medium, every
    operation scheduled exactly once, precedence respected (a consumer
    starts no earlier than its producers' data arrives).  Raises
    [Invalid_argument] if violated; the message names the offending
    operations, operators and intervals and carries a ["[SCHEDnnn]"]
    rule identifier from the [Verify.Rules] catalogue. *)

val operator_of : t -> Algorithm.op_id -> Architecture.operator_id
val slot_of : t -> Algorithm.op_id -> comp_slot

val on_operator : t -> Architecture.operator_id -> comp_slot list
(** Slots of one operator in execution order. *)

val on_medium : t -> Architecture.medium_id -> comm_slot list

val transfer_chain :
  t ->
  (Algorithm.op_id * int) * (Algorithm.op_id * int) ->
  from_operator:Architecture.operator_id ->
  to_operator:Architecture.operator_id ->
  comm_slot list
(** The hop chain carrying one dependency between two operators, in
    hop order; checks the chain is contiguous and well-timed.  Raises
    [Invalid_argument] when absent or malformed. *)

val sensor_completions : t -> (Algorithm.op_id * float) list
(** For each sensor operation [j], the static completion offset of its
    slot — the WCET-based sampling instant [I_j] within the period
    (so the static sampling latency of paper eq. (1) is this value). *)

val actuator_completions : t -> (Algorithm.op_id * float) list
(** Same for actuators — the static actuation instants [O_j]
    (paper eq. (2)). *)

val fits_period : t -> bool
(** Whether [makespan <= period]: the real-time constraint of the
    implementation. *)

val insert_slack : slack_of:(comm_slot -> float) -> t -> t
(** Schedule-time slack insertion (closing the retransmission/read gap
    of the time-triggered executive): for every transfer [c], move its
    planned read offset to [completion +. slack_of c] and retime all
    downstream slots — consumers start no earlier than their inputs'
    read offsets, later transfers on the same medium (and later hops of
    the same route) start no earlier than the previous read offset, so
    the reserved window stays free for retries.  Start times only move
    later; the total order on every operator and medium is preserved.
    The makespan may grow — check {!fits_period} (or Verify's REC
    rules) afterwards.  Raises [Invalid_argument] with a rule id if the
    retimed schedule is infeasible. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing, one line per slot. *)
