(** SynDEx-style architecture graphs: operators (processors, or
    hardware accelerators treated as single-operation processors)
    connected by communication media (shared buses or point-to-point
    links). *)

type operator_id = private int
type medium_id = private int

type medium_kind =
  | Bus  (** shared broadcast medium (e.g. CAN): one transfer at a time *)
  | Point_to_point  (** dedicated link between exactly two operators *)

type t

val create : name:string -> t
val name : t -> string

val add_operator : t -> name:string -> operator_id
(** Adds a processor.  Names must be unique. *)

val add_medium :
  t ->
  name:string ->
  kind:medium_kind ->
  ?latency:float ->
  time_per_word:float ->
  operator_id list ->
  medium_id
(** Adds a medium connecting the given operators.  Transferring a
    message of [w] words takes [latency + w·time_per_word]
    (default latency [0.]).  A point-to-point medium must connect
    exactly two distinct operators; a bus at least two, and a bus must
    have [time_per_word > 0] — a zero word time would give it infinite
    capacity, which the shared-bus analyses (media utilization,
    arbitration) cannot price.  Raises [Invalid_argument] with an
    ["[ARCH002]"] prefix on violated timing/topology constraints. *)

val operator_count : t -> int
val medium_count : t -> int
val operators : t -> operator_id list
val media : t -> medium_id list
val operator_name : t -> operator_id -> string
val medium_name : t -> medium_id -> string
val medium_kind : t -> medium_id -> medium_kind
val find_operator : t -> string -> operator_id option
val find_medium : t -> string -> medium_id option

val medium_endpoints : t -> medium_id -> operator_id list

val comm_duration : t -> medium_id -> words:int -> float
(** Transfer duration of a [words]-scalar message. *)

val connecting : t -> operator_id -> operator_id -> medium_id list
(** All media joining two distinct operators directly (possibly
    empty). *)

val routes :
  ?max_hops:int ->
  ?max_routes:int ->
  t ->
  operator_id ->
  operator_id ->
  (medium_id * operator_id) list list
(** Simple routes from the first operator to the second: each route is
    the hop list [(medium, operator reached)], ending at the
    destination.  Routes are enumerated shortest-first (breadth-first
    over simple paths), limited to [max_hops] (default 3) and
    [max_routes] (default 8).  Gateways — operators relaying between
    two media — appear as intermediate hop endpoints.  Raises
    [Invalid_argument] on identical endpoints. *)

val validate : t -> unit
(** Checks there is at least one operator and that the operator graph
    induced by media is connected when more than one operator
    exists. *)

(** {2 Ready-made topologies} *)

val single : ?proc_name:string -> unit -> t
(** One processor, no media. *)

val bus_topology :
  ?name:string ->
  ?latency:float ->
  time_per_word:float ->
  string list ->
  t
(** Processors named by the list, all on one shared bus — the typical
    automotive CAN architecture of the paper's target domain.  Same
    constraints as {!add_medium} with [~kind:Bus]: at least two
    processors and [time_per_word > 0]. *)

val fully_connected :
  ?name:string -> ?latency:float -> time_per_word:float -> string list -> t
(** Point-to-point link between every pair of processors. *)
