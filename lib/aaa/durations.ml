type entry = { mutable wcet : float; mutable bcet : float option }

type t = (string * string, entry) Hashtbl.t

let create () = Hashtbl.create 64

let set table ~op ~operator value =
  if value < 0. then invalid_arg "[DUR001] Durations.set: negative WCET";
  match Hashtbl.find_opt table (op, operator) with
  | Some entry ->
      entry.wcet <- value;
      (match entry.bcet with
      | Some b when b > value -> entry.bcet <- None
      | Some _ | None -> ())
  | None -> Hashtbl.replace table (op, operator) { wcet = value; bcet = None }

let set_bcet table ~op ~operator value =
  if value < 0. then invalid_arg "[DUR001] Durations.set_bcet: negative BCET";
  match Hashtbl.find_opt table (op, operator) with
  | None -> invalid_arg "[DUR002] Durations.set_bcet: set the WCET first"
  | Some entry ->
      if value > entry.wcet then invalid_arg "[DUR002] Durations.set_bcet: BCET exceeds WCET";
      entry.bcet <- Some value

let set_everywhere table ~op ~operators value =
  List.iter (fun operator -> set table ~op ~operator value) operators

let wcet table ~op ~operator =
  Option.map (fun e -> e.wcet) (Hashtbl.find_opt table (op, operator))

let bcet table ~op ~operator =
  Option.map
    (fun e -> match e.bcet with Some b -> b | None -> e.wcet)
    (Hashtbl.find_opt table (op, operator))

let can_run table ~op ~operator = Hashtbl.mem table (op, operator)

let fold table ~init ~f =
  Hashtbl.fold
    (fun (op, operator) entry acc ->
      let bcet = match entry.bcet with Some b -> b | None -> entry.wcet in
      f ~op ~operator ~wcet:entry.wcet ~bcet acc)
    table init

let scale table factor =
  if factor <= 0. then invalid_arg "Durations.scale: non-positive factor";
  let scaled = create () in
  fold table ~init:() ~f:(fun ~op ~operator ~wcet ~bcet () ->
      set scaled ~op ~operator (wcet *. factor);
      if bcet < wcet then set_bcet scaled ~op ~operator (bcet *. factor));
  scaled

let of_measurements ?(margin = 0.2) rows =
  if margin < 0. then invalid_arg "Durations.of_measurements: negative margin";
  let table = create () in
  List.iter
    (fun (op, operator, samples) ->
      match samples with
      | [] -> invalid_arg "Durations.of_measurements: empty sample list"
      | first :: rest ->
          List.iter
            (fun s ->
              if s < 0. then invalid_arg "Durations.of_measurements: negative sample")
            samples;
          let worst = List.fold_left Float.max first rest in
          let best = List.fold_left Float.min first rest in
          set table ~op ~operator (worst *. (1. +. margin));
          set_bcet table ~op ~operator best)
    rows;
  table

let average_wcet table ~op ~operators =
  let values = List.filter_map (fun operator -> wcet table ~op ~operator) operators in
  match values with
  | [] -> None
  | _ :: _ ->
      Some (List.fold_left ( +. ) 0. values /. float_of_int (List.length values))
