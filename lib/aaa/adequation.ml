type strategy = Pressure | Earliest_finish

exception Infeasible of string

let infeasible fmt = Printf.ksprintf (fun s -> raise (Infeasible s)) fmt

(* array-index views of the abstract ids *)
let oi (x : Algorithm.op_id) = (x :> int)
let pi (x : Architecture.operator_id) = (x :> int)
let mi (x : Architecture.medium_id) = (x :> int)

(* Dependencies driving scheduling: real data dependencies plus an
   implicit width-1 edge from each conditioning-variable source to
   every operation conditioned on it (unless a data edge from that
   source port already exists).  The virtual edges use destination
   port -1. *)
let scheduling_deps algorithm =
  let deps = Algorithm.dependencies algorithm in
  let cond_deps =
    List.filter_map
      (fun op ->
        match Algorithm.op_cond algorithm op with
        | None -> None
        | Some { Algorithm.var; _ } -> (
            match Algorithm.condition_source algorithm ~var with
            | None -> None (* validate will have rejected this *)
            | Some (src, sp) ->
                let already =
                  List.exists (fun ((s, p), (d, _)) -> s = src && p = sp && d = op) deps
                in
                if already || src = op then None else Some ((src, sp), (op, -1))))
      (Algorithm.ops algorithm)
  in
  deps @ cond_deps

let dep_width algorithm ((src, sp), (_, dp)) =
  if dp = -1 then 1 else (Algorithm.op_outputs algorithm src).(sp)

(* Tail levels (remaining critical path) over precedence edges,
   using operator-averaged WCETs and ignoring communications. *)
let tail_levels ~algorithm ~architecture ~durations deps =
  let operator_names =
    List.map (Architecture.operator_name architecture) (Architecture.operators architecture)
  in
  let avg op =
    match
      Durations.average_wcet durations ~op:(Algorithm.op_name algorithm op)
        ~operators:operator_names
    with
    | Some v -> v
    | None ->
        if Algorithm.op_kind algorithm op = Algorithm.Memory then 0.
        else
          infeasible "operation %S cannot run on any operator"
            (Algorithm.op_name algorithm op)
  in
  let n = Algorithm.op_count algorithm in
  let tails = Array.make n 0. in
  let order = List.rev (Algorithm.topological_order algorithm) in
  List.iter
    (fun op ->
      let succ_tail =
        List.fold_left
          (fun acc ((s, _), (d, _)) ->
            if s = op && Algorithm.op_kind algorithm s <> Algorithm.Memory then
              Float.max acc tails.(oi d)
            else acc)
          0. deps
      in
      tails.(oi op) <- avg op +. succ_tail)
    order;
  tails

let critical_path ~algorithm ~architecture ~durations =
  let deps = scheduling_deps algorithm in
  let tails = tail_levels ~algorithm ~architecture ~durations deps in
  Array.fold_left Float.max 0. tails

type placed = { p_operator : Architecture.operator_id; p_start : float; p_finish : float }

let run ?(strategy = Pressure) ?(pins = []) ~algorithm ~architecture ~durations () =
  Algorithm.validate algorithm;
  Architecture.validate architecture;
  let n = Algorithm.op_count algorithm in
  let operator_ids = Architecture.operators architecture in
  let deps = scheduling_deps algorithm in
  let tails = tail_levels ~algorithm ~architecture ~durations deps in
  (* resolve pins *)
  let pin_table = Hashtbl.create 8 in
  List.iter
    (fun (op_name, operator_name) ->
      match Algorithm.find_op algorithm op_name with
      | None -> invalid_arg (Printf.sprintf "Adequation: unknown pinned operation %S" op_name)
      | Some op -> (
          match Architecture.find_operator architecture operator_name with
          | None ->
              invalid_arg
                (Printf.sprintf "Adequation: unknown pinned operator %S" operator_name)
          | Some operator -> Hashtbl.replace pin_table (oi op) operator))
    pins;
  let allowed op =
    let name = Algorithm.op_name algorithm op in
    let ok =
      List.filter
        (fun operator ->
          Durations.can_run durations ~op:name
            ~operator:(Architecture.operator_name architecture operator))
        operator_ids
    in
    match Hashtbl.find_opt pin_table (oi op) with
    | Some pinned ->
        if List.mem pinned ok then [ pinned ]
        else
          infeasible "operation %S is pinned to %S where it has no WCET" name
            (Architecture.operator_name architecture pinned)
    | None -> if ok = [] then infeasible "operation %S cannot run on any operator" name else ok
  in
  let wcet_of op operator =
    match
      Durations.wcet durations
        ~op:(Algorithm.op_name algorithm op)
        ~operator:(Architecture.operator_name architecture operator)
    with
    | Some w -> w
    | None -> assert false (* filtered by [allowed] *)
  in
  let placed : placed option array = Array.make n None in
  let place op p = placed.(oi op) <- Some p in
  let placement op = placed.(oi op) in
  let operator_avail = Array.make (Architecture.operator_count architecture) 0. in
  let medium_avail = Array.make (Architecture.medium_count architecture) 0. in
  let comm_slots = ref [] in
  (* precedence predecessors: sources of scheduling deps, except memories *)
  let pred_edges = Array.make n [] in
  List.iter
    (fun (((src, _), (dst, _)) as edge) ->
      if Algorithm.op_kind algorithm src <> Algorithm.Memory then
        pred_edges.(oi dst) <- edge :: pred_edges.(oi dst))
    deps;
  let is_memory op = Algorithm.op_kind algorithm op = Algorithm.Memory in
  let ready op =
    placement op = None
    && (not (is_memory op))
    && List.for_all (fun ((src, _), _) -> placement src <> None) pred_edges.(oi op)
  in
  (* best (possibly multi-hop) transfer of [words] from [src_operator]
     to [operator], given current media availability and the producer
     finish time; returns the arrival time at the destination *)
  let best_transfer ~commit ~src ~sp ~dst ~dp ~src_operator ~operator ~ready_at ~words =
    let candidate_routes = Architecture.routes architecture src_operator operator in
    match candidate_routes with
    | [] -> None
    | _ :: _ ->
        (* tentative walk along a route: hop list with start/duration *)
        let walk route =
          let rec go t from acc = function
            | [] -> (t, List.rev acc)
            | (medium, next) :: rest ->
                let start = Float.max medium_avail.(mi medium) t in
                let duration = Architecture.comm_duration architecture medium ~words in
                go (start +. duration) next ((medium, from, next, start, duration) :: acc) rest
          in
          go ready_at src_operator [] route
        in
        let arrival, hops =
          List.fold_left
            (fun best route ->
              let ((a, _) as cand) = walk route in
              match best with
              | None -> Some cand
              | Some (ba, _) -> if a < ba then Some cand else best)
            None candidate_routes
          |> Option.get
        in
        if commit then
          List.iteri
            (fun hop (medium, from, to_, start, duration) ->
              medium_avail.(mi medium) <- start +. duration;
              comm_slots :=
                {
                  Schedule.cm_src = (src, sp);
                  cm_dst = (dst, dp);
                  cm_medium = medium;
                  cm_from = from;
                  cm_to = to_;
                  cm_hop = hop;
                  cm_start = start;
                  cm_duration = duration;
                  cm_read = start +. duration;
                }
                :: !comm_slots)
            hops;
        Some arrival
  in
  (* earliest start/finish of [op] on [operator]; when [commit] is set
     the communications are recorded and media reserved *)
  let try_on ~commit op operator =
    let feasible = ref true in
    let arrival = ref 0. in
    List.iter
      (fun (((src, sp), (dst, dp)) as edge) ->
        match placement src with
        | None -> assert false
        | Some p ->
            let a =
              if p.p_operator = operator then p.p_finish
              else
                match
                  best_transfer ~commit ~src ~sp ~dst ~dp ~src_operator:p.p_operator
                    ~operator ~ready_at:p.p_finish ~words:(dep_width algorithm edge)
                with
                | Some t -> t
                | None ->
                    feasible := false;
                    0.
            in
            arrival := Float.max !arrival a)
      pred_edges.(oi op);
    if not !feasible then None
    else begin
      let start = Float.max operator_avail.(pi operator) !arrival in
      let wcet = wcet_of op operator in
      Some (start, start +. wcet)
    end
  in
  let total_regular =
    List.length (List.filter (fun op -> not (is_memory op)) (Algorithm.ops algorithm))
  in
  for _ = 1 to total_regular do
    let candidates =
      List.filter_map
        (fun op ->
          if not (ready op) then None
          else begin
            let best =
              List.fold_left
                (fun best operator ->
                  match try_on ~commit:false op operator with
                  | None -> best
                  | Some (est, eft) -> (
                      match best with
                      | None -> Some (operator, est, eft)
                      | Some (_, _, beft) ->
                          if eft < beft then Some (operator, est, eft) else best))
                None (allowed op)
            in
            match best with
            | None ->
                infeasible "no operator reachable for inputs of %S"
                  (Algorithm.op_name algorithm op)
            | Some (operator, _, eft) -> Some (op, operator, eft)
          end)
        (Algorithm.ops algorithm)
    in
    match candidates with
    | [] -> infeasible "scheduling stalled: no ready operation (dependency cycle?)"
    | _ :: _ ->
        (* Pressure: most urgent first (max eft + remaining critical
           path).  Earliest_finish: min eft. *)
        let better (cop, _, ceft) (bop, _, beft) =
          match strategy with
          | Pressure -> ceft +. tails.(oi cop) > beft +. tails.(oi bop)
          | Earliest_finish -> ceft < beft
        in
        let chosen =
          List.fold_left
            (fun best c ->
              match best with
              | None -> Some c
              | Some b -> if better c b then Some c else best)
            None candidates
          |> Option.get
        in
        let op, operator, _ = chosen in
        (match try_on ~commit:true op operator with
        | None -> assert false
        | Some (start, finish) ->
            place op { p_operator = operator; p_start = start; p_finish = finish };
            operator_avail.(pi operator) <- finish)
  done;
  (* place memory operations on their producer's operator, right after
     the producing computation (or at operator availability) *)
  List.iter
    (fun op ->
      if is_memory op then begin
        let producers =
          List.filter_map
            (fun port -> Algorithm.dep_source algorithm op port)
            (List.init (Array.length (Algorithm.op_inputs algorithm op)) Fun.id)
        in
        let operator, ready_at =
          match producers with
          | [] -> (List.hd operator_ids, 0.)
          | (p0, _) :: _ ->
              let home =
                match placement p0 with
                | Some p -> p.p_operator
                | None -> List.hd operator_ids
              in
              let latest =
                List.fold_left
                  (fun acc (src, sp) ->
                    match placement src with
                    | Some p when p.p_operator = home -> Float.max acc p.p_finish
                    | Some p -> (
                        match
                          best_transfer ~commit:true ~src ~sp ~dst:op ~dp:0
                            ~src_operator:p.p_operator ~operator:home ~ready_at:p.p_finish
                            ~words:((Algorithm.op_outputs algorithm src).(sp))
                        with
                        | Some t -> Float.max acc t
                        | None ->
                            infeasible "no medium to feed memory %S"
                              (Algorithm.op_name algorithm op))
                    | None ->
                        infeasible "memory %S depends on an unscheduled memory"
                          (Algorithm.op_name algorithm op))
                  0. producers
              in
              (home, latest)
        in
        let wcet =
          match
            Durations.wcet durations
              ~op:(Algorithm.op_name algorithm op)
              ~operator:(Architecture.operator_name architecture operator)
          with
          | Some w -> w
          | None -> 0.
        in
        let start = Float.max operator_avail.(pi operator) ready_at in
        place op { p_operator = operator; p_start = start; p_finish = start +. wcet };
        operator_avail.(pi operator) <- start +. wcet
      end)
    (Algorithm.ops algorithm);
  (* end-of-iteration transfers of memory values to remote consumers *)
  List.iter
    (fun (((src, sp), (dst, dp)) as edge) ->
      if is_memory src then
        match (placement src, placement dst) with
        | Some ps, Some pd when ps.p_operator <> pd.p_operator -> (
            match
              best_transfer ~commit:true ~src ~sp ~dst ~dp ~src_operator:ps.p_operator
                ~operator:pd.p_operator ~ready_at:ps.p_finish
                ~words:(dep_width algorithm edge)
            with
            | Some _ -> ()
            | None ->
                infeasible "no medium from memory %S to consumer %S"
                  (Algorithm.op_name algorithm src)
                  (Algorithm.op_name algorithm dst))
        | Some _, Some _ -> ()
        | None, _ | _, None -> assert false)
    deps;
  let comp =
    List.map
      (fun op ->
        match placement op with
        | Some p ->
            {
              Schedule.cs_op = op;
              cs_operator = p.p_operator;
              cs_start = p.p_start;
              cs_duration = p.p_finish -. p.p_start;
            }
        | None -> assert false)
      (Algorithm.ops algorithm)
  in
  Schedule.make ~algorithm ~architecture ~comp ~comm:!comm_slots

(* -------------------------------------------------------------- *)
(* local-search refinement *)

let mapping_of schedule =
  let algorithm = schedule.Schedule.algorithm in
  let architecture = schedule.Schedule.architecture in
  List.filter_map
    (fun op ->
      if Algorithm.op_kind algorithm op = Algorithm.Memory then None
      else
        Some
          ( Algorithm.op_name algorithm op,
            Architecture.operator_name architecture (Schedule.operator_of schedule op) ))
    (Algorithm.ops algorithm)

let refine ?(iterations = 200) ?(seed = 0) ?(temperature = 0.05) ~algorithm ~architecture
    ~durations ~initial () =
  if iterations < 0 then invalid_arg "Adequation.refine: negative iteration count";
  let rng = Numerics.Rng.create seed in
  let movable =
    (* non-memory operations able to run on more than one operator *)
    List.filter_map
      (fun op ->
        if Algorithm.op_kind algorithm op = Algorithm.Memory then None
        else begin
          let name = Algorithm.op_name algorithm op in
          let hosts =
            List.filter
              (fun operator ->
                Durations.can_run durations ~op:name
                  ~operator:(Architecture.operator_name architecture operator))
              (Architecture.operators architecture)
          in
          if List.length hosts > 1 then
            Some (name, List.map (Architecture.operator_name architecture) hosts)
          else None
        end)
      (Algorithm.ops algorithm)
  in
  if movable = [] then initial
  else begin
    let current = ref (mapping_of initial) in
    let current_cost = ref initial.Schedule.makespan in
    let best = ref initial in
    for _ = 1 to iterations do
      let op_name, hosts = Numerics.Rng.choice rng (Array.of_list movable) in
      let here = List.assoc op_name !current in
      let others = List.filter (fun h -> not (String.equal h here)) hosts in
      if others <> [] then begin
        let target = Numerics.Rng.choice rng (Array.of_list others) in
        let proposal =
          List.map
            (fun (name, host) ->
              if String.equal name op_name then (name, target) else (name, host))
            !current
        in
        match run ~pins:proposal ~algorithm ~architecture ~durations () with
        | exception Infeasible _ -> ()
        | candidate ->
            let cost = candidate.Schedule.makespan in
            let accept =
              cost < !current_cost
              || (temperature > 0.
                 && Numerics.Rng.float rng 1.
                    < Float.exp
                        (-.(cost -. !current_cost) /. (temperature *. !current_cost)))
            in
            if accept then begin
              current := proposal;
              current_cost := cost;
              if cost < !best.Schedule.makespan then best := candidate
            end
      end
    done;
    !best
  end
