type operator_id = int
type medium_id = int

type medium_kind = Bus | Point_to_point

type medium = {
  m_name : string;
  m_kind : medium_kind;
  m_latency : float;
  m_time_per_word : float;
  m_endpoints : operator_id list;
}

type t = {
  a_name : string;
  mutable a_operators : string array;
  mutable a_media : medium array;
}

let create ~name = { a_name = name; a_operators = [||]; a_media = [||] }

let name a = a.a_name
let operator_count a = Array.length a.a_operators
let medium_count a = Array.length a.a_media
let operators a = List.init (operator_count a) Fun.id
let media a = List.init (medium_count a) Fun.id

let check_operator a id =
  if id < 0 || id >= operator_count a then invalid_arg "Architecture: unknown operator id"

let check_medium a id =
  if id < 0 || id >= medium_count a then invalid_arg "Architecture: unknown medium id"

let operator_name a id =
  check_operator a id;
  a.a_operators.(id)

let medium_name a id =
  check_medium a id;
  a.a_media.(id).m_name

let medium_kind a id =
  check_medium a id;
  a.a_media.(id).m_kind

let find_operator a name =
  let rec go i =
    if i >= operator_count a then None
    else if String.equal a.a_operators.(i) name then Some i
    else go (i + 1)
  in
  go 0

let find_medium a name =
  let rec go i =
    if i >= medium_count a then None
    else if String.equal a.a_media.(i).m_name name then Some i
    else go (i + 1)
  in
  go 0

let add_operator a ~name =
  if find_operator a name <> None then
    invalid_arg (Printf.sprintf "Architecture.add_operator: duplicate %S" name);
  a.a_operators <- Array.append a.a_operators [| name |];
  operator_count a - 1

let add_medium a ~name ~kind ?(latency = 0.) ~time_per_word endpoints =
  if find_medium a name <> None then
    invalid_arg (Printf.sprintf "Architecture.add_medium: duplicate %S" name);
  if latency < 0. || time_per_word < 0. then
    invalid_arg "[ARCH002] Architecture.add_medium: negative timing parameter";
  List.iter (check_operator a) endpoints;
  let endpoints = List.sort_uniq compare endpoints in
  (match kind with
  | Point_to_point ->
      if List.length endpoints <> 2 then
        invalid_arg "[ARCH002] Architecture.add_medium: point-to-point medium needs exactly two operators"
  | Bus ->
      if List.length endpoints < 2 then
        invalid_arg "[ARCH002] Architecture.add_medium: bus needs at least two operators";
      (* a shared bus with a zero word time has infinite capacity: every
         arbitration/utilization analysis on it divides by zero.  The
         point-to-point kind keeps accepting 0 (an idealised wire). *)
      if time_per_word = 0. then
        invalid_arg
          "[ARCH002] Architecture.add_medium: zero-capacity bus (time_per_word must be > 0)");
  let m =
    { m_name = name; m_kind = kind; m_latency = latency; m_time_per_word = time_per_word;
      m_endpoints = endpoints }
  in
  a.a_media <- Array.append a.a_media [| m |];
  medium_count a - 1

let medium_endpoints a id =
  check_medium a id;
  a.a_media.(id).m_endpoints

let comm_duration a id ~words =
  check_medium a id;
  if words < 0 then invalid_arg "Architecture.comm_duration: negative size";
  let m = a.a_media.(id) in
  m.m_latency +. (float_of_int words *. m.m_time_per_word)

let connecting a o1 o2 =
  check_operator a o1;
  check_operator a o2;
  if o1 = o2 then invalid_arg "Architecture.connecting: identical operators";
  List.filter
    (fun mid ->
      let eps = a.a_media.(mid).m_endpoints in
      List.mem o1 eps && List.mem o2 eps)
    (media a)

let routes ?(max_hops = 3) ?(max_routes = 8) a src dst =
  check_operator a src;
  check_operator a dst;
  if src = dst then invalid_arg "Architecture.routes: identical operators";
  (* breadth-first enumeration of simple paths *)
  let results = ref [] in
  let queue = Queue.create () in
  Queue.add (src, [], [ src ]) queue;
  while not (Queue.is_empty queue) && List.length !results < max_routes do
    let here, path_rev, visited = Queue.pop queue in
    if here = dst then results := List.rev path_rev :: !results
    else if List.length path_rev < max_hops then
      Array.iteri
        (fun mid m ->
          if List.mem here m.m_endpoints then
            List.iter
              (fun next ->
                if next <> here && not (List.mem next visited) then
                  Queue.add (next, (mid, next) :: path_rev, next :: visited) queue)
              m.m_endpoints)
        a.a_media
  done;
  List.rev !results

let validate a =
  if operator_count a = 0 then invalid_arg "[ARCH001] architecture has no operator";
  if operator_count a > 1 then begin
    (* connectivity of the operator graph induced by media *)
    let n = operator_count a in
    let reached = Array.make n false in
    let rec visit id =
      if not reached.(id) then begin
        reached.(id) <- true;
        Array.iter
          (fun m -> if List.mem id m.m_endpoints then List.iter visit m.m_endpoints)
          a.a_media
      end
    in
    visit 0;
    if not (Array.for_all Fun.id reached) then
      invalid_arg "[ARCH001] operator graph is not connected"
  end

let single ?(proc_name = "P0") () =
  let a = create ~name:"single" in
  let _ = add_operator a ~name:proc_name in
  a

let bus_topology ?(name = "bus_arch") ?latency ~time_per_word procs =
  let a = create ~name in
  let ids = List.map (fun p -> add_operator a ~name:p) procs in
  if List.length ids >= 2 then
    ignore (add_medium a ~name:"bus" ~kind:Bus ?latency ~time_per_word ids);
  a

let fully_connected ?(name = "mesh_arch") ?latency ~time_per_word procs =
  let a = create ~name in
  let ids = List.map (fun p -> add_operator a ~name:p) procs in
  let arr = Array.of_list ids in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      ignore
        (add_medium a
           ~name:(Printf.sprintf "link_%s_%s" a.a_operators.(arr.(i)) a.a_operators.(arr.(j)))
           ~kind:Point_to_point ?latency ~time_per_word [ arr.(i); arr.(j) ])
    done
  done;
  a
