type instr =
  | Wait_period
  | Exec of Algorithm.op_id
  | Send of Schedule.comm_slot
  | Recv of Schedule.comm_slot

type t = {
  schedule : Schedule.t;
  programs : (Architecture.operator_id * instr list) list;
  media_programs : (Architecture.medium_id * Schedule.comm_slot list) list;
}

let generate sched =
  let programs =
    List.map
      (fun operator ->
        let execs =
          List.map
            (fun s -> (s.Schedule.cs_start, 1, Exec s.Schedule.cs_op))
            (Schedule.on_operator sched operator)
        in
        (* The producer posts the first hop; the consumer receives the
           last hop; intermediate hops are relayed by the media alone.
           A send is ordered at its *producer's completion* (the data
           is available then — the transfer's own start also includes
           medium waiting, which must not hold the processor), and at
           equal times sends go before computations so a post is never
           delayed by an unrelated execution. *)
        let sends =
          List.filter_map
            (fun c ->
              if c.Schedule.cm_hop = 0 && c.Schedule.cm_from = operator then begin
                let producer = Schedule.slot_of sched (fst c.Schedule.cm_src) in
                Some (producer.Schedule.cs_start +. producer.Schedule.cs_duration, 1, Send c)
              end
              else None)
            sched.Schedule.comm
        in
        let execs = List.map (fun (t, _, i) -> (t, 2, i)) execs in
        let recvs =
          List.filter_map
            (fun c ->
              if
                c.Schedule.cm_to = operator
                && Schedule.operator_of sched (fst c.Schedule.cm_dst) = operator
              then Some (c.Schedule.cm_read, 0, Recv c)
              else None)
            sched.Schedule.comm
        in
        let body =
          List.sort
            (fun (t1, k1, _) (t2, k2, _) ->
              if t1 <> t2 then Float.compare t1 t2 else Int.compare k1 k2)
            (execs @ sends @ recvs)
          |> List.map (fun (_, _, i) -> i)
        in
        (* zero-duration producers tie with their own send: make sure
           every send still follows its producing execution *)
        let body =
          let rec fix acc = function
            | [] -> List.rev acc
            | Send c :: rest when not (List.mem (Exec (fst c.Schedule.cm_src)) acc) ->
                (* move the send right after the producer's exec *)
                let rec insert = function
                  | Exec op :: tail when op = fst c.Schedule.cm_src ->
                      Exec op :: Send c :: tail
                  | instr :: tail -> instr :: insert tail
                  | [] -> [ Send c ] (* producer on another operator: keep *)
                in
                fix acc (insert rest)
            | instr :: rest -> fix (instr :: acc) rest
          in
          fix [] body
        in
        (operator, Wait_period :: body))
      (Architecture.operators sched.Schedule.architecture)
  in
  let media_programs =
    List.map
      (fun medium -> (medium, Schedule.on_medium sched medium))
      (Architecture.media sched.Schedule.architecture)
  in
  { schedule = sched; programs; media_programs }

let program_of exe operator =
  match List.assoc_opt operator exe.programs with
  | Some p -> p
  | None -> invalid_arg "Codegen.program_of: unknown operator"

let media_program_of exe medium =
  match List.assoc_opt medium exe.media_programs with
  | Some p -> p
  | None -> invalid_arg "Codegen.media_program_of: unknown medium"

let to_string exe =
  let sched = exe.schedule in
  let alg = sched.Schedule.algorithm in
  let arch = sched.Schedule.architecture in
  let buf = Buffer.create 1024 in
  let describe_comm c =
    Printf.sprintf "%s.%d -> %s%s via %s"
      (Algorithm.op_name alg (fst c.Schedule.cm_src))
      (snd c.Schedule.cm_src)
      (Algorithm.op_name alg (fst c.Schedule.cm_dst))
      (if snd c.Schedule.cm_dst = -1 then "[cond]"
       else Printf.sprintf ".%d" (snd c.Schedule.cm_dst))
      (Architecture.medium_name arch c.Schedule.cm_medium)
  in
  List.iter
    (fun (operator, body) ->
      Buffer.add_string buf
        (Printf.sprintf "processor %s:\n  loop forever:\n" (Architecture.operator_name arch operator));
      List.iter
        (fun i ->
          let line =
            match i with
            | Wait_period -> "wait_period"
            | Exec op -> (
                let base = Printf.sprintf "exec %s" (Algorithm.op_name alg op) in
                match Algorithm.op_cond alg op with
                | None -> base
                | Some { Algorithm.var; value } ->
                    Printf.sprintf "if %s = %d then %s" var value base)
            | Send c -> Printf.sprintf "send %s" (describe_comm c)
            | Recv c -> Printf.sprintf "recv %s" (describe_comm c)
          in
          Buffer.add_string buf ("    " ^ line ^ "\n"))
        body;
      Buffer.add_string buf "  end loop\n\n")
    exe.programs;
  List.iter
    (fun (medium, transfers) ->
      Buffer.add_string buf
        (Printf.sprintf "medium %s:\n  loop forever:\n" (Architecture.medium_name arch medium));
      List.iter
        (fun c -> Buffer.add_string buf ("    transfer " ^ describe_comm c ^ "\n"))
        transfers;
      Buffer.add_string buf "  end loop\n\n")
    exe.media_programs;
  Buffer.contents buf
