type comp_slot = {
  cs_op : Algorithm.op_id;
  cs_operator : Architecture.operator_id;
  cs_start : float;
  cs_duration : float;
}

type comm_slot = {
  cm_src : Algorithm.op_id * int;
  cm_dst : Algorithm.op_id * int;
  cm_medium : Architecture.medium_id;
  cm_from : Architecture.operator_id;
  cm_to : Architecture.operator_id;
  cm_hop : int;
  cm_start : float;
  cm_duration : float;
  cm_read : float;
}

let read_offset c = c.cm_read
let retry_slack c = c.cm_read -. (c.cm_start +. c.cm_duration)

type t = {
  algorithm : Algorithm.t;
  architecture : Architecture.t;
  comp : comp_slot list;
  comm : comm_slot list;
  makespan : float;
}

let eps = 1e-9

let slot_of sched op =
  match List.find_opt (fun s -> s.cs_op = op) sched.comp with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "[SCHED002] operation %S is not scheduled"
           (Algorithm.op_name sched.algorithm op))

let operator_of sched op = (slot_of sched op).cs_operator

let on_operator sched operator =
  List.filter (fun s -> s.cs_operator = operator) sched.comp

let on_medium sched medium = List.filter (fun c -> c.cm_medium = medium) sched.comm

let check_no_overlap_comp alg name slots =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a.cs_start +. a.cs_duration > b.cs_start +. eps then
          invalid_arg
            (Printf.sprintf
               "[SCHED003] computations %S [%g, %g] and %S [%g, %g] overlap on operator %S"
               (Algorithm.op_name alg a.cs_op)
               a.cs_start
               (a.cs_start +. a.cs_duration)
               (Algorithm.op_name alg b.cs_op)
               b.cs_start
               (b.cs_start +. b.cs_duration)
               name);
        go rest
    | [ _ ] | [] -> ()
  in
  go slots

let check_no_overlap_comm alg name slots =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a.cm_start +. a.cm_duration > b.cm_start +. eps then
          invalid_arg
            (Printf.sprintf
               "[SCHED004] transfers %S -> %S [%g, %g] and %S -> %S [%g, %g] overlap on medium %S"
               (Algorithm.op_name alg (fst a.cm_src))
               (Algorithm.op_name alg (fst a.cm_dst))
               a.cm_start
               (a.cm_start +. a.cm_duration)
               (Algorithm.op_name alg (fst b.cm_src))
               (Algorithm.op_name alg (fst b.cm_dst))
               b.cm_start
               (b.cm_start +. b.cm_duration)
               name);
        go rest
    | [ _ ] | [] -> ()
  in
  go slots

(* The (possibly multi-hop) transfer chain of one dependency, in hop
   order.  Raises when absent or malformed. *)
let transfer_chain sched ((src, sp), (dst, dp)) ~from_operator ~to_operator =
  let hops =
    List.filter (fun c -> c.cm_src = (src, sp) && c.cm_dst = (dst, dp)) sched.comm
    |> List.sort (fun a b -> Int.compare a.cm_hop b.cm_hop)
  in
  let describe () =
    Printf.sprintf "%S -> %S"
      (Algorithm.op_name sched.algorithm src)
      (Algorithm.op_name sched.algorithm dst)
  in
  (match hops with
  | [] -> invalid_arg (Printf.sprintf "[SCHED005] missing transfer %s" (describe ()))
  | first :: _ ->
      if first.cm_hop <> 0 || first.cm_from <> from_operator then
        invalid_arg
          (Printf.sprintf "[SCHED006] transfer %s does not leave the producer" (describe ())));
  let rec check_chain = function
    | a :: (b :: _ as rest) ->
        if b.cm_hop <> a.cm_hop + 1 || b.cm_from <> a.cm_to then
          invalid_arg
            (Printf.sprintf "[SCHED006] broken transfer route %s (hop %d)" (describe ())
               b.cm_hop);
        if b.cm_start +. eps < a.cm_start +. a.cm_duration then
          invalid_arg
            (Printf.sprintf "[SCHED006] hop %d of %s starts at %g before hop %d ends at %g"
               b.cm_hop (describe ()) b.cm_start a.cm_hop
               (a.cm_start +. a.cm_duration));
        check_chain rest
    | [ last ] ->
        if last.cm_to <> to_operator then
          invalid_arg
            (Printf.sprintf "[SCHED006] transfer %s does not reach the consumer" (describe ()))
    | [] -> assert false
  in
  check_chain hops;
  hops

(* Data arrival time of dependency (src -> dst) given the slots.  A
   Memory source carries the previous iteration's value: it is
   available locally at iteration start, and when the consumer sits on
   another operator the transfer happens after the memory is written —
   it wraps around to serve the *next* iteration — so only its
   existence is checked, not its completion time. *)
let arrival sched ((src, sp), (dst, dp)) =
  let src_slot = slot_of sched src in
  let dst_slot = slot_of sched dst in
  let is_memory = Algorithm.op_kind sched.algorithm src = Algorithm.Memory in
  if src_slot.cs_operator = dst_slot.cs_operator then
    if is_memory then 0. else src_slot.cs_start +. src_slot.cs_duration
  else begin
    let hops =
      transfer_chain sched
        ((src, sp), (dst, dp))
        ~from_operator:src_slot.cs_operator ~to_operator:dst_slot.cs_operator
    in
    let first = List.hd hops in
    let produced = src_slot.cs_start +. src_slot.cs_duration in
    if first.cm_start +. eps < produced then
      invalid_arg
        (Printf.sprintf
           "[SCHED007] transfer of %S output %d starts at %g before it is produced at %g"
           (Algorithm.op_name sched.algorithm src)
           sp first.cm_start produced);
    if is_memory then 0.
    else
      let last = List.nth hops (List.length hops - 1) in
      last.cm_read
  end

let validate sched =
  Algorithm.validate sched.algorithm;
  Architecture.validate sched.architecture;
  (* sane slot times *)
  List.iter
    (fun s ->
      if s.cs_start < 0. || s.cs_duration < 0. then
        invalid_arg
          (Printf.sprintf "[SCHED011] slot of %S has negative start or duration [%g, %g]"
             (Algorithm.op_name sched.algorithm s.cs_op)
             s.cs_start s.cs_duration))
    sched.comp;
  List.iter
    (fun c ->
      if c.cm_start < 0. || c.cm_duration < 0. then
        invalid_arg
          (Printf.sprintf
             "[SCHED011] transfer %S -> %S has negative start or duration [%g, %g]"
             (Algorithm.op_name sched.algorithm (fst c.cm_src))
             (Algorithm.op_name sched.algorithm (fst c.cm_dst))
             c.cm_start c.cm_duration))
    sched.comm;
  (* read offsets never precede the transfer's completion *)
  List.iter
    (fun c ->
      if c.cm_read +. eps < c.cm_start +. c.cm_duration then
        invalid_arg
          (Printf.sprintf
             "[SCHED012] transfer %S -> %S reads at %g before its completion at %g"
             (Algorithm.op_name sched.algorithm (fst c.cm_src))
             (Algorithm.op_name sched.algorithm (fst c.cm_dst))
             c.cm_read
             (c.cm_start +. c.cm_duration)))
    sched.comm;
  (* every operation exactly once *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.cs_op then
        invalid_arg
          (Printf.sprintf "[SCHED001] operation %S is scheduled more than once"
             (Algorithm.op_name sched.algorithm s.cs_op));
      Hashtbl.replace seen s.cs_op ())
    sched.comp;
  List.iter
    (fun op ->
      if not (Hashtbl.mem seen op) then
        invalid_arg
          (Printf.sprintf "[SCHED002] operation %S is missing from the schedule"
             (Algorithm.op_name sched.algorithm op)))
    (Algorithm.ops sched.algorithm);
  (* resource exclusivity *)
  List.iter
    (fun operator ->
      check_no_overlap_comp sched.algorithm
        (Architecture.operator_name sched.architecture operator)
        (on_operator sched operator))
    (Architecture.operators sched.architecture);
  List.iter
    (fun medium ->
      check_no_overlap_comm sched.algorithm
        (Architecture.medium_name sched.architecture medium)
        (on_medium sched medium))
    (Architecture.media sched.architecture);
  (* precedence *)
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      let dst_slot = slot_of sched dst in
      let t_arr = arrival sched ((src, sp), (dst, dp)) in
      if dst_slot.cs_start +. eps < t_arr then
        invalid_arg
          (Printf.sprintf
             "[SCHED007] %S starts at %g before its input %S.%d -> %S.%d arrives at %g"
             (Algorithm.op_name sched.algorithm dst)
             dst_slot.cs_start
             (Algorithm.op_name sched.algorithm src)
             sp
             (Algorithm.op_name sched.algorithm dst)
             dp t_arr))
    (Algorithm.dependencies sched.algorithm)

let make ~algorithm ~architecture ~comp ~comm =
  let comp = List.sort (fun a b -> Float.compare a.cs_start b.cs_start) comp in
  let comm = List.sort (fun a b -> Float.compare a.cm_start b.cm_start) comm in
  let makespan =
    List.fold_left (fun acc s -> Float.max acc (s.cs_start +. s.cs_duration)) 0. comp
    |> fun m ->
    List.fold_left (fun acc c -> Float.max acc (c.cm_start +. c.cm_duration)) m comm
  in
  let sched = { algorithm; architecture; comp; comm; makespan } in
  validate sched;
  sched

let completions_of_kind sched ids =
  List.map
    (fun op ->
      let s = slot_of sched op in
      (op, s.cs_start +. s.cs_duration))
    ids

let sensor_completions sched = completions_of_kind sched (Algorithm.sensors sched.algorithm)
let actuator_completions sched = completions_of_kind sched (Algorithm.actuators sched.algorithm)

let fits_period sched = sched.makespan <= Algorithm.period sched.algorithm +. eps

(* Schedule-time slack insertion: reserve a retry window after each
   transfer by moving its consumer's read offset to completion + slack,
   then retime every downstream slot so the schedule stays valid.  The
   retimed schedule keeps the original total order on every operator
   and medium; only start times move (monotonically later), so the
   fixpoint below converges.  The reserved window is kept free on the
   medium (the next transfer starts no earlier than the previous read
   offset) and across hops of one route, so a bounded number of
   retransmissions fits before the consumer's planned read. *)
let insert_slack ~slack_of sched =
  let comp = Array.of_list sched.comp in
  let comm = Array.of_list sched.comm in
  let slack = Array.map (fun c -> Float.max 0. (slack_of c)) comm in
  let read i = comm.(i).cm_start +. comm.(i).cm_duration +. slack.(i) in
  let comp_idx = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.replace comp_idx s.cs_op i) comp;
  (* previous slot sharing the same resource, in the original order *)
  let prev_sharing key_of n =
    let last = Hashtbl.create 8 in
    Array.init n (fun i ->
        let k = key_of i in
        let p = Hashtbl.find_opt last k in
        Hashtbl.replace last k i;
        p)
  in
  let comp_prev = prev_sharing (fun i -> comp.(i).cs_operator) (Array.length comp) in
  let comm_prev = prev_sharing (fun i -> comm.(i).cm_medium) (Array.length comm) in
  let find_hop c hop =
    let r = ref None in
    Array.iteri
      (fun j c' ->
        if c'.cm_src = c.cm_src && c'.cm_dst = c.cm_dst && c'.cm_hop = hop then r := Some j)
      comm;
    !r
  in
  let hop_prev =
    Array.map (fun c -> if c.cm_hop = 0 then None else find_hop c (c.cm_hop - 1)) comm
  in
  (* per-consumer data lower bounds: producer finish when co-located,
     final-hop read offset otherwise; memory sources are free *)
  let dep_bounds = Hashtbl.create 64 in
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      if Algorithm.op_kind sched.algorithm src <> Algorithm.Memory then begin
        let si = Hashtbl.find comp_idx src and di = Hashtbl.find comp_idx dst in
        let bound =
          if comp.(si).cs_operator = comp.(di).cs_operator then `Finish si
          else begin
            let hops = ref [] in
            Array.iteri
              (fun j c -> if c.cm_src = (src, sp) && c.cm_dst = (dst, dp) then hops := j :: !hops)
              comm;
            let last =
              List.fold_left
                (fun acc j ->
                  match acc with
                  | None -> Some j
                  | Some a -> if comm.(j).cm_hop > comm.(a).cm_hop then Some j else acc)
                None !hops
            in
            match last with None -> `Finish si | Some j -> `Read j
          end
        in
        Hashtbl.add dep_bounds di bound
      end)
    (Algorithm.dependencies sched.algorithm);
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10_000 do
    incr rounds;
    changed := false;
    Array.iteri
      (fun i c ->
        let lb = ref c.cm_start in
        (match Hashtbl.find_opt comp_idx (fst c.cm_src) with
        | Some si when c.cm_hop = 0 ->
            let s = comp.(si) in
            lb := Float.max !lb (s.cs_start +. s.cs_duration)
        | _ -> ());
        (match hop_prev.(i) with Some j -> lb := Float.max !lb (read j) | None -> ());
        (match comm_prev.(i) with Some j -> lb := Float.max !lb (read j) | None -> ());
        if !lb > c.cm_start +. eps then begin
          comm.(i) <- { c with cm_start = !lb };
          changed := true
        end)
      comm;
    Array.iteri
      (fun i s ->
        let lb = ref s.cs_start in
        (match comp_prev.(i) with
        | Some j ->
            let p = comp.(j) in
            lb := Float.max !lb (p.cs_start +. p.cs_duration)
        | None -> ());
        List.iter
          (function
            | `Finish j ->
                let p = comp.(j) in
                lb := Float.max !lb (p.cs_start +. p.cs_duration)
            | `Read j -> lb := Float.max !lb (read j))
          (Hashtbl.find_all dep_bounds i);
        if !lb > s.cs_start +. eps then begin
          comp.(i) <- { s with cs_start = !lb };
          changed := true
        end)
      comp
  done;
  if !changed then
    invalid_arg "[SCHED012] slack insertion did not converge (cyclic retiming constraints)";
  let comm = Array.to_list (Array.mapi (fun i c -> { c with cm_read = read i }) comm) in
  make ~algorithm:sched.algorithm ~architecture:sched.architecture
    ~comp:(Array.to_list comp) ~comm

let pp ppf sched =
  Format.fprintf ppf "@[<v>schedule of %S on %S (makespan %.6g, period %g)@,"
    (Algorithm.name sched.algorithm)
    (Architecture.name sched.architecture)
    sched.makespan
    (Algorithm.period sched.algorithm);
  List.iter
    (fun operator ->
      Format.fprintf ppf "%s:@," (Architecture.operator_name sched.architecture operator);
      List.iter
        (fun s ->
          Format.fprintf ppf "  [%.6g, %.6g] %s@," s.cs_start (s.cs_start +. s.cs_duration)
            (Algorithm.op_name sched.algorithm s.cs_op))
        (on_operator sched operator))
    (Architecture.operators sched.architecture);
  List.iter
    (fun medium ->
      Format.fprintf ppf "%s:@," (Architecture.medium_name sched.architecture medium);
      List.iter
        (fun c ->
          Format.fprintf ppf "  [%.6g, %.6g] %s -> %s@," c.cm_start
            (c.cm_start +. c.cm_duration)
            (Algorithm.op_name sched.algorithm (fst c.cm_src))
            (Algorithm.op_name sched.algorithm (fst c.cm_dst)))
        (on_medium sched medium))
    (Architecture.media sched.architecture);
  Format.fprintf ppf "@]"
