type comp_slot = {
  cs_op : Algorithm.op_id;
  cs_operator : Architecture.operator_id;
  cs_start : float;
  cs_duration : float;
}

type comm_slot = {
  cm_src : Algorithm.op_id * int;
  cm_dst : Algorithm.op_id * int;
  cm_medium : Architecture.medium_id;
  cm_from : Architecture.operator_id;
  cm_to : Architecture.operator_id;
  cm_hop : int;
  cm_start : float;
  cm_duration : float;
}

type t = {
  algorithm : Algorithm.t;
  architecture : Architecture.t;
  comp : comp_slot list;
  comm : comm_slot list;
  makespan : float;
}

let eps = 1e-9

let slot_of sched op =
  match List.find_opt (fun s -> s.cs_op = op) sched.comp with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "[SCHED002] operation %S is not scheduled"
           (Algorithm.op_name sched.algorithm op))

let operator_of sched op = (slot_of sched op).cs_operator

let on_operator sched operator =
  List.filter (fun s -> s.cs_operator = operator) sched.comp

let on_medium sched medium = List.filter (fun c -> c.cm_medium = medium) sched.comm

let check_no_overlap_comp alg name slots =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a.cs_start +. a.cs_duration > b.cs_start +. eps then
          invalid_arg
            (Printf.sprintf
               "[SCHED003] computations %S [%g, %g] and %S [%g, %g] overlap on operator %S"
               (Algorithm.op_name alg a.cs_op)
               a.cs_start
               (a.cs_start +. a.cs_duration)
               (Algorithm.op_name alg b.cs_op)
               b.cs_start
               (b.cs_start +. b.cs_duration)
               name);
        go rest
    | [ _ ] | [] -> ()
  in
  go slots

let check_no_overlap_comm alg name slots =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a.cm_start +. a.cm_duration > b.cm_start +. eps then
          invalid_arg
            (Printf.sprintf
               "[SCHED004] transfers %S -> %S [%g, %g] and %S -> %S [%g, %g] overlap on medium %S"
               (Algorithm.op_name alg (fst a.cm_src))
               (Algorithm.op_name alg (fst a.cm_dst))
               a.cm_start
               (a.cm_start +. a.cm_duration)
               (Algorithm.op_name alg (fst b.cm_src))
               (Algorithm.op_name alg (fst b.cm_dst))
               b.cm_start
               (b.cm_start +. b.cm_duration)
               name);
        go rest
    | [ _ ] | [] -> ()
  in
  go slots

(* The (possibly multi-hop) transfer chain of one dependency, in hop
   order.  Raises when absent or malformed. *)
let transfer_chain sched ((src, sp), (dst, dp)) ~from_operator ~to_operator =
  let hops =
    List.filter (fun c -> c.cm_src = (src, sp) && c.cm_dst = (dst, dp)) sched.comm
    |> List.sort (fun a b -> Int.compare a.cm_hop b.cm_hop)
  in
  let describe () =
    Printf.sprintf "%S -> %S"
      (Algorithm.op_name sched.algorithm src)
      (Algorithm.op_name sched.algorithm dst)
  in
  (match hops with
  | [] -> invalid_arg (Printf.sprintf "[SCHED005] missing transfer %s" (describe ()))
  | first :: _ ->
      if first.cm_hop <> 0 || first.cm_from <> from_operator then
        invalid_arg
          (Printf.sprintf "[SCHED006] transfer %s does not leave the producer" (describe ())));
  let rec check_chain = function
    | a :: (b :: _ as rest) ->
        if b.cm_hop <> a.cm_hop + 1 || b.cm_from <> a.cm_to then
          invalid_arg
            (Printf.sprintf "[SCHED006] broken transfer route %s (hop %d)" (describe ())
               b.cm_hop);
        if b.cm_start +. eps < a.cm_start +. a.cm_duration then
          invalid_arg
            (Printf.sprintf "[SCHED006] hop %d of %s starts at %g before hop %d ends at %g"
               b.cm_hop (describe ()) b.cm_start a.cm_hop
               (a.cm_start +. a.cm_duration));
        check_chain rest
    | [ last ] ->
        if last.cm_to <> to_operator then
          invalid_arg
            (Printf.sprintf "[SCHED006] transfer %s does not reach the consumer" (describe ()))
    | [] -> assert false
  in
  check_chain hops;
  hops

(* Data arrival time of dependency (src -> dst) given the slots.  A
   Memory source carries the previous iteration's value: it is
   available locally at iteration start, and when the consumer sits on
   another operator the transfer happens after the memory is written —
   it wraps around to serve the *next* iteration — so only its
   existence is checked, not its completion time. *)
let arrival sched ((src, sp), (dst, dp)) =
  let src_slot = slot_of sched src in
  let dst_slot = slot_of sched dst in
  let is_memory = Algorithm.op_kind sched.algorithm src = Algorithm.Memory in
  if src_slot.cs_operator = dst_slot.cs_operator then
    if is_memory then 0. else src_slot.cs_start +. src_slot.cs_duration
  else begin
    let hops =
      transfer_chain sched
        ((src, sp), (dst, dp))
        ~from_operator:src_slot.cs_operator ~to_operator:dst_slot.cs_operator
    in
    let first = List.hd hops in
    let produced = src_slot.cs_start +. src_slot.cs_duration in
    if first.cm_start +. eps < produced then
      invalid_arg
        (Printf.sprintf
           "[SCHED007] transfer of %S output %d starts at %g before it is produced at %g"
           (Algorithm.op_name sched.algorithm src)
           sp first.cm_start produced);
    if is_memory then 0.
    else
      let last = List.nth hops (List.length hops - 1) in
      last.cm_start +. last.cm_duration
  end

let validate sched =
  Algorithm.validate sched.algorithm;
  Architecture.validate sched.architecture;
  (* sane slot times *)
  List.iter
    (fun s ->
      if s.cs_start < 0. || s.cs_duration < 0. then
        invalid_arg
          (Printf.sprintf "[SCHED011] slot of %S has negative start or duration [%g, %g]"
             (Algorithm.op_name sched.algorithm s.cs_op)
             s.cs_start s.cs_duration))
    sched.comp;
  List.iter
    (fun c ->
      if c.cm_start < 0. || c.cm_duration < 0. then
        invalid_arg
          (Printf.sprintf
             "[SCHED011] transfer %S -> %S has negative start or duration [%g, %g]"
             (Algorithm.op_name sched.algorithm (fst c.cm_src))
             (Algorithm.op_name sched.algorithm (fst c.cm_dst))
             c.cm_start c.cm_duration))
    sched.comm;
  (* every operation exactly once *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.cs_op then
        invalid_arg
          (Printf.sprintf "[SCHED001] operation %S is scheduled more than once"
             (Algorithm.op_name sched.algorithm s.cs_op));
      Hashtbl.replace seen s.cs_op ())
    sched.comp;
  List.iter
    (fun op ->
      if not (Hashtbl.mem seen op) then
        invalid_arg
          (Printf.sprintf "[SCHED002] operation %S is missing from the schedule"
             (Algorithm.op_name sched.algorithm op)))
    (Algorithm.ops sched.algorithm);
  (* resource exclusivity *)
  List.iter
    (fun operator ->
      check_no_overlap_comp sched.algorithm
        (Architecture.operator_name sched.architecture operator)
        (on_operator sched operator))
    (Architecture.operators sched.architecture);
  List.iter
    (fun medium ->
      check_no_overlap_comm sched.algorithm
        (Architecture.medium_name sched.architecture medium)
        (on_medium sched medium))
    (Architecture.media sched.architecture);
  (* precedence *)
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      let dst_slot = slot_of sched dst in
      let t_arr = arrival sched ((src, sp), (dst, dp)) in
      if dst_slot.cs_start +. eps < t_arr then
        invalid_arg
          (Printf.sprintf
             "[SCHED007] %S starts at %g before its input %S.%d -> %S.%d arrives at %g"
             (Algorithm.op_name sched.algorithm dst)
             dst_slot.cs_start
             (Algorithm.op_name sched.algorithm src)
             sp
             (Algorithm.op_name sched.algorithm dst)
             dp t_arr))
    (Algorithm.dependencies sched.algorithm)

let make ~algorithm ~architecture ~comp ~comm =
  let comp = List.sort (fun a b -> Float.compare a.cs_start b.cs_start) comp in
  let comm = List.sort (fun a b -> Float.compare a.cm_start b.cm_start) comm in
  let makespan =
    List.fold_left (fun acc s -> Float.max acc (s.cs_start +. s.cs_duration)) 0. comp
    |> fun m ->
    List.fold_left (fun acc c -> Float.max acc (c.cm_start +. c.cm_duration)) m comm
  in
  let sched = { algorithm; architecture; comp; comm; makespan } in
  validate sched;
  sched

let completions_of_kind sched ids =
  List.map
    (fun op ->
      let s = slot_of sched op in
      (op, s.cs_start +. s.cs_duration))
    ids

let sensor_completions sched = completions_of_kind sched (Algorithm.sensors sched.algorithm)
let actuator_completions sched = completions_of_kind sched (Algorithm.actuators sched.algorithm)

let fits_period sched = sched.makespan <= Algorithm.period sched.algorithm +. eps

let pp ppf sched =
  Format.fprintf ppf "@[<v>schedule of %S on %S (makespan %.6g, period %g)@,"
    (Algorithm.name sched.algorithm)
    (Architecture.name sched.architecture)
    sched.makespan
    (Algorithm.period sched.algorithm);
  List.iter
    (fun operator ->
      Format.fprintf ppf "%s:@," (Architecture.operator_name sched.architecture operator);
      List.iter
        (fun s ->
          Format.fprintf ppf "  [%.6g, %.6g] %s@," s.cs_start (s.cs_start +. s.cs_duration)
            (Algorithm.op_name sched.algorithm s.cs_op))
        (on_operator sched operator))
    (Architecture.operators sched.architecture);
  List.iter
    (fun medium ->
      Format.fprintf ppf "%s:@," (Architecture.medium_name sched.architecture medium);
      List.iter
        (fun c ->
          Format.fprintf ppf "  [%.6g, %.6g] %s -> %s@," c.cm_start
            (c.cm_start +. c.cm_duration)
            (Algorithm.op_name sched.algorithm (fst c.cm_src))
            (Algorithm.op_name sched.algorithm (fst c.cm_dst)))
        (on_medium sched medium))
    (Architecture.media sched.architecture);
  Format.fprintf ppf "@]"
