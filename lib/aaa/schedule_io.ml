let fail fmt = Printf.ksprintf failwith fmt

let fl x = Sexp.Atom (Printf.sprintf "%.17g" x)

let to_sexp (sched : Schedule.t) =
  let alg = sched.Schedule.algorithm in
  let arch = sched.Schedule.architecture in
  let comp_form (s : Schedule.comp_slot) =
    Sexp.List
      [
        Sexp.Atom "slot";
        Sexp.Atom (Algorithm.op_name alg s.Schedule.cs_op);
        Sexp.Atom (Architecture.operator_name arch s.Schedule.cs_operator);
        fl s.Schedule.cs_start;
        fl s.Schedule.cs_duration;
      ]
  in
  let comm_form (c : Schedule.comm_slot) =
    Sexp.List
      [
        Sexp.Atom "transfer";
        Sexp.Atom (Algorithm.op_name alg (fst c.Schedule.cm_src));
        Sexp.Atom (string_of_int (snd c.Schedule.cm_src));
        Sexp.Atom (Algorithm.op_name alg (fst c.Schedule.cm_dst));
        Sexp.Atom (string_of_int (snd c.Schedule.cm_dst));
        Sexp.Atom (Architecture.medium_name arch c.Schedule.cm_medium);
        Sexp.Atom (Architecture.operator_name arch c.Schedule.cm_from);
        Sexp.Atom (Architecture.operator_name arch c.Schedule.cm_to);
        Sexp.Atom (string_of_int c.Schedule.cm_hop);
        fl c.Schedule.cm_start;
        fl c.Schedule.cm_duration;
        fl c.Schedule.cm_read;
      ]
  in
  Sexp.List
    (Sexp.Atom "schedule"
     :: Sexp.List [ Sexp.Atom "algorithm"; Sexp.Atom (Algorithm.name alg) ]
     :: Sexp.List [ Sexp.Atom "architecture"; Sexp.Atom (Architecture.name arch) ]
     :: (List.map comp_form sched.Schedule.comp @ List.map comm_form sched.Schedule.comm))

let print sched = Sexp.to_string (to_sexp sched) ^ "\n"

let parse ~algorithm ~architecture text =
  let op_of name =
    match Algorithm.find_op algorithm name with
    | Some op -> op
    | None -> fail "Schedule_io: unknown operation %S" name
  in
  let operator_of name =
    match Architecture.find_operator architecture name with
    | Some operator -> operator
    | None -> fail "Schedule_io: unknown operator %S" name
  in
  let medium_of name =
    match Architecture.find_medium architecture name with
    | Some medium -> medium
    | None -> fail "Schedule_io: unknown medium %S" name
  in
  let float_atom a =
    match float_of_string_opt a with
    | Some f -> f
    | None -> fail "Schedule_io: %S is not a number" a
  in
  let int_atom a =
    match int_of_string_opt a with
    | Some i -> i
    | None -> fail "Schedule_io: %S is not an integer" a
  in
  match Sexp.parse text with
  | [ Sexp.List (Sexp.Atom "schedule" :: items) ] ->
      (* names recorded at save time must match the graphs given now *)
      (match Sexp.keyed "algorithm" items with
      | Some [ Sexp.Atom n ] when String.equal n (Algorithm.name algorithm) -> ()
      | Some [ Sexp.Atom n ] ->
          fail "Schedule_io: schedule was saved for algorithm %S, not %S" n
            (Algorithm.name algorithm)
      | Some _ | None -> fail "Schedule_io: missing (algorithm name)");
      (match Sexp.keyed "architecture" items with
      | Some [ Sexp.Atom n ] when String.equal n (Architecture.name architecture) -> ()
      | Some [ Sexp.Atom n ] ->
          fail "Schedule_io: schedule was saved for architecture %S, not %S" n
            (Architecture.name architecture)
      | Some _ | None -> fail "Schedule_io: missing (architecture name)");
      let comp =
        List.map
          (fun row ->
            match row with
            | [ Sexp.Atom op; Sexp.Atom operator; Sexp.Atom start; Sexp.Atom duration ] ->
                {
                  Schedule.cs_op = op_of op;
                  cs_operator = operator_of operator;
                  cs_start = float_atom start;
                  cs_duration = float_atom duration;
                }
            | _ -> fail "Schedule_io: (slot op operator start duration) expected")
          (Sexp.keyed_all "slot" items)
      in
      let comm =
        List.map
          (fun row ->
            match row with
            | Sexp.Atom src :: Sexp.Atom sp :: Sexp.Atom dst :: Sexp.Atom dp
              :: Sexp.Atom medium :: Sexp.Atom from_ :: Sexp.Atom to_ :: Sexp.Atom hop
              :: Sexp.Atom start :: Sexp.Atom duration :: rest ->
                let start = float_atom start and duration = float_atom duration in
                (* the read-offset atom is optional: rows saved before
                   slack insertion read at completion *)
                let read =
                  match rest with
                  | [] -> start +. duration
                  | [ Sexp.Atom read ] -> float_atom read
                  | _ -> fail "Schedule_io: malformed (transfer ...) row"
                in
                {
                  Schedule.cm_src = (op_of src, int_atom sp);
                  cm_dst = (op_of dst, int_atom dp);
                  cm_medium = medium_of medium;
                  cm_from = operator_of from_;
                  cm_to = operator_of to_;
                  cm_hop = int_atom hop;
                  cm_start = start;
                  cm_duration = duration;
                  cm_read = read;
                }
            | _ -> fail "Schedule_io: malformed (transfer ...) row")
          (Sexp.keyed_all "transfer" items)
      in
      (* Schedule.make revalidates everything *)
      Schedule.make ~algorithm ~architecture ~comp ~comm
  | _ -> fail "Schedule_io: expected a single (schedule ...) form"

let save sched path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print sched))

let load ~algorithm ~architecture path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse ~algorithm ~architecture (really_input_string ic (in_channel_length ic)))
