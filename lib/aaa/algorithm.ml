type op_kind = Sensor | Actuator | Compute | Memory

type op_id = int

type condition = { var : string; value : int }

type op = {
  o_name : string;
  o_kind : op_kind;
  o_inputs : int array;
  o_outputs : int array;
  o_cond : condition option;
}

type t = {
  g_name : string;
  g_period : float;
  mutable g_ops : op array;
  mutable dep_in : (op_id * int) option array array; (* per op, per input port *)
  mutable cond_sources : (string * (op_id * int)) list;
}

let create ~name ~period =
  if period <= 0. then invalid_arg "Algorithm.create: non-positive period";
  { g_name = name; g_period = period; g_ops = [||]; dep_in = [||]; cond_sources = [] }

let name g = g.g_name
let period g = g.g_period
let op_count g = Array.length g.g_ops
let ops g = List.init (op_count g) Fun.id

let check_id g id =
  if id < 0 || id >= op_count g then invalid_arg "Algorithm: unknown operation id"

let op g id =
  check_id g id;
  g.g_ops.(id)

let op_name g id = (op g id).o_name
let op_kind g id = (op g id).o_kind
let op_cond g id = (op g id).o_cond
let op_inputs g id = Array.copy (op g id).o_inputs
let op_outputs g id = Array.copy (op g id).o_outputs

let find_op g name =
  let rec go i =
    if i >= op_count g then None
    else if String.equal g.g_ops.(i).o_name name then Some i
    else go (i + 1)
  in
  go 0

let add_op g ~name ~kind ?(inputs = [||]) ?(outputs = [||]) ?cond () =
  if find_op g name <> None then
    invalid_arg (Printf.sprintf "Algorithm.add_op: duplicate operation %S" name);
  Array.iter (fun w -> if w <= 0 then invalid_arg "Algorithm.add_op: non-positive width") inputs;
  Array.iter (fun w -> if w <= 0 then invalid_arg "Algorithm.add_op: non-positive width") outputs;
  (match kind with
  | Memory ->
      if Array.length inputs <> Array.length outputs then
        invalid_arg "Algorithm.add_op: memory operation needs matching input/output ports"
  | Sensor | Actuator | Compute -> ());
  let o = { o_name = name; o_kind = kind; o_inputs = inputs; o_outputs = outputs; o_cond = cond } in
  g.g_ops <- Array.append g.g_ops [| o |];
  g.dep_in <- Array.append g.dep_in [| Array.make (Array.length inputs) None |];
  op_count g - 1

let depend g ~src:(so, sp) ~dst:(dok, dp) =
  check_id g so;
  check_id g dok;
  let sop = g.g_ops.(so) and dop = g.g_ops.(dok) in
  if sp < 0 || sp >= Array.length sop.o_outputs then
    invalid_arg (Printf.sprintf "[ALG004] Algorithm.depend: %S has no output %d" sop.o_name sp);
  if dp < 0 || dp >= Array.length dop.o_inputs then
    invalid_arg (Printf.sprintf "[ALG004] Algorithm.depend: %S has no input %d" dop.o_name dp);
  if sop.o_outputs.(sp) <> dop.o_inputs.(dp) then
    invalid_arg
      (Printf.sprintf "[ALG004] Algorithm.depend: width mismatch %S.%d -> %S.%d" sop.o_name sp
         dop.o_name dp);
  (match g.dep_in.(dok).(dp) with
  | Some _ ->
      invalid_arg (Printf.sprintf "[ALG004] Algorithm.depend: input %S.%d already wired" dop.o_name dp)
  | None -> ());
  g.dep_in.(dok).(dp) <- Some (so, sp)

let set_op_condition g id cond =
  check_id g id;
  let o = g.g_ops.(id) in
  (match o.o_cond with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Algorithm.set_op_condition: %S already conditioned" o.o_name)
  | None -> ());
  g.g_ops.(id) <- { o with o_cond = Some cond }

let set_condition_source g ~var (id, port) =
  check_id g id;
  let o = g.g_ops.(id) in
  if port < 0 || port >= Array.length o.o_outputs then
    invalid_arg "Algorithm.set_condition_source: port out of range";
  if o.o_outputs.(port) <> 1 then
    invalid_arg "Algorithm.set_condition_source: condition port must have width 1";
  if List.mem_assoc var g.cond_sources then
    invalid_arg (Printf.sprintf "Algorithm.set_condition_source: %S already declared" var);
  g.cond_sources <- (var, (id, port)) :: g.cond_sources

let condition_source g ~var = List.assoc_opt var g.cond_sources

let dep_source g id port =
  check_id g id;
  if port < 0 || port >= Array.length g.dep_in.(id) then
    invalid_arg "Algorithm.dep_source: port out of range";
  g.dep_in.(id).(port)

let dependencies g =
  let acc = ref [] in
  for dst = op_count g - 1 downto 0 do
    Array.iteri
      (fun dp src -> match src with Some s -> acc := (s, (dst, dp)) :: !acc | None -> ())
      g.dep_in.(dst)
  done;
  !acc

let predecessors g id =
  check_id g id;
  Array.to_list g.dep_in.(id)
  |> List.filter_map (fun src -> Option.map fst src)
  |> List.sort_uniq compare

let successors g id =
  check_id g id;
  List.filter_map
    (fun ((so, _), (dok, _)) -> if so = id then Some dok else None)
    (dependencies g)
  |> List.sort_uniq compare

let by_kind g kind =
  List.filter (fun id -> g.g_ops.(id).o_kind = kind) (ops g)

let sensors g = by_kind g Sensor
let actuators g = by_kind g Actuator

(* Topological sort of intra-iteration dependencies.  Edges leaving a
   Memory operation are excluded: a memory's output carries the value
   of the previous iteration, so consuming it does not order the
   consumer after the memory within the current iteration. *)
let topological_order g =
  let n = op_count g in
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun ((so, _), (dok, _)) ->
      if so <> dok && g.g_ops.(so).o_kind <> Memory then begin
        succs.(so) <- dok :: succs.(so);
        indegree.(dok) <- indegree.(dok) + 1
      end)
    (dependencies g);
  let queue = Queue.create () in
  for id = 0 to n - 1 do
    if indegree.(id) = 0 then Queue.add id queue
  done;
  let order = ref [] and visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr visited;
    List.iter
      (fun succ ->
        indegree.(succ) <- indegree.(succ) - 1;
        if indegree.(succ) = 0 then Queue.add succ queue)
      succs.(id)
  done;
  if !visited <> n then begin
    let stuck =
      List.filter (fun id -> indegree.(id) > 0) (List.init n Fun.id)
      |> List.map (fun id -> g.g_ops.(id).o_name)
      |> String.concat ", "
    in
    invalid_arg ("[ALG002] dependency cycle through " ^ stuck)
  end;
  List.rev !order

let validate g =
  for id = 0 to op_count g - 1 do
    Array.iteri
      (fun dp src ->
        if src = None then
          invalid_arg
            (Printf.sprintf "[ALG001] input %S.%d is not wired" g.g_ops.(id).o_name dp))
      g.dep_in.(id)
  done;
  List.iter
    (fun id ->
      match g.g_ops.(id).o_cond with
      | None -> ()
      | Some { var; _ } -> (
          match condition_source g ~var with
          | None ->
              invalid_arg
                (Printf.sprintf "[ALG003] conditioning variable %S has no source" var)
          | Some (src, _) -> (
              match g.g_ops.(src).o_cond with
              | Some c when String.equal c.var var ->
                  invalid_arg
                    (Printf.sprintf
                       "[ALG003] source of condition %S is conditioned on itself" var)
              | Some _ | None -> ())))
    (ops g);
  ignore (topological_order g)
