(** Static checks on the temporal model (paper §3.2): the constant
    sampling instants [I_j] and actuation instants [O_j] the static
    schedule induces within one period. *)

val check : algorithm:Aaa.Algorithm.t -> Translator.Temporal_model.static -> Diag.t list
(** Emits TEMP001 (non-finite/negative offsets or makespan,
    non-positive period, [fits_period] inconsistent with the makespan
    — all break the monotonicity of [I_j(k) = I_j + k·T]), TEMP002
    (latency beyond the period, warning) and TEMP003 (an actuation
    instant earlier than the sampling instant of a sensor it depends
    on through intra-iteration dependencies). *)

val ids : string list
(** Every rule identifier this pass can raise. *)
