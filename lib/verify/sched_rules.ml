module Algorithm = Aaa.Algorithm
module Architecture = Aaa.Architecture
module Schedule = Aaa.Schedule

let artifact = "schedule"
let eps = 1e-9

let check sched =
  let alg = sched.Schedule.algorithm and arch = sched.Schedule.architecture in
  let op_n = Algorithm.op_name alg in
  let operator_n = Architecture.operator_name arch in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* negative times *)
  List.iter
    (fun (s : Schedule.comp_slot) ->
      if s.cs_start < 0. || s.cs_duration < 0. then
        emit
          (Diag.error ~rule:"SCHED011" ~artifact ~location:(op_n s.cs_op)
             (Printf.sprintf "slot of %S has negative start or duration [%g, %g]"
                (op_n s.cs_op) s.cs_start s.cs_duration)))
    sched.Schedule.comp;
  List.iter
    (fun (c : Schedule.comm_slot) ->
      if c.cm_start < 0. || c.cm_duration < 0. then
        emit
          (Diag.error ~rule:"SCHED011" ~artifact
             ~location:(Architecture.medium_name arch c.cm_medium)
             (Printf.sprintf "transfer %S -> %S has negative start or duration [%g, %g]"
                (op_n (fst c.cm_src))
                (op_n (fst c.cm_dst))
                c.cm_start c.cm_duration)))
    sched.Schedule.comm;
  (* read offsets never precede the transfer's completion *)
  List.iter
    (fun (c : Schedule.comm_slot) ->
      if c.cm_read +. eps < c.cm_start +. c.cm_duration then
        emit
          (Diag.error ~rule:"SCHED012" ~artifact
             ~location:(Architecture.medium_name arch c.cm_medium)
             (Printf.sprintf "transfer %S -> %S reads at %g before its completion at %g"
                (op_n (fst c.cm_src))
                (op_n (fst c.cm_dst))
                c.cm_read
                (c.cm_start +. c.cm_duration))
             ~hint:"read offsets sit at completion or later (insert_slack moves them)"))
    sched.Schedule.comm;
  (* every operation scheduled exactly once *)
  let slots = Hashtbl.create 64 in
  List.iter
    (fun (s : Schedule.comp_slot) ->
      if Hashtbl.mem slots s.cs_op then
        emit
          (Diag.error ~rule:"SCHED001" ~artifact ~location:(op_n s.cs_op)
             (Printf.sprintf "operation %S is scheduled more than once" (op_n s.cs_op))
             ~hint:"keep exactly one computation slot per operation")
      else Hashtbl.replace slots s.cs_op s)
    sched.Schedule.comp;
  List.iter
    (fun op ->
      if not (Hashtbl.mem slots op) then
        emit
          (Diag.error ~rule:"SCHED002" ~artifact ~location:(op_n op)
             (Printf.sprintf "operation %S is missing from the schedule" (op_n op))))
    (Algorithm.ops alg);
  (* resource exclusivity *)
  let by_start_comp =
    List.sort (fun (a : Schedule.comp_slot) b -> Float.compare a.cs_start b.cs_start)
  in
  let by_start_comm =
    List.sort (fun (a : Schedule.comm_slot) b -> Float.compare a.cm_start b.cm_start)
  in
  List.iter
    (fun operator ->
      let own =
        by_start_comp
          (List.filter
             (fun (s : Schedule.comp_slot) -> s.cs_operator = operator)
             sched.Schedule.comp)
      in
      let rec go = function
        | (a : Schedule.comp_slot) :: (b :: _ as rest) ->
            if a.cs_start +. a.cs_duration > b.cs_start +. eps then
              emit
                (Diag.error ~rule:"SCHED003" ~artifact ~location:(operator_n operator)
                   (Printf.sprintf
                      "computations %S [%g, %g] and %S [%g, %g] overlap on operator %S"
                      (op_n a.cs_op) a.cs_start
                      (a.cs_start +. a.cs_duration)
                      (op_n b.cs_op) b.cs_start
                      (b.cs_start +. b.cs_duration)
                      (operator_n operator))
                   ~hint:"shift one slot past the other's completion");
            go rest
        | [ _ ] | [] -> ()
      in
      go own)
    (Architecture.operators arch);
  List.iter
    (fun medium ->
      let own =
        by_start_comm
          (List.filter
             (fun (c : Schedule.comm_slot) -> c.cm_medium = medium)
             sched.Schedule.comm)
      in
      let rec go = function
        | (a : Schedule.comm_slot) :: (b :: _ as rest) ->
            if a.cm_start +. a.cm_duration > b.cm_start +. eps then
              emit
                (Diag.error ~rule:"SCHED004" ~artifact
                   ~location:(Architecture.medium_name arch medium)
                   (Printf.sprintf
                      "transfers %S -> %S [%g, %g] and %S -> %S [%g, %g] overlap on medium %S"
                      (op_n (fst a.cm_src))
                      (op_n (fst a.cm_dst))
                      a.cm_start
                      (a.cm_start +. a.cm_duration)
                      (op_n (fst b.cm_src))
                      (op_n (fst b.cm_dst))
                      b.cm_start
                      (b.cm_start +. b.cm_duration)
                      (Architecture.medium_name arch medium)));
            go rest
        | [ _ ] | [] -> ()
      in
      go own)
    (Architecture.media arch);
  (* precedence: every dependency's data must arrive before its
     consumer starts, mirroring Schedule's arrival semantics (Memory
     sources carry the previous iteration's value and wrap). *)
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      match (Hashtbl.find_opt slots src, Hashtbl.find_opt slots dst) with
      | None, _ | _, None -> () (* SCHED002 already reported *)
      | Some src_slot, Some dst_slot ->
          let describe =
            Printf.sprintf "%s.%d -> %s.%d" (op_n src) sp (op_n dst) dp
          in
          let is_memory = Algorithm.op_kind alg src = Algorithm.Memory in
          if src_slot.Schedule.cs_operator = dst_slot.Schedule.cs_operator then begin
            let arrival =
              if is_memory then 0.
              else src_slot.Schedule.cs_start +. src_slot.Schedule.cs_duration
            in
            if dst_slot.Schedule.cs_start +. eps < arrival then
              emit
                (Diag.error ~rule:"SCHED007" ~artifact ~location:(op_n dst)
                   (Printf.sprintf "%S starts at %g before its input %s arrives at %g"
                      (op_n dst) dst_slot.Schedule.cs_start describe arrival)
                   ~hint:"delay the consumer past its producers' completions")
          end
          else begin
            let hops =
              List.filter
                (fun (c : Schedule.comm_slot) ->
                  c.cm_src = (src, sp) && c.cm_dst = (dst, dp))
                sched.Schedule.comm
              |> List.sort (fun (a : Schedule.comm_slot) b -> Int.compare a.cm_hop b.cm_hop)
            in
            match hops with
            | [] ->
                emit
                  (Diag.error ~rule:"SCHED005" ~artifact ~location:describe
                     (Printf.sprintf
                        "inter-operator dependency %s (%S on %S, %S on %S) has no transfer"
                        describe (op_n src)
                        (operator_n src_slot.Schedule.cs_operator)
                        (op_n dst)
                        (operator_n dst_slot.Schedule.cs_operator))
                     ~hint:"add the communication slots carrying this dependency")
            | first :: _ ->
                let chain_ok = ref true in
                let break msg =
                  if !chain_ok then begin
                    chain_ok := false;
                    emit
                      (Diag.error ~rule:"SCHED006" ~artifact ~location:describe
                         (Printf.sprintf "transfer %s %s" describe msg))
                  end
                in
                if
                  first.Schedule.cm_hop <> 0
                  || first.Schedule.cm_from <> src_slot.Schedule.cs_operator
                then
                  break
                    (Printf.sprintf "does not leave the producer's operator %S"
                       (operator_n src_slot.Schedule.cs_operator));
                let rec walk = function
                  | (a : Schedule.comm_slot) :: (b :: _ as rest) ->
                      if b.Schedule.cm_hop <> a.Schedule.cm_hop + 1 || b.cm_from <> a.cm_to
                      then break "has a broken hop chain"
                      else if b.cm_start +. eps < a.cm_start +. a.cm_duration then
                        break
                          (Printf.sprintf "hop %d starts before hop %d ends"
                             b.Schedule.cm_hop a.Schedule.cm_hop);
                      walk rest
                  | [ (last : Schedule.comm_slot) ] ->
                      if last.cm_to <> dst_slot.Schedule.cs_operator then
                        break
                          (Printf.sprintf "does not reach the consumer's operator %S"
                             (operator_n dst_slot.Schedule.cs_operator))
                  | [] -> ()
                in
                walk hops;
                if !chain_ok then begin
                  (* a transfer — even a wrapping Memory one — may only
                     start once its producer has completed, exactly as
                     Schedule.make checks *)
                  let produced =
                    src_slot.Schedule.cs_start +. src_slot.Schedule.cs_duration
                  in
                  if first.Schedule.cm_start +. eps < produced then
                    emit
                      (Diag.error ~rule:"SCHED007" ~artifact ~location:describe
                         (Printf.sprintf
                            "transfer %s starts at %g before %S completes at %g" describe
                            first.Schedule.cm_start (op_n src) produced));
                  if not is_memory then begin
                    let last = List.nth hops (List.length hops - 1) in
                    let arrival = last.Schedule.cm_read in
                    if dst_slot.Schedule.cs_start +. eps < arrival then
                      emit
                        (Diag.error ~rule:"SCHED007" ~artifact ~location:(op_n dst)
                           (Printf.sprintf
                              "%S starts at %g before its input %s arrives at %g"
                              (op_n dst) dst_slot.Schedule.cs_start describe arrival)
                           ~hint:"delay the consumer past the transfer's completion")
                  end
                end
          end)
    (Algorithm.dependencies alg);
  (* quality findings make tolerates *)
  let makespan =
    List.fold_left
      (fun acc (s : Schedule.comp_slot) -> Float.max acc (s.cs_start +. s.cs_duration))
      0. sched.Schedule.comp
    |> fun m ->
    List.fold_left
      (fun acc (c : Schedule.comm_slot) -> Float.max acc (c.cm_start +. c.cm_duration))
      m sched.Schedule.comm
  in
  let period = Algorithm.period alg in
  if makespan > period +. eps then
    emit
      (Diag.warning ~rule:"SCHED008" ~artifact ~location:(Algorithm.name alg)
         (Printf.sprintf "makespan %g exceeds the period %g" makespan period)
         ~hint:"relax the period, speed the platform up or re-map the algorithm");
  if Architecture.operator_count arch > 1 then
    List.iter
      (fun operator ->
        if
          not
            (List.exists
               (fun (s : Schedule.comp_slot) -> s.cs_operator = operator)
               sched.Schedule.comp)
        then
          emit
            (Diag.info ~rule:"SCHED009" ~artifact ~location:(operator_n operator)
               (Printf.sprintf "operator %S executes no computation" (operator_n operator))
               ~hint:"consider removing it or re-balancing the mapping"))
      (Architecture.operators arch);
  List.rev !diags

let failover_coverage ?strategy ?replicas ~durations sched =
  let arch = sched.Schedule.architecture in
  if Architecture.operator_count arch <= 1 then []
  else
    match
      Fault.Degrade.failover_table ?strategy ?replicas
        ~algorithm:sched.Schedule.algorithm ~architecture:arch ~durations ~nominal:sched
        ()
    with
    | table ->
        List.filter_map
          (fun (f : Fault.Degrade.failover) ->
            if f.fits then None
            else
              Some
                (Diag.warning ~rule:"SCHED010" ~artifact ~location:f.failed_operator
                   (match f.schedule with
                   | None ->
                       Printf.sprintf
                         "no feasible failover schedule when operator %S fails"
                         f.failed_operator
                   | Some _ ->
                       Printf.sprintf
                         "failover after losing %S overruns the period (makespan %g)"
                         f.failed_operator f.makespan)
                   ~hint:"add spare capacity or declare passive replicas"))
          table
    | exception Invalid_argument msg ->
        [ Diag.of_invalid_arg ~artifact ~location:"failover" msg ]

let ids =
  [
    "SCHED001"; "SCHED002"; "SCHED003"; "SCHED004"; "SCHED005"; "SCHED006";
    "SCHED007"; "SCHED008"; "SCHED009"; "SCHED010"; "SCHED011"; "SCHED012";
  ]
