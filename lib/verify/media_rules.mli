(** Static bus-schedulability checks on shared-bus network models —
    the {!Sched_rules} counterpart for the media layer.

    Given the bus models a deployment would attach to its executives
    ({!Exec.Machine.config.bus_models}), {!check} audits each against
    the timed schedule without simulating anything: total utilization
    (schedule transfers at the algorithm period plus the declared
    background streams at their own rates), identifier uniqueness, and
    a classic non-preemptive fixed-priority response-time analysis
    (max lower-priority blocking + own frame time + higher-priority
    interference, iterated to a fixed point) compared against the
    instant each transfer's consumer reads it.  It never raises, so it
    can audit forged models no constructor validated. *)

val check :
  ?util_bound:float ->
  schedule:Aaa.Schedule.t ->
  (string * Media.Bus.config) list ->
  Diag.t list
(** Emits, per model: MEDIA004 (error — model names no medium / a
    point-to-point link, or the config is malformed; construction-time
    ["[MEDIA004]"] raises from {!Media.Bus.make} recover to the same
    rule via {!Diag.of_invalid_arg}), MEDIA001 (error — utilization at
    or above 1: the bus cannot carry the declared traffic and the
    executives' low-priority frames starve), MEDIA002 (warning —
    utilization above [util_bound], default 0.8), MEDIA003 (warning —
    duplicate frame identifiers on one bus: arbitration stays
    deterministic but priority stops being meaningful), and MEDIA005
    (warning — a schedule frame's worst-case response time from its
    planned availability exceeds the slack to its consumer's read
    offset, or the analysis diverges under the declared load).
    Response times are only analysed on buses below utilization 1
    (MEDIA001 subsumes the divergence). *)

val frame_wcrt :
  schedule:Aaa.Schedule.t ->
  medium:Aaa.Architecture.medium_id ->
  Media.Bus.config ->
  Aaa.Schedule.comm_slot ->
  float option
(** Worst-case response time of {e one attempt} of the given transfer
    on [medium] under the schedule's other transfers plus the model's
    background streams ([None] when the slot is not on the medium or
    the fixed point diverges).  {!Recovery_rules} uses this as the
    per-attempt duration when sizing retry windows on a contended
    bus (rule REC006). *)

val ids : string list
(** Every rule identifier this pass can raise. *)
