type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  artifact : string;
  location : string;
  message : string;
  hint : string option;
}

let v ?hint ~rule ~severity ~artifact ~location message =
  { rule; severity; artifact; location; message; hint }

let error ?hint ~rule ~artifact ~location message =
  v ?hint ~rule ~severity:Error ~artifact ~location message

let warning ?hint ~rule ~artifact ~location message =
  v ?hint ~rule ~severity:Warning ~artifact ~location message

let info ?hint ~rule ~artifact ~location message =
  v ?hint ~rule ~severity:Info ~artifact ~location message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.artifact b.artifact in
      if c <> 0 then c
      else
        let c = String.compare a.location b.location in
        if c <> 0 then c else String.compare a.message b.message

let errors diags = List.filter (fun d -> d.severity = Error) diags
let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* A rule prefix is "[" ^ id ^ "] " where id is uppercase letters
   followed by digits — the shape every catalogued identifier has. *)
let rule_prefix msg =
  if String.length msg < 3 || msg.[0] <> '[' then None
  else
    match String.index_opt msg ']' with
    | None -> None
    | Some close ->
        let id = String.sub msg 1 (close - 1) in
        let valid =
          id <> ""
          && String.for_all (function 'A' .. 'Z' | '0' .. '9' -> true | _ -> false) id
          && (match id.[0] with 'A' .. 'Z' -> true | _ -> false)
        in
        if valid then Some id else None

let of_invalid_arg ~artifact ?(location = "") msg =
  match rule_prefix msg with
  | Some rule ->
      let close = String.index msg ']' in
      let rest = String.sub msg (close + 1) (String.length msg - close - 1) in
      error ~rule ~artifact ~location (String.trim rest)
  | None -> error ~rule:"VER001" ~artifact ~location msg

let to_string d =
  let where =
    if d.location = "" then d.artifact else Printf.sprintf "%s(%s)" d.artifact d.location
  in
  let head =
    Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.rule where d.message
  in
  match d.hint with None -> head | Some h -> head ^ "\n    hint: " ^ h

let pp ppf d = Format.pp_print_string ppf (to_string d)

let render diags =
  List.sort compare diags |> List.map to_string |> List.map (fun s -> s ^ "\n")
  |> String.concat ""

let summary diags =
  let count s = List.length (List.filter (fun d -> d.severity = s) diags) in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s" (plural (count Error) "error")
    (plural (count Warning) "warning")
    (plural (count Info) "info")

let json_of d =
  let hint = match d.hint with Some h -> Printf.sprintf ", \"hint\": %S" h | None -> "" in
  Printf.sprintf "{\"rule\": %S, \"severity\": %S, \"artifact\": %S, \"location\": %S, \"message\": %S%s}"
    d.rule (severity_to_string d.severity) d.artifact d.location d.message hint

let to_json diags =
  match List.sort compare diags with
  | [] -> "[]\n"
  | sorted -> "[\n  " ^ String.concat ",\n  " (List.map json_of sorted) ^ "\n]\n"
