(** Static checks on the generated executive ({!Aaa.Codegen}) and the
    C sources emitted from it ({!Aaa.Cgen}) — the deadlock-freedom
    side of paper §3.2: every scheduled transfer must have exactly one
    matching send and receive, media must carry transfers in the
    schedule's total order, and no instruction may consume data before
    the program makes it available. *)

val check : Aaa.Codegen.t -> Diag.t list
(** Emits CGEN002 (an operator program's send/receive set differs from
    the schedule's transfers — an unpaired post or a receive that would
    block forever), CGEN003 (a medium program out of schedule order),
    CGEN004 (an execution reading an input before the receive/execution
    producing it, or a send posted before its local producer ran) and
    CGEN001 (an emitted C file referencing a [buf_*] array it never
    declares). *)

val ids : string list
(** Every rule identifier this pass can raise. *)
