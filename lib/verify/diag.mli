(** Structured diagnostics — the currency of the static design-rule
    checker.

    Every finding of an analysis pass is a [t]: a stable rule
    identifier (e.g. ["SCHED003"], catalogued in {!Rules}), a severity,
    the design artifact it was found in ("dataflow", "algorithm",
    "schedule", "temporal", "cgen", ...), a location inside that
    artifact (an operation, operator, block or file name), a
    human-readable message and an optional fix hint.

    The same rule identifiers appear in the [Invalid_argument] messages
    the construction-time validators raise (e.g.
    [Aaa.Schedule.make], [Dataflow.Graph.connect_data]), as a
    ["[RULE]"] prefix — {!of_invalid_arg} recovers the structure from
    such a message, so library and linter share one rule set. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule identifier, e.g. ["SCHED003"] *)
  severity : severity;
  artifact : string;  (** which design artifact: "schedule", "dataflow", ... *)
  location : string;  (** operation/operator/block/file inside the artifact *)
  message : string;
  hint : string option;  (** how to fix it, when we know *)
}

val v :
  ?hint:string -> rule:string -> severity:severity -> artifact:string ->
  location:string -> string -> t

val error : ?hint:string -> rule:string -> artifact:string -> location:string -> string -> t
val warning : ?hint:string -> rule:string -> artifact:string -> location:string -> string -> t
val info : ?hint:string -> rule:string -> artifact:string -> location:string -> string -> t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then rule, artifact, location,
    message — the presentation order of {!render}. *)

val errors : t list -> t list
(** The error-severity subset. *)

val has_errors : t list -> bool

val rule_prefix : string -> string option
(** [rule_prefix msg] extracts ["SCHED003"] from a message of the form
    ["[SCHED003] ..."], [None] otherwise. *)

val of_invalid_arg : artifact:string -> ?location:string -> string -> t
(** Structures the message of a library [Invalid_argument]: the rule is
    the ["[RULE]"] prefix when present, the catch-all rule ["VER001"]
    otherwise.  Construction-time validators only reject hard
    violations, so the severity is always [Error]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One- or two-line rendering:
    ["error[SCHED003] schedule(P0): ..."] plus an indented hint. *)

val render : t list -> string
(** Sorted human rendering, one diagnostic per line; empty string for
    an empty list. *)

val summary : t list -> string
(** ["2 errors, 1 warning, 0 infos"]. *)

val json_of : t -> string
(** One JSON object (used by callers composing their own arrays). *)

val to_json : t list -> string
(** A JSON array of diagnostic objects (sorted like {!render}). *)
