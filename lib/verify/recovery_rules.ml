module Sched = Aaa.Schedule
module Arch = Aaa.Architecture
module Recovery = Exec.Recovery

let artifact = "recovery"
let eps = 1e-9

let check ?(bus_models = []) (p : Recovery.policy) (sched : Sched.t) =
  let arch = sched.Sched.architecture in
  let period = Aaa.Algorithm.period sched.Sched.algorithm in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* REC001: the policy record itself *)
  if
    p.Recovery.max_retries < 0
    || p.Recovery.retry_budget < 0
    || p.Recovery.backoff_base < 0.
    || p.Recovery.backoff_factor < 1.
    || p.Recovery.heartbeat_timeout < 0.
    || p.Recovery.heartbeat_k < 1
    || p.Recovery.blackout < 0.
  then
    emit
      (Diag.error ~rule:"REC001" ~artifact ~location:"policy"
         "recovery policy has malformed parameters (negative count, time or \
          budget, or backoff factor below 1)"
         ~hint:"construct policies with Exec.Recovery.make");
  (* REC002: per medium, the worst retransmission load must still fit
     the period — otherwise recovery itself causes overruns *)
  if Recovery.retransmission_enabled p && p.Recovery.max_retries >= 1 then
    List.iter
      (fun medium ->
        let own = Sched.on_medium sched medium in
        if own <> [] then begin
          let busy = List.fold_left (fun acc c -> acc +. c.Sched.cm_duration) 0. own in
          let d_max =
            List.fold_left (fun acc c -> Float.max acc c.Sched.cm_duration) 0. own
          in
          let per_attempt =
            Recovery.backoff_delay p ~attempt:p.Recovery.max_retries +. d_max
          in
          let worst = busy +. (float_of_int p.Recovery.retry_budget *. per_attempt) in
          if worst > period +. eps then
            emit
              (Diag.warning ~rule:"REC002" ~artifact
                 ~location:(Arch.medium_name arch medium)
                 (Printf.sprintf
                    "retry budget can stretch medium %S to %.6g s of traffic in a \
                     %.6g s period"
                    (Arch.medium_name arch medium) worst period)
                 ~hint:"lower retry_budget / max_retries or shrink the backoff")
        end)
      (Arch.media arch);
  (* REC003: the heartbeat timeout must cover the worst in-iteration
     activity of any operator, or a live-but-busy operator can be
     declared dead *)
  if Recovery.supervisor_enabled p && p.Recovery.heartbeat_timeout > 0. then begin
    let latest_activity =
      List.fold_left
        (fun acc (s : Sched.comp_slot) -> Float.max acc (s.cs_start +. s.cs_duration))
        0. sched.Sched.comp
    in
    if p.Recovery.heartbeat_timeout < latest_activity -. eps then
      emit
        (Diag.warning ~rule:"REC003" ~artifact ~location:"heartbeat"
           (Printf.sprintf
              "heartbeat timeout %.6g s is below the schedule's latest planned \
               activity %.6g s after a release: a busy operator can be declared dead"
              p.Recovery.heartbeat_timeout latest_activity)
           ~hint:"raise heartbeat_timeout above the worst in-iteration completion")
  end;
  (* REC004: a supervisor that confirms a fail-stop it cannot switch
     away from only buys detection, not recovery *)
  if Recovery.supervisor_enabled p then
    List.iter
      (fun operator ->
        let name = Arch.operator_name arch operator in
        if not (List.mem_assoc name p.Recovery.failover) then
          emit
            (Diag.warning ~rule:"REC004" ~artifact ~location:name
               (Printf.sprintf
                  "supervisor enabled but no failover executive covers operator %S"
                  name)
               ~hint:
                 "generate one from Fault.Degrade.failover_table via \
                  failover_executives"))
      (Arch.operators arch);
  (* REC005/REC006: every retried transfer's worst-case completion —
     planned completion plus the full retry chain, each attempt priced
     at its media WCRT when a bus model covers the medium — must land
     before the planned read offset the consumer samples at.  Without
     inserted slack the read sits at the completion and any retry
     lands after it: the documented reads-stay-at-planned-offsets gap
     of the time-triggered executive (warning).  A schedule that DOES
     declare a retry window (Aaa.Schedule.insert_slack) but sizes it
     below the worst case is lying to the verifier: error. *)
  if Recovery.retransmission_enabled p then
    List.iter
      (fun (c : Sched.comm_slot) ->
        let completion = c.Sched.cm_start +. c.Sched.cm_duration in
        let declared = Sched.retry_slack c in
        let medium_name = Arch.medium_name arch c.Sched.cm_medium in
        let attempt =
          match List.assoc_opt medium_name bus_models with
          | Some cfg -> (
              match
                Media_rules.frame_wcrt ~schedule:sched ~medium:c.Sched.cm_medium cfg c
              with
              | Some r -> Float.max r c.Sched.cm_duration
              | None -> c.Sched.cm_duration)
          | None -> c.Sched.cm_duration
        in
        let retry_time = Recovery.worst_case_retry_time p ~transfer_duration:attempt in
        let worst = completion +. retry_time in
        let what =
          Printf.sprintf "transfer %S -> %S (hop %d) on %S"
            (Aaa.Algorithm.op_name sched.Sched.algorithm (fst c.Sched.cm_src))
            (Aaa.Algorithm.op_name sched.Sched.algorithm (fst c.Sched.cm_dst))
            c.Sched.cm_hop medium_name
        in
        if worst > c.Sched.cm_read +. eps then
          if declared <= eps then
            emit
              (Diag.warning ~rule:"REC005" ~artifact ~location:medium_name
                 (Printf.sprintf
                    "%s: a retried payload can land at %.6g s, after its planned read \
                     at %.6g s — the time-triggered consumer reads the stale value"
                    what worst c.Sched.cm_read)
                 ~hint:
                   "insert a retry window at schedule time with \
                    Aaa.Schedule.insert_slack (or disable retransmission)")
          else
            emit
              (Diag.error ~rule:"REC006" ~artifact ~location:medium_name
                 (Printf.sprintf
                    "%s: declares a %.6g s retry window but the worst-case retried \
                     completion %.6g s (media WCRT included) overruns the read at \
                     %.6g s"
                    what declared worst c.Sched.cm_read)
                 ~hint:
                   "widen the window (insert_slack with the policy's \
                    worst_case_retry_time) or cut max_retries"))
      sched.Sched.comm;
  List.rev !diags

let ids = [ "REC001"; "REC002"; "REC003"; "REC004"; "REC005"; "REC006" ]
