module Graph = Dataflow.Graph
module Block = Dataflow.Block
module I = Dataflow.Interval

type t = {
  graph : Graph.t;
  ranges : I.t array array; (* ranges.(block).(output port) *)
  iterations : int;
  converged : bool;
}

(* Widening thresholds: powers of four up to beyond any physical
   signal magnitude, then infinity.  Jumping an escaping bound to the
   next rung instead of straight to ±∞ keeps contractive loops finite
   (k·[-T,T] + u fits back inside [-T,T] once T is large enough) while
   still guaranteeing a finite ascending chain for divergent ones. *)
let thresholds =
  Array.init 66 (fun i -> Float.ldexp 1. (2 * i)) |> fun pos ->
  Array.concat [ [| 0. |]; pos; [| infinity |] ]

(* smallest value of the symmetric ladder {±thresholds} that is >= x *)
let up_threshold x =
  if x <= 0. then begin
    (* largest rung t with -t >= x *)
    let best = ref 0. in
    Array.iter (fun t -> if t <= -.x then best := t) thresholds;
    -. !best
  end
  else
    let rec find i = if thresholds.(i) >= x then thresholds.(i) else find (i + 1) in
    find 0

(* largest ladder value <= x *)
let down_threshold x = -.up_threshold (-.x)

(* widen old toward new_: keep stable bounds, jump escaping ones to
   the next threshold rung *)
let widen (old : I.t) (new_ : I.t) =
  let j = I.join old new_ in
  let lo = if j.I.lo < old.I.lo then down_threshold j.I.lo else old.I.lo in
  let hi = if j.I.hi > old.I.hi then up_threshold j.I.hi else old.I.hi in
  I.v lo hi

(* plain joins first give the threshold ladder a chance to be skipped
   entirely on designs that stabilise quickly *)
let widen_after = 12

(* port p of a declared interval array, defensively top when the
   declaration is shorter than the port list *)
let port_or_top arr p = if p < Array.length arr then arr.(p) else I.top

let init_ranges g =
  Array.of_list
    (List.map
       (fun id ->
         let b = Graph.block g id in
         let n = Array.length b.Block.out_widths in
         match b.Block.transfer with
         | Block.Static a -> Array.init n (port_or_top a)
         | Block.Update { init; _ } -> Array.init n (port_or_top init)
         | Block.Opaque | Block.Map _ -> Array.make n I.top)
       (Graph.block_ids g))

let inputs_of ranges g id =
  let b = Graph.block g id in
  Array.init (Array.length b.Block.in_widths) (fun p ->
      match Graph.data_source g id p with
      | Some (src, op) -> ranges.((src : Graph.block_id :> int)).(op)
      | None -> I.top)

(* one full-graph sweep; returns whether anything changed.
   [mode] selects the treatment of stateful blocks:
   [`Prime] skip them entirely (they keep their init values while the
   memoryless part is seeded), [`Join] plain ascending join, [`Widen]
   threshold widening, [`Narrow] descending refinement (meet with the
   recomputed step). *)
let sweep ~mode g ranges =
  let changed = ref false in
  List.iter
    (fun id ->
      let i = (id : Graph.block_id :> int) in
      let b = Graph.block g id in
      let n = Array.length b.Block.out_widths in
      let set p v =
        if not (I.equal ranges.(i).(p) v) then begin
          ranges.(i).(p) <- v;
          changed := true
        end
      in
      match b.Block.transfer with
      | Block.Opaque | Block.Static _ -> ()
      | Block.Map f ->
          let out = f (inputs_of ranges g id) in
          for p = 0 to n - 1 do
            set p (port_or_top out p)
          done
      | Block.Update _ when mode = `Prime -> ()
      | Block.Update { init; step; _ } ->
          let out = step ~prev:ranges.(i) (inputs_of ranges g id) in
          for p = 0 to n - 1 do
            let stepped = I.join (port_or_top init p) (port_or_top out p) in
            let next =
              match mode with
              | `Prime -> assert false
              | `Join -> I.join ranges.(i).(p) stepped
              | `Widen -> widen ranges.(i).(p) stepped
              | `Narrow ->
                  (* both operands over-approximate the reachable set,
                     so they intersect; defensively keep the current
                     value if numeric drift ever made them disjoint *)
                  Option.value (I.meet ranges.(i).(p) stepped) ~default:ranges.(i).(p)
            in
            set p next
          done)
    (Graph.block_ids g);
  !changed

let default_max_sweeps g =
  (* ascending phase: widen_after plain sweeps, then at most one
     ladder climb per bound per stateful block, propagated across the
     graph — block_count sweeps per rung is a loose upper envelope *)
  widen_after + ((Array.length thresholds + 2) * 2) + Graph.block_count g + 8

let analyze ?max_sweeps g =
  let max_sweeps = Option.value max_sweeps ~default:(default_max_sweeps g) in
  let ranges = init_ranges g in
  let iterations = ref 0 in
  let converged = ref false in
  (* prime the memoryless part: propagate static and initial values
     through Map chains so feedback cycles are entered from their
     time-zero valuation rather than from ⊤ (Map ports start at ⊤,
     and a ⊤ once joined into a stateful block can never come back
     down during the ascending phase).  Cycles all pass through
     stateful blocks — which priming leaves at their init values — so
     the Map-only dependency graph is acyclic and this settles within
     block_count sweeps. *)
  (let cap = Graph.block_count g + 1 in
   let n = ref 0 in
   while !n < cap && sweep ~mode:`Prime g ranges do
     incr n;
     incr iterations
   done);
  (* ascending iteration to a post-fixpoint *)
  (try
     while not !converged do
       if !iterations >= max_sweeps then raise Exit;
       let mode = if !iterations < widen_after then `Join else `Widen in
       let changed = sweep ~mode g ranges in
       incr iterations;
       if not changed then converged := true
     done
   with Exit ->
     (* cap hit: force every non-static port to top — trivially a
        post-fixpoint, so the result stays sound *)
     Array.iteri
       (fun i row ->
         let b = Graph.block g (Graph.id_of_int g i) in
         match b.Block.transfer with
         | Block.Static _ -> ()
         | _ -> Array.iteri (fun p _ -> row.(p) <- I.top) row)
       ranges);
  (* two narrowing sweeps recover precision widening threw away;
     each recomputation stays above the concrete reachable set *)
  if !converged then
    for _ = 1 to 2 do
      ignore (sweep ~mode:`Narrow g ranges);
      incr iterations
    done;
  { graph = g; ranges; iterations = !iterations; converged = !converged }

let range t (id, port) =
  let row = t.ranges.((id : Graph.block_id :> int)) in
  if port < 0 || port >= Array.length row then
    invalid_arg (Printf.sprintf "Absint.range: output port %d out of range" port);
  row.(port)

let input_range t (id, port) =
  match Graph.data_source t.graph id port with
  | Some (src, op) -> range t (src, op)
  | None -> I.top

let ports t =
  List.concat_map
    (fun id ->
      let b = Graph.block t.graph id in
      List.init (Array.length b.Block.out_widths) (fun p -> (id, p, range t (id, p))))
    (Graph.block_ids t.graph)

let iterations t = t.iterations
let converged t = t.converged

let markdown_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "| block | port | range |\n|---|---|---|\n";
  List.iter
    (fun (id, p, iv) ->
      let b = Graph.block t.graph id in
      Buffer.add_string buf
        (Printf.sprintf "| %s | %d | %s |\n" b.Block.name p (I.to_string iv)))
    (ports t);
  Buffer.contents buf
