type rule = {
  id : string;
  severity : Diag.severity;
  pass : string;
  title : string;
}

let r id severity pass title = { id; severity; pass; title }

let all =
  [
    (* dataflow graphs *)
    r "GRAPH001" Diag.Error "graph" "regular input port is not wired";
    r "GRAPH002" Diag.Error "graph" "input port wired twice";
    r "GRAPH003" Diag.Error "graph" "data link width mismatch";
    r "GRAPH004" Diag.Error "graph" "link references a non-existent port";
    r "GRAPH005" Diag.Error "graph" "delay-free algebraic loop through feedthrough blocks";
    r "GRAPH006" Diag.Warning "graph"
      "event-driven block unreachable from any activation source";
    r "GRAPH007" Diag.Warning "graph" "stateful block instance added to the graph twice";
    (* value-flow analysis over dataflow graphs *)
    r "FLOW001" Diag.Warning "flow" "divisor range may contain zero";
    r "FLOW002" Diag.Warning "flow" "inferred range overflows the declared machine format";
    r "FLOW003" Diag.Warning "flow" "feedback loop with no finite signal bound";
    r "FLOW004" Diag.Info "flow" "output never consumed, or block computes a constant";
    r "FLOW005" Diag.Warning "flow" "saturation always active: input pinned beyond a bound";
    r "FLOW006" Diag.Warning "flow" "sqrt/log argument range leaves the function's domain";
    r "FLOW007" Diag.Warning "flow" "hold/delay initial output escapes the held signal's range";
    r "FLOW008" Diag.Warning "flow" "worst-case quantization error exceeds the stated tolerance";
    (* algorithm graphs *)
    r "ALG001" Diag.Error "algorithm" "operation input port is not wired";
    r "ALG002" Diag.Error "algorithm" "intra-iteration dependency cycle";
    r "ALG003" Diag.Error "algorithm" "conditioning variable without a valid source";
    r "ALG004" Diag.Error "algorithm" "dependency references a bad port or mismatched width";
    r "ALG005" Diag.Warning "algorithm" "control loop lacks a sensor or an actuator";
    (* architecture graphs *)
    r "ARCH001" Diag.Error "architecture" "no operator, or operator graph disconnected";
    r "ARCH002" Diag.Error "architecture" "medium with bad endpoints or timing parameters";
    (* durations tables *)
    r "DUR001" Diag.Error "mapping" "negative execution time";
    r "DUR002" Diag.Error "mapping" "BCET set before the WCET or exceeding it";
    (* algorithm-on-architecture mapping *)
    r "MAP001" Diag.Error "mapping" "operation has no operator able to run it";
    r "MAP002" Diag.Error "mapping" "dependency has no routable operator placement";
    r "MAP003" Diag.Warning "mapping" "operation WCET exceeds the period everywhere";
    (* schedules *)
    r "SCHED001" Diag.Error "schedule" "operation scheduled more than once";
    r "SCHED002" Diag.Error "schedule" "operation missing from the schedule";
    r "SCHED003" Diag.Error "schedule" "overlapping computation slots on one operator";
    r "SCHED004" Diag.Error "schedule" "overlapping transfer slots on one medium";
    r "SCHED005" Diag.Error "schedule" "inter-operator dependency without a transfer";
    r "SCHED006" Diag.Error "schedule" "transfer hop chain broken or misrouted";
    r "SCHED007" Diag.Error "schedule" "precedence violated: consumer before data arrival";
    r "SCHED008" Diag.Warning "schedule" "makespan exceeds the period";
    r "SCHED009" Diag.Info "schedule" "operator idle over the whole iteration";
    r "SCHED010" Diag.Warning "schedule" "single-operator failure without a fitting failover";
    r "SCHED011" Diag.Error "schedule" "slot with negative start or duration";
    r "SCHED012" Diag.Error "schedule" "read offset before the transfer's completion";
    (* temporal model *)
    r "TEMP001" Diag.Error "temporal" "non-finite, negative or inconsistent temporal model";
    r "TEMP002" Diag.Warning "temporal" "latency exceeds the period";
    r "TEMP003" Diag.Error "temporal" "actuation scheduled before a sensor it depends on";
    (* recovery policies *)
    r "REC001" Diag.Error "recovery" "recovery policy parameters malformed";
    r "REC002" Diag.Warning "recovery"
      "retry budget's worst-case retransmission time exceeds the period";
    r "REC003" Diag.Warning "recovery"
      "heartbeat timeout below the schedule's worst in-iteration completion";
    r "REC004" Diag.Warning "recovery" "supervisor without a failover executive for an operator";
    r "REC005" Diag.Warning "recovery"
      "retried transfer's worst-case completion lands after its planned read";
    r "REC006" Diag.Error "recovery"
      "declared retry window smaller than the worst-case retry chain (media WCRT included)";
    (* shared-bus network models *)
    r "MEDIA001" Diag.Error "media" "bus overloaded: utilization at or above 1";
    r "MEDIA002" Diag.Warning "media" "bus utilization above the configured bound";
    r "MEDIA003" Diag.Warning "media" "duplicate frame identifiers on one bus";
    r "MEDIA004" Diag.Error "media" "bus model malformed or attached to no shared bus";
    r "MEDIA005" Diag.Warning "media"
      "worst-case frame response time misses its consumer's read offset";
    (* generated executive / C *)
    r "CGEN001" Diag.Error "cgen" "generated C uses an undeclared buffer";
    r "CGEN002" Diag.Error "cgen" "send/receive set does not match the schedule's transfers";
    r "CGEN003" Diag.Error "cgen" "medium program order differs from the schedule";
    r "CGEN004" Diag.Error "cgen" "operation or send ordered before its data is available";
    (* catch-all *)
    r "VER001" Diag.Error "core" "uncategorised construction failure";
    r "VER002" Diag.Info "core" "durations table defaulted from assumed WCETs";
  ]

let () =
  (* the catalogue is the contract: duplicate ids are a programming error *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun { id; _ } ->
      if Hashtbl.mem seen id then invalid_arg ("Rules: duplicate rule id " ^ id);
      Hashtbl.replace seen id ())
    all

let find id = List.find_opt (fun rule -> String.equal rule.id id) all

let severity_of id =
  match find id with Some rule -> rule.severity | None -> Diag.Error

let markdown_table () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "| ID | Severity | Pass | Meaning |\n";
  Buffer.add_string b "|----|----------|------|---------|\n";
  List.iter
    (fun { id; severity; pass; title } ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s | %s |\n" id
           (Diag.severity_to_string severity)
           pass title))
    all;
  Buffer.contents b
