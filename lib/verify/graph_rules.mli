(** Static checks on a dataflow (Scicos-style) block diagram — the
    design-entry artifact of the lifecycle.

    Covers the invariants {!Dataflow.Graph.validate} enforces by
    raising (unwired ports, algebraic loops), without aborting at the
    first violation, plus diagram smells the simulator tolerates but a
    reviewer should see: event-driven blocks no activation can ever
    reach, and stateful block instances shared between two graph
    nodes. *)

val check :
  ?expect_activated:Dataflow.Graph.block_id list ->
  Dataflow.Graph.t ->
  Diag.t list
(** Emits GRAPH001 (unwired input), GRAPH005 (delay-free algebraic
    loop), GRAPH006 (event-driven block unreachable from any activation
    source) and GRAPH007 (stateful block instance added twice).

    [expect_activated] lists blocks a clock is attached to {e after}
    the diagram is built (the lifecycle wires the stroboscopic clock
    post-[build]); they and their event-reachable successors are
    exempt from GRAPH006. *)

val ids : string list
(** Every rule identifier attributable to this pass, including those
    raised by the construction-time validators of its artifacts. *)
