(** Static checks on a timed schedule — the adequation's output.

    {!check} re-derives every invariant {!Aaa.Schedule.make} enforces,
    as diagnostics instead of a first-failure raise, and adds the
    quality findings [make] deliberately tolerates (makespan overrun,
    idle operators).  It never raises, so it can audit forged or
    deserialised schedules no constructor ever validated.

    The severity split is a contract with {!Aaa.Schedule.make}: a
    schedule [make] accepts yields {e zero error-severity}
    diagnostics from {!check}, and a slot list [make] rejects yields
    at least one — the property [test/test_verify.ml] checks. *)

val check : Aaa.Schedule.t -> Diag.t list
(** Emits SCHED001 (operation scheduled twice), SCHED002 (operation
    missing), SCHED003/SCHED004 (overlap on an operator/medium),
    SCHED005 (missing transfer), SCHED006 (broken hop chain), SCHED007
    (precedence violation), SCHED011 (negative times) — all errors —
    plus SCHED008 (makespan over the period, warning) and SCHED009
    (idle operator on a multi-processor architecture, info). *)

val failover_coverage :
  ?strategy:Aaa.Adequation.strategy ->
  ?replicas:(string * string) list ->
  durations:Aaa.Durations.t ->
  Aaa.Schedule.t ->
  Diag.t list
(** Single-failure coverage (SCHED010, warning): re-plans the schedule
    after each single-operator failure with {!Fault.Degrade} and
    reports the failures whose failover is infeasible or misses the
    period.  Empty on single-operator architectures. *)

val ids : string list
(** Every rule identifier this pass can raise. *)
