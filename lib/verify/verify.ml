module Diag = Diag
module Rules = Rules
module Graph_rules = Graph_rules
module Algo_rules = Algo_rules
module Sched_rules = Sched_rules
module Temporal_rules = Temporal_rules
module Cgen_rules = Cgen_rules
module Recovery_rules = Recovery_rules
module Media_rules = Media_rules
module Absint = Absint
module Flow_rules = Flow_rules

let default_durations ~algorithm ~architecture =
  let durations = Aaa.Durations.create () in
  let ops = Aaa.Algorithm.ops algorithm in
  let wcet =
    Aaa.Algorithm.period algorithm /. (4. *. float_of_int (max 1 (List.length ops)))
  in
  List.iter
    (fun op ->
      Aaa.Durations.set_everywhere durations
        ~op:(Aaa.Algorithm.op_name algorithm op)
        ~operators:
          (List.map
             (Aaa.Architecture.operator_name architecture)
             (Aaa.Architecture.operators architecture))
        wcet)
    ops;
  durations

(* retime the consumer read offsets so every transfer's worst-case
   retry chain fits before its planned read — the lint-side mirror of
   deploying a schedule through [Aaa.Schedule.insert_slack].  Identity
   when no policy retransmits or [retry_slack] is off. *)
let retry_slacked ~retry_slack ~recovery sched =
  match recovery with
  | Some policy when retry_slack && Exec.Recovery.retransmission_enabled policy ->
      Aaa.Schedule.insert_slack
        ~slack_of:(fun c ->
          Exec.Recovery.worst_case_retry_time policy
            ~transfer_duration:c.Aaa.Schedule.cm_duration)
        sched
  | _ -> sched

let run_all ?architecture ?durations ?strategy ?pins ?(failover = true) ?recovery
    ?bus_models ?(retry_slack = false) (design : Lifecycle.Design.t) =
  let architecture =
    match architecture with Some a -> a | None -> Aaa.Architecture.single ()
  in
  (* stage 1: the diagram as designed *)
  match design.Lifecycle.Design.build () with
  | exception Invalid_argument msg ->
      [ Diag.of_invalid_arg ~artifact:"dataflow" ~location:design.Lifecycle.Design.name msg ]
  | built ->
      let graph_diags =
        Graph_rules.check ~expect_activated:built.Lifecycle.Design.clocked
          built.Lifecycle.Design.graph
      in
      if Diag.has_errors graph_diags then graph_diags
      else begin
        (* stage 1b: value-flow analysis — only on structurally sound
           graphs, so every input port has a source interval *)
        let _absint, flow_diags =
          Flow_rules.check ~probes:built.Lifecycle.Design.probes
            built.Lifecycle.Design.graph
        in
        let graph_diags = graph_diags @ flow_diags in
        (* stage 2: extraction and the SynDEx-side artifacts *)
        match Lifecycle.Methodology.extract design with
        | exception Invalid_argument msg ->
            graph_diags
            @ [
                Diag.of_invalid_arg ~artifact:"algorithm"
                  ~location:design.Lifecycle.Design.name msg;
              ]
        | _built, algorithm, _binding ->
            let durations, duration_diags =
              match durations with
              | Some d -> (d, [])
              | None ->
                  ( default_durations ~algorithm ~architecture,
                    [
                      Diag.info ~rule:"VER002" ~artifact:"mapping"
                        ~location:design.Lifecycle.Design.name
                        "no durations table given: every operation assumed a uniform \
                         WCET of period / (4 · operation count)"
                        ~hint:"measure or estimate real WCETs and pass a durations table";
                    ] )
            in
            let design_diags =
              graph_diags @ duration_diags
              @ Algo_rules.check_algorithm algorithm
              @ Algo_rules.check_architecture architecture
              @ Algo_rules.check_mapping ~algorithm ~architecture ~durations
            in
            if Diag.has_errors design_diags then design_diags
            else begin
              (* stage 3: adequation, temporal model, executive *)
              match
                Lifecycle.Methodology.implement ?strategy ?pins ~design ~architecture
                  ~durations ()
              with
              | exception Aaa.Adequation.Infeasible msg ->
                  design_diags
                  @ [
                      Diag.error ~rule:"MAP001" ~artifact:"mapping"
                        ~location:design.Lifecycle.Design.name
                        ("adequation infeasible: " ^ msg)
                        ~hint:"widen the durations table or the architecture";
                    ]
              | exception Invalid_argument msg ->
                  design_diags
                  @ [
                      Diag.of_invalid_arg ~artifact:"schedule"
                        ~location:design.Lifecycle.Design.name msg;
                    ]
              | impl -> (
                  let base = impl.Lifecycle.Methodology.schedule in
                  match retry_slacked ~retry_slack ~recovery base with
                  | exception Invalid_argument msg ->
                      design_diags
                      @ [
                          Diag.of_invalid_arg ~artifact:"schedule"
                            ~location:design.Lifecycle.Design.name msg;
                        ]
                  | sched ->
                      let static, executive =
                        if sched == base then
                          ( impl.Lifecycle.Methodology.static,
                            impl.Lifecycle.Methodology.executive )
                        else
                          ( Translator.Temporal_model.of_schedule sched,
                            Aaa.Codegen.generate sched )
                      in
                      design_diags
                      @ Sched_rules.check sched
                      @ (if failover then
                           Sched_rules.failover_coverage ?strategy ~durations sched
                         else [])
                      @ (match recovery with
                        | Some policy -> Recovery_rules.check ?bus_models policy sched
                        | None -> [])
                      @ (match bus_models with
                        | Some models -> Media_rules.check ~schedule:sched models
                        | None -> [])
                      @ Temporal_rules.check ~algorithm static
                      @ Cgen_rules.check executive)
            end
      end

(* The SynDEx-side passes over a parsed [.sdx] application: the same
   stages 2–3 as {!run_all}, without a Scicos diagram to analyse. *)
let run_app ?strategy ?(failover = true) ?recovery ?bus_models ?(retry_slack = false)
    (app : Aaa.Sdx.t) =
  let algorithm = app.Aaa.Sdx.algorithm in
  let architecture = app.Aaa.Sdx.architecture in
  let durations = app.Aaa.Sdx.durations in
  let design_diags =
    Algo_rules.check_algorithm algorithm
    @ Algo_rules.check_architecture architecture
    @ Algo_rules.check_mapping ~algorithm ~architecture ~durations
  in
  if Diag.has_errors design_diags then design_diags
  else
    match
      Aaa.Adequation.run ?strategy ~pins:app.Aaa.Sdx.pins ~algorithm ~architecture
        ~durations ()
    with
    | exception Aaa.Adequation.Infeasible msg ->
        design_diags
        @ [
            Diag.error ~rule:"MAP001" ~artifact:"mapping"
              ~location:(Aaa.Algorithm.name algorithm)
              ("adequation infeasible: " ^ msg)
              ~hint:"widen the durations table or the architecture";
          ]
    | exception Invalid_argument msg ->
        design_diags
        @ [
            Diag.of_invalid_arg ~artifact:"schedule"
              ~location:(Aaa.Algorithm.name algorithm) msg;
          ]
    | sched -> (
        match retry_slacked ~retry_slack ~recovery sched with
        | exception Invalid_argument msg ->
            design_diags
            @ [
                Diag.of_invalid_arg ~artifact:"schedule"
                  ~location:(Aaa.Algorithm.name algorithm) msg;
              ]
        | sched ->
            design_diags
            @ Sched_rules.check sched
            @ (if failover then Sched_rules.failover_coverage ?strategy ~durations sched
               else [])
            @ (match recovery with
              | Some policy -> Recovery_rules.check ?bus_models policy sched
              | None -> [])
            @ (match bus_models with
              | Some models -> Media_rules.check ~schedule:sched models
              | None -> [])
            @ Temporal_rules.check ~algorithm
                (Translator.Temporal_model.of_schedule sched)
            @ Cgen_rules.check (Aaa.Codegen.generate sched))

let markdown_section ?(title = "Static verification") diags =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "## %s\n\n" title);
  Buffer.add_string buf (Diag.summary diags ^ ".\n");
  (match List.sort Diag.compare diags with
  | [] -> ()
  | sorted ->
      Buffer.add_string buf "\n";
      List.iter
        (fun (d : Diag.t) ->
          Buffer.add_string buf
            (Printf.sprintf "- **%s** `%s` %s%s: %s\n"
               (Diag.severity_to_string d.Diag.severity)
               d.Diag.rule d.Diag.artifact
               (if d.Diag.location = "" then "" else Printf.sprintf " (%s)" d.Diag.location)
               d.Diag.message))
        sorted);
  Buffer.contents buf
