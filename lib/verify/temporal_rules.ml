module Algorithm = Aaa.Algorithm
module Temporal_model = Translator.Temporal_model

let artifact = "temporal"
let eps = 1e-9

(* Operations reachable from [start] along intra-iteration dependency
   edges (edges out of Memory operations carry previous-iteration
   values and do not propagate this iteration's sample). *)
let reachable alg start =
  let seen = Hashtbl.create 16 in
  let rec visit op =
    if not (Hashtbl.mem seen op) then begin
      Hashtbl.replace seen op ();
      if Algorithm.op_kind alg op <> Algorithm.Memory || op = start then
        List.iter visit (Algorithm.successors alg op)
    end
  in
  visit start;
  seen

let check ~algorithm (static : Temporal_model.static) =
  let op_n = Algorithm.op_name algorithm in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if (not (Float.is_finite static.period)) || static.period <= 0. then
    emit
      (Diag.error ~rule:"TEMP001" ~artifact ~location:"period"
         (Printf.sprintf "non-positive or non-finite period %g" static.period));
  if (not (Float.is_finite static.makespan)) || static.makespan < 0. then
    emit
      (Diag.error ~rule:"TEMP001" ~artifact ~location:"makespan"
         (Printf.sprintf "negative or non-finite makespan %g" static.makespan))
  else if static.fits_period <> (static.makespan <= static.period +. eps) then
    emit
      (Diag.error ~rule:"TEMP001" ~artifact ~location:"fits_period"
         (Printf.sprintf "fits_period = %b contradicts makespan %g vs period %g"
            static.fits_period static.makespan static.period));
  let check_offsets what offsets =
    List.iter
      (fun (op, offset) ->
        if (not (Float.is_finite offset)) || offset < 0. then
          emit
            (Diag.error ~rule:"TEMP001" ~artifact ~location:(op_n op)
               (Printf.sprintf "%s instant of %S is %g — I/O instants must be monotone \
                                non-negative offsets within the period"
                  what (op_n op) offset))
        else if offset > static.period +. eps then
          emit
            (Diag.warning ~rule:"TEMP002" ~artifact ~location:(op_n op)
               (Printf.sprintf "%s latency of %S (%g) exceeds the period %g" what
                  (op_n op) offset static.period)
               ~hint:"the iteration spills into the next period; shorten the schedule"))
      offsets
  in
  check_offsets "sampling" static.sampling_offsets;
  check_offsets "actuation" static.actuation_offsets;
  (* causality: within one iteration an actuator applies a control
     computed from the sensors it depends on, so O_a >= I_s whenever
     sensor s reaches actuator a without crossing a delay *)
  List.iter
    (fun (sensor, i_s) ->
      if Float.is_finite i_s then
        let reach = reachable algorithm sensor in
        List.iter
          (fun (actuator, o_a) ->
            if Hashtbl.mem reach actuator && Float.is_finite o_a && o_a +. eps < i_s then
              emit
                (Diag.error ~rule:"TEMP003" ~artifact ~location:(op_n actuator)
                   (Printf.sprintf
                      "actuation of %S at %g precedes the sampling of %S at %g it depends on"
                      (op_n actuator) o_a (op_n sensor) i_s)
                   ~hint:"the schedule must order sensors before dependent actuators"))
          static.actuation_offsets)
    static.sampling_offsets;
  List.rev !diags

let ids = [ "TEMP001"; "TEMP002"; "TEMP003" ]
