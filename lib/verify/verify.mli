(** Static design-rule checking — the MISRA-style verification stage
    of the lifecycle.

    The paper's argument is that implementation-induced control
    degradation is caught {e at design time}; this subsystem turns the
    scattered construction-time invariants of the toolchain (the
    [Invalid_argument] raises of {!Aaa.Schedule.make},
    {!Dataflow.Graph.connect_data}, ...) plus a set of deeper
    whole-design analyses into one auditable pass producing structured
    {!Diag} diagnostics keyed by the {!Rules} catalogue.

    {!run_all} drives every pass over one {!Lifecycle.Design.t}:
    dataflow graph → extracted algorithm → architecture → mapping →
    adequation schedule (with single-failure failover coverage) →
    static temporal model → generated executive and C sources.  Each
    stage only runs when the previous ones produced no error, so a
    broken diagram yields its graph diagnostics rather than a cascade
    of downstream noise. *)

module Diag = Diag
module Rules = Rules
module Graph_rules = Graph_rules
module Algo_rules = Algo_rules
module Sched_rules = Sched_rules
module Temporal_rules = Temporal_rules
module Cgen_rules = Cgen_rules
module Recovery_rules = Recovery_rules
module Media_rules = Media_rules
module Absint = Absint
module Flow_rules = Flow_rules

val run_all :
  ?architecture:Aaa.Architecture.t ->
  ?durations:Aaa.Durations.t ->
  ?strategy:Aaa.Adequation.strategy ->
  ?pins:(string * string) list ->
  ?failover:bool ->
  ?recovery:Exec.Recovery.policy ->
  ?bus_models:(string * Media.Bus.config) list ->
  ?retry_slack:bool ->
  Lifecycle.Design.t ->
  Diag.t list
(** All passes over one design, in lifecycle order.

    Defaults: [architecture] is {!Aaa.Architecture.single}[ ()];
    [durations] declares every extracted operation on every operator
    with a uniform WCET of [ts / (4 · op count)] (a platform that
    comfortably fits the period, so structural findings are not
    drowned by capacity ones); [failover] (default [true]) controls
    the SCHED010 coverage analysis on multi-operator architectures.
    With [recovery], the policy is checked against the adequation
    schedule ({!Recovery_rules}, REC001–REC006; [bus_models] prices
    each retry attempt at its media WCRT).  With [bus_models], the
    shared-bus network models are audited against the adequation
    schedule ({!Media_rules}, MEDIA001–MEDIA005: utilization bound,
    identifier uniqueness, worst-case frame response times vs the
    consumers' read offsets).  With [retry_slack] (default [false])
    and a retransmitting [recovery] policy, the adequation schedule is
    first retimed through {!Aaa.Schedule.insert_slack} sized by
    {!Exec.Recovery.worst_case_retry_time} — auditing the schedule as
    it would actually deploy, so REC005 stays silent when the reserved
    windows fit.

    Never raises: failures of the toolchain itself (diagram build,
    extraction, adequation) are reported as diagnostics — with their
    rule identifier when the raise message carries a ["[RULE]"]
    prefix, as VER001 otherwise.

    On a structurally sound graph the value-flow pass ({!Flow_rules},
    FLOW001–FLOW008) runs over the inferred {!Absint} signal ranges;
    when no durations table is given, the assumed-WCET substitution is
    reported as a VER002 info. *)

val run_app :
  ?strategy:Aaa.Adequation.strategy ->
  ?failover:bool ->
  ?recovery:Exec.Recovery.policy ->
  ?bus_models:(string * Media.Bus.config) list ->
  ?retry_slack:bool ->
  Aaa.Sdx.t ->
  Diag.t list
(** The SynDEx-side passes (algorithm → architecture → mapping →
    adequation → schedule, temporal model, executive) over a parsed
    [.sdx] application — {!run_all} minus the dataflow stages, for
    designs that exist only as algorithm graphs.  Never raises. *)

val markdown_section : ?title:string -> Diag.t list -> string
(** A markdown section (default title ["Static verification"]) with
    the severity summary and one bullet per diagnostic — the [?lint]
    section of {!Lifecycle.Report.markdown}. *)
