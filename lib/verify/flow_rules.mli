(** Value-flow design rules (the FLOW family): checks of the interval
    bounds inferred by {!Absint} against the constraints blocks
    declare — domain guards (FLOW001 division, FLOW006 sqrt/log),
    machine formats (FLOW002 overflow, FLOW008 quantization error),
    unbounded feedback loops (FLOW003), dead or constant outputs
    (FLOW004), permanently active saturations (FLOW005) and escaping
    initial conditions (FLOW007). *)

val ids : string list
(** The rule identifiers this pass can raise. *)

val check :
  ?probes:(string * (Dataflow.Graph.block_id * int)) list ->
  ?result:Absint.t ->
  Dataflow.Graph.t ->
  Absint.t * Diag.t list
(** Runs every FLOW rule.  [probes] marks output ports as observed so
    FLOW004 does not flag recorded signals; [result] reuses an
    existing analysis instead of running {!Absint.analyze} again. *)
