module Algorithm = Aaa.Algorithm
module Architecture = Aaa.Architecture
module Schedule = Aaa.Schedule

let artifact = "media"
let eps = 1e-9

(* one frame competing on a bus: a schedule transfer (period = the
   algorithm period) or a background stream (period = its own) *)
type frame = {
  f_ident : int;
  f_time : float;  (* bus occupancy of one attempt *)
  f_period : float;
  f_what : string;  (* for messages *)
}

let schedule_frames sched ~medium =
  let alg = sched.Schedule.algorithm in
  List.filter_map
    (fun (c : Schedule.comm_slot) ->
      if c.Schedule.cm_medium <> medium then None
      else
        Some
          ( c,
            {
              f_ident = Media.Bus.slot_identifier c;
              f_time = c.Schedule.cm_duration;
              f_period = Algorithm.period alg;
              f_what =
                Printf.sprintf "transfer %S -> %S (hop %d)"
                  (Algorithm.op_name alg (fst c.Schedule.cm_src))
                  (Algorithm.op_name alg (fst c.Schedule.cm_dst))
                  c.Schedule.cm_hop;
            } ))
    sched.Schedule.comm

let stream_frames (cfg : Media.Bus.config) =
  List.map
    (fun (s : Media.Load.stream) ->
      {
        f_ident = s.Media.Load.l_ident;
        f_time = Media.Bus.frame_time cfg ~words:s.Media.Load.l_words;
        f_period = s.Media.Load.l_period;
        f_what =
          Printf.sprintf "background stream id %d on node %d" s.Media.Load.l_ident
            s.Media.Load.l_node;
      })
    cfg.Media.Bus.b_load

(* classic non-preemptive fixed-priority response time: the longest
   lower-priority attempt blocks, higher-priority frames interfere —
   w = B + Σ_{hp} ceil((w + ε)/T_j)·C_j, R = w + C.  Returns None when
   the fixed point diverges (overload). *)
let wcrt ~blocking ~hp ~own ~horizon =
  let rec fix w iters =
    if iters > 256 || w > horizon then None
    else begin
      let w' =
        List.fold_left
          (fun acc f -> acc +. (Float.of_int (int_of_float ((w +. eps) /. f.f_period) + 1) *. f.f_time))
          blocking hp
      in
      if Float.abs (w' -. w) <= eps then Some (w' +. own) else fix w' (iters + 1)
    end
  in
  fix blocking 0

(* worst-case response time of one attempt of [c] on [medium] under
   the schedule's other transfers plus the model's background load —
   the per-attempt duration the REC006 retry-window check must assume
   on a contended bus *)
let frame_wcrt ~schedule ~medium (cfg : Media.Bus.config) (c : Schedule.comm_slot) =
  let sframes = schedule_frames schedule ~medium in
  let mine = List.find_opt (fun (c', _) -> c' = c) sframes in
  let others =
    List.filter_map (fun (c', f) -> if c' = c then None else Some f) sframes
    @ stream_frames cfg
  in
  match mine with
  | None -> None
  | Some (_, f) ->
      let blocking =
        List.fold_left
          (fun acc f' -> if f'.f_ident >= f.f_ident then Float.max acc f'.f_time else acc)
          0. others
      in
      let hp = List.filter (fun f' -> f'.f_ident < f.f_ident) others in
      let horizon = 100. *. Algorithm.period schedule.Schedule.algorithm in
      wcrt ~blocking ~hp ~own:f.f_time ~horizon

(* planned availability of a transfer's payload and the instant its
   consumer reads it: hop 0 departs when the producer's computation
   ends; hop h feeds hop h+1's planned start, the final hop feeds the
   destination operation's planned start *)
let release_and_deadline sched (c : Schedule.comm_slot) =
  let release =
    if c.Schedule.cm_hop = 0 then
      match
        List.find_opt
          (fun (s : Schedule.comp_slot) -> s.Schedule.cs_op = fst c.Schedule.cm_src)
          sched.Schedule.comp
      with
      | Some s -> s.Schedule.cs_start +. s.Schedule.cs_duration
      | None -> c.Schedule.cm_start
    else c.Schedule.cm_start
  in
  let next_hop =
    List.find_opt
      (fun (c' : Schedule.comm_slot) ->
        c'.Schedule.cm_src = c.Schedule.cm_src
        && c'.Schedule.cm_dst = c.Schedule.cm_dst
        && c'.Schedule.cm_hop = c.Schedule.cm_hop + 1)
      sched.Schedule.comm
  in
  let deadline =
    match next_hop with
    | Some c' -> Some c'.Schedule.cm_start
    | None ->
        Option.map
          (fun (s : Schedule.comp_slot) -> s.Schedule.cs_start)
          (List.find_opt
             (fun (s : Schedule.comp_slot) ->
               s.Schedule.cs_op = fst c.Schedule.cm_dst)
             sched.Schedule.comp)
  in
  (release, deadline)

let check ?(util_bound = 0.8) ~schedule models =
  let sched = schedule in
  let arch = sched.Schedule.architecture in
  let period = Algorithm.period sched.Schedule.algorithm in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun (name, (cfg : Media.Bus.config)) ->
      match Architecture.find_medium arch name with
      | None ->
          emit
            (Diag.error ~rule:"MEDIA004" ~artifact ~location:name
               (Printf.sprintf "bus model %S names no medium of architecture %S" name
                  (Architecture.name arch))
               ~hint:"attach the model to a medium the architecture declares")
      | Some medium when Architecture.medium_kind arch medium <> Architecture.Bus ->
          emit
            (Diag.error ~rule:"MEDIA004" ~artifact ~location:name
               (Printf.sprintf "medium %S is a point-to-point link, not a shared bus"
                  name)
               ~hint:"bus models only apply to Bus media")
      | Some medium -> (
          match Media.Bus.validate cfg with
          | exception Invalid_argument msg ->
              emit (Diag.of_invalid_arg ~artifact ~location:name msg)
          | () ->
              let sframes = schedule_frames sched ~medium in
              let frames = List.map snd sframes @ stream_frames cfg in
              (* utilization: each frame's rate while it is active —
                 the worst-case instantaneous load *)
              let util =
                List.fold_left (fun acc f -> acc +. (f.f_time /. f.f_period)) 0. frames
              in
              let overloaded = util >= 1. -. eps in
              if overloaded then
                emit
                  (Diag.error ~rule:"MEDIA001" ~artifact ~location:name
                     (Printf.sprintf
                        "bus %S is overloaded: utilization %.2f >= 1 (schedule + background)"
                        name util)
                     ~hint:
                       "shed background load, shorten frames or raise the bus bit-rate")
              else if util > util_bound then
                emit
                  (Diag.warning ~rule:"MEDIA002" ~artifact ~location:name
                     (Printf.sprintf "bus %S utilization %.2f exceeds the %.2f bound"
                        name util util_bound));
              (* identifier uniqueness: equal identifiers arbitrate by
                 node index — deterministic, but priorities stop being
                 meaningful *)
              let seen = Hashtbl.create 16 in
              List.iter
                (fun f ->
                  match Hashtbl.find_opt seen f.f_ident with
                  | Some other ->
                      emit
                        (Diag.warning ~rule:"MEDIA003" ~artifact ~location:name
                           (Printf.sprintf "duplicate frame identifier %d on %S: %s and %s"
                              f.f_ident name other f.f_what)
                           ~hint:"give every frame on one bus a unique identifier")
                  | None -> Hashtbl.replace seen f.f_ident f.f_what)
                frames;
              (* worst-case response time of every schedule frame vs the
                 instant its consumer reads it *)
              if not overloaded then
                List.iter
                  (fun ((c : Schedule.comm_slot), f) ->
                    let release, deadline = release_and_deadline sched c in
                    match deadline with
                    | None -> ()
                    | Some deadline ->
                        let blocking =
                          List.fold_left
                            (fun acc f' ->
                              if f'.f_ident >= f.f_ident && f' != f then
                                Float.max acc f'.f_time
                              else acc)
                            0. frames
                        in
                        let hp =
                          List.filter (fun f' -> f'.f_ident < f.f_ident) frames
                        in
                        let horizon = 100. *. period in
                        let slack = deadline -. release in
                        (match wcrt ~blocking ~hp ~own:f.f_time ~horizon with
                        | None ->
                            emit
                              (Diag.warning ~rule:"MEDIA005" ~artifact ~location:name
                                 (Printf.sprintf
                                    "%s on %S: response-time analysis diverges under the declared load"
                                    f.f_what name))
                        | Some r ->
                            if r > slack +. eps then
                              emit
                                (Diag.warning ~rule:"MEDIA005" ~artifact ~location:name
                                   (Printf.sprintf
                                      "%s on %S: worst-case response %.6g s exceeds the %.6g s to its consumer's read offset"
                                      f.f_what name r slack)
                                   ~hint:
                                     "lower the frame's identifier, shed interfering load or move the consumer's read later")))
                  sframes))
    models;
  List.rev !diags

let ids = [ "MEDIA001"; "MEDIA002"; "MEDIA003"; "MEDIA004"; "MEDIA005" ]
