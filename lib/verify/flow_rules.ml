(* Value-flow design rules over the inferred signal ranges — the
   FLOW family.  Every rule compares the sound interval bounds from
   {!Absint} against a declared constraint (guard, machine format,
   clamp, initial condition), so a silent run means "no reachable
   value can violate the constraint", not "no test hit it". *)

module Graph = Dataflow.Graph
module Block = Dataflow.Block
module I = Dataflow.Interval

let artifact = "dataflow"

let ids =
  [
    "FLOW001";
    "FLOW002";
    "FLOW003";
    "FLOW004";
    "FLOW005";
    "FLOW006";
    "FLOW007";
    "FLOW008";
  ]

let loc (b : Block.t) port = Printf.sprintf "%s.%d" b.Block.name port

(* FLOW001 / FLOW006: input-domain guards (division, sqrt, log) *)
let guard_rules result g =
  List.concat_map
    (fun id ->
      let b = Graph.block g id in
      List.filter_map
        (fun guard ->
          let check port rule violated what hint =
            let iv = Absint.input_range result (id, port) in
            if violated iv then
              Some
                (Diag.warning ~rule ~artifact ~location:(loc b port)
                   (Printf.sprintf "%s of block %S may be %s: inferred range %s" what
                      b.Block.name
                      (match rule with "FLOW001" -> "zero" | _ -> "outside the domain")
                      (I.to_string iv))
                   ~hint)
            else None
          in
          match guard with
          | Block.Nonzero port ->
              check port "FLOW001"
                (fun iv -> I.contains iv 0.)
                "divisor input"
                "bound the divisor away from zero (offset, clamp or guard upstream)"
          | Block.Nonnegative port ->
              check port "FLOW006"
                (fun iv -> iv.I.lo < 0.)
                "sqrt argument"
                "clamp or rectify the argument so it stays non-negative"
          | Block.Positive port ->
              check port "FLOW006"
                (fun iv -> iv.I.lo <= 0.)
                "log argument"
                "bound the argument strictly above zero")
        b.Block.guards)
    (Graph.block_ids g)

(* FLOW002 / FLOW008: declared machine formats *)
let format_rules result g =
  List.concat_map
    (fun id ->
      let b = Graph.block g id in
      match b.Block.machine with
      | None -> []
      | Some { format; tolerance } ->
          let repr = Block.format_range format in
          List.concat_map
            (fun port ->
              let iv = Absint.range result (id, port) in
              let overflow =
                if not (I.subset iv repr) then
                  [
                    Diag.warning ~rule:"FLOW002" ~artifact ~location:(loc b port)
                      (Printf.sprintf
                         "output of %S may overflow its machine format: inferred %s, \
                          representable %s"
                         b.Block.name (I.to_string iv) (I.to_string repr))
                      ~hint:
                        "widen the format, rescale the signal or saturate before the \
                         conversion";
                  ]
                else []
              in
              let quant =
                match tolerance with
                | Some tol when Block.format_quantum format iv > tol ->
                    [
                      Diag.warning ~rule:"FLOW008" ~artifact ~location:(loc b port)
                        (Printf.sprintf
                           "quantization error of %S exceeds its tolerance: worst-case \
                            %.3g > %.3g over %s"
                           b.Block.name
                           (Block.format_quantum format iv)
                           tol (I.to_string iv))
                        ~hint:"add fractional bits or relax the stated tolerance";
                    ]
                | _ -> []
              in
              overflow @ quant)
            (List.init (Array.length b.Block.out_widths) Fun.id))
    (Graph.block_ids g)

(* strongly connected components of the data-link graph (iterative
   Tarjan), as int lists *)
let sccs g =
  let n = Graph.block_count g in
  let succs = Array.make n [] in
  List.iter
    (fun ((sb, _), (db, _)) ->
      let sb = (sb : Graph.block_id :> int) and db = (db : Graph.block_id :> int) in
      succs.(sb) <- db :: succs.(sb))
    (Graph.data_links g);
  let index = Array.make n (-1) and lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  let self_loop v = List.mem v succs.(v) in
  List.filter (fun c -> List.length c > 1 || self_loop (List.hd c)) !components

(* FLOW003: a feedback loop whose abstract semantics are fully known
   yet whose fixpoint is unbounded — the loop genuinely diverges (or
   nothing in it limits growth), as opposed to loops through opaque
   blocks where top merely reflects ignorance *)
let feedback_rules result g =
  List.filter_map
    (fun component ->
      let blocks = List.map (fun i -> Graph.block g (Graph.id_of_int g i)) component in
      let all_known =
        List.for_all
          (fun (b : Block.t) ->
            match b.Block.transfer with Block.Opaque -> false | _ -> true)
          blocks
      in
      let unbounded =
        List.exists
          (fun i ->
            let id = Graph.id_of_int g i in
            let b = Graph.block g id in
            List.exists
              (fun p -> not (I.bounded (Absint.range result (id, p))))
              (List.init (Array.length b.Block.out_widths) Fun.id))
          component
      in
      if all_known && unbounded then
        let names = String.concat ", " (List.map (fun b -> b.Block.name) blocks) in
        Some
          (Diag.warning ~rule:"FLOW003" ~artifact ~location:names
             (Printf.sprintf "feedback loop through %s has no finite signal bound" names)
             ~hint:
               "reduce the loop gain below one or insert a saturation to bound the \
                accumulated signal")
      else None)
    (sccs g)

(* FLOW004: outputs nobody reads and blocks that compute a constant *)
let dead_rules ?(probes = []) result g =
  let consumed = Hashtbl.create 64 in
  List.iter
    (fun (((sb : Graph.block_id), sp), _) ->
      Hashtbl.replace consumed ((sb :> int), sp) ())
    (Graph.data_links g);
  List.iter
    (fun (_, ((id : Graph.block_id), port)) -> Hashtbl.replace consumed ((id :> int), port) ())
    probes;
  List.concat_map
    (fun id ->
      let b = Graph.block g id in
      let nports = Array.length b.Block.out_widths in
      let dead =
        List.filter_map
          (fun p ->
            if Hashtbl.mem consumed ((id : Graph.block_id :> int), p) then None
            else
              Some
                (Diag.info ~rule:"FLOW004" ~artifact ~location:(loc b p)
                   (Printf.sprintf "output %s is never consumed nor probed" (loc b p))
                   ~hint:"wire it, probe it, or drop the block"))
          (List.init nports Fun.id)
      in
      let constant =
        let is_static =
          match b.Block.transfer with Block.Static _ -> true | _ -> false
        in
        if
          Array.length b.Block.in_widths > 0
          && (not is_static)
          && nports > 0
          && List.for_all
               (fun p ->
                 let iv = Absint.range result (id, p) in
                 I.is_point iv && I.bounded iv)
               (List.init nports Fun.id)
        then
          [
            Diag.info ~rule:"FLOW004" ~artifact ~location:b.Block.name
              (Printf.sprintf "block %S computes a constant despite having inputs"
                 b.Block.name)
              ~hint:"replace it with a constant source or check its wiring";
          ]
        else []
      in
      dead @ constant)
    (Graph.block_ids g)

(* FLOW005: a saturation whose input always sits beyond one bound *)
let clamp_rules result g =
  List.filter_map
    (fun id ->
      let b = Graph.block g id in
      match b.Block.clamp with
      | Some (lo, hi) when Array.length b.Block.in_widths > 0 ->
          let iv = Absint.input_range result (id, 0) in
          let pinned =
            if iv.I.hi <= lo then Some lo else if iv.I.lo >= hi then Some hi else None
          in
          Option.map
            (fun bound ->
              Diag.warning ~rule:"FLOW005" ~artifact ~location:b.Block.name
                (Printf.sprintf
                   "saturation %S is always active: input range %s pins the output at %g"
                   b.Block.name (I.to_string iv) bound)
                ~hint:
                  "the limiter masks the signal entirely — rescale upstream or widen \
                   the limits")
            pinned
      | _ -> None)
    (Graph.block_ids g)

(* FLOW007: a hold/delay whose initial output escapes the range of the
   signal it stores — the transient can reach values steady-state
   analysis of the stored signal would never show *)
let init_rules result g =
  List.concat_map
    (fun id ->
      let b = Graph.block g id in
      match b.Block.transfer with
      | Block.Update { init; tracks_input = true; _ } when Array.length b.Block.in_widths > 0
        ->
          let stored = Absint.input_range result (id, 0) in
          if
            Array.length init > 0
            && (not (I.subset init.(0) stored))
            && I.bounded stored
          then
            [
              Diag.warning ~rule:"FLOW007" ~artifact ~location:b.Block.name
                (Printf.sprintf
                   "initial output %s of %S lies outside the held signal's range %s"
                   (I.to_string init.(0)) b.Block.name (I.to_string stored))
                ~hint:"initialise the hold inside the signal's operating range";
            ]
          else []
      | _ -> [])
    (Graph.block_ids g)

let check ?probes ?result g =
  let result = match result with Some r -> r | None -> Absint.analyze g in
  let diags =
    guard_rules result g @ format_rules result g @ feedback_rules result g
    @ dead_rules ?probes result g @ clamp_rules result g @ init_rules result g
  in
  let diags =
    if Absint.converged result then diags
    else
      Diag.warning ~rule:"FLOW003" ~artifact ~location:"absint"
        "value-flow fixpoint hit its sweep cap; every non-static range was widened to top"
        ~hint:"the graph likely contains a loop with no stateful block"
      :: diags
  in
  (result, diags)
