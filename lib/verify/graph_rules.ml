module Graph = Dataflow.Graph
module Block = Dataflow.Block

let artifact = "dataflow"

let unwired_inputs g =
  List.concat_map
    (fun id ->
      let blk = Graph.block g id in
      List.filter_map
        (fun port ->
          match Graph.data_source g id port with
          | Some _ -> None
          | None ->
              Some
                (Diag.error ~rule:"GRAPH001" ~artifact
                   ~location:(Printf.sprintf "%s.%d" blk.Block.name port)
                   (Printf.sprintf "input port %S.%d is not wired" blk.Block.name port)
                   ~hint:"connect a data source to every regular input port"))
        (List.init (Array.length blk.Block.in_widths) Fun.id))
    (Graph.block_ids g)

(* Kahn over data edges entering feedthrough blocks — the blocks left
   with positive in-degree sit on a delay-free algebraic loop. *)
let algebraic_loops g =
  let ids = Graph.block_ids g in
  let n = Graph.block_count g in
  let indegree = Array.make n 0 and succs = Array.make n [] in
  List.iter
    (fun ((sb, _), (db, _)) ->
      let sb = (sb : Graph.block_id :> int) and db = (db : Graph.block_id :> int) in
      if sb <> db && (Graph.block g (Graph.id_of_int g db)).Block.feedthrough then begin
        succs.(sb) <- db :: succs.(sb);
        indegree.(db) <- indegree.(db) + 1
      end)
    (Graph.data_links g);
  let queue = Queue.create () in
  List.iteri (fun i _ -> if indegree.(i) = 0 then Queue.add i queue) ids;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr visited;
    List.iter
      (fun succ ->
        indegree.(succ) <- indegree.(succ) - 1;
        if indegree.(succ) = 0 then Queue.add succ queue)
      succs.(id)
  done;
  if !visited = n then []
  else
    let stuck =
      List.filter (fun i -> indegree.(i) > 0) (List.init n Fun.id)
      |> List.map (fun i -> (Graph.block g (Graph.id_of_int g i)).Block.name)
    in
    [
      Diag.error ~rule:"GRAPH005" ~artifact
        ~location:(String.concat ", " stuck)
        (Printf.sprintf "delay-free algebraic loop through feedthrough blocks: %s"
           (String.concat ", " stuck))
        ~hint:"break the loop with a unit delay or a non-feedthrough block";
    ]

(* Event reachability: a block is activated when it self-primes
   (initial Self action), when the caller promises a post-build clock
   ([expect_activated]), or when an activated block (or an initial
   Emit) fires one of its event inputs; activation then propagates
   along event links.  Event-driven blocks outside this closure can
   never execute. *)
let unreachable_events ?(expect_activated = []) g =
  let n = Graph.block_count g in
  let activated = Array.make n false in
  let pending = Queue.create () in
  let activate id =
    let i = (id : Graph.block_id :> int) in
    if not activated.(i) then begin
      activated.(i) <- true;
      Queue.add id pending
    end
  in
  List.iter activate expect_activated;
  List.iter
    (fun id ->
      let blk = Graph.block g id in
      List.iter
        (fun action ->
          match action with
          | Block.Self _ -> activate id
          | Block.Emit { port; _ } ->
              List.iter (fun (dst, _) -> activate dst) (Graph.event_listeners g id port)
          | Block.Set_cstate _ -> ())
        blk.Block.initial_actions)
    (Graph.block_ids g);
  while not (Queue.is_empty pending) do
    let id = Queue.pop pending in
    let blk = Graph.block g id in
    for port = 0 to blk.Block.event_outputs - 1 do
      List.iter (fun (dst, _) -> activate dst) (Graph.event_listeners g id port)
    done
  done;
  List.filter_map
    (fun id ->
      let blk = Graph.block g id in
      if blk.Block.event_inputs > 0 && not activated.((id : Graph.block_id :> int)) then
        Some
          (Diag.warning ~rule:"GRAPH006" ~artifact ~location:blk.Block.name
             (Printf.sprintf "event-driven block %S is unreachable from any activation source"
                blk.Block.name)
             ~hint:"wire an event link from a clock or a self-priming block")
      else None)
    (Graph.block_ids g)

(* Two graph nodes sharing one physical block record share its
   closures and state arrays — harmless for pure blocks, aliasing for
   stateful ones. *)
let shared_stateful g =
  let ids = Graph.block_ids g in
  let stateful (b : Block.t) = Array.length b.Block.cstate0 > 0 || b.Block.event_inputs > 0 in
  let rec pairs acc = function
    | [] -> List.rev acc
    | id :: rest ->
        let blk = Graph.block g id in
        let dup =
          stateful blk && List.exists (fun other -> Graph.block g other == blk) rest
        in
        let acc =
          if dup then
            Diag.warning ~rule:"GRAPH007" ~artifact ~location:blk.Block.name
              (Printf.sprintf "stateful block %S is added to the graph more than once"
                 blk.Block.name)
              ~hint:"build a fresh block instance per graph node"
            :: acc
          else acc
        in
        pairs acc rest
  in
  pairs [] ids

let check ?expect_activated g =
  unwired_inputs g @ algebraic_loops g
  @ unreachable_events ?expect_activated g
  @ shared_stateful g

(* the full GRAPH family: 002-004 are raised by the construction
   validators of [Dataflow.Graph] and surface via [Diag.of_invalid_arg] *)
let ids =
  [ "GRAPH001"; "GRAPH002"; "GRAPH003"; "GRAPH004"; "GRAPH005"; "GRAPH006"; "GRAPH007" ]
