module Algorithm = Aaa.Algorithm
module Architecture = Aaa.Architecture
module Durations = Aaa.Durations

let check_algorithm alg =
  let artifact = "algorithm" in
  let unwired =
    List.concat_map
      (fun op ->
        let name = Algorithm.op_name alg op in
        List.filter_map
          (fun port ->
            match Algorithm.dep_source alg op port with
            | Some _ -> None
            | None ->
                Some
                  (Diag.error ~rule:"ALG001" ~artifact
                     ~location:(Printf.sprintf "%s.%d" name port)
                     (Printf.sprintf "input %S.%d is not wired" name port)
                     ~hint:"add the missing dependency with Algorithm.depend"))
          (List.init (Array.length (Algorithm.op_inputs alg op)) Fun.id))
      (Algorithm.ops alg)
  in
  (* Kahn over intra-iteration edges (edges out of Memory operations
     carry previous-iteration values and do not order this one). *)
  let cycles =
    let n = Algorithm.op_count alg in
    let indegree = Array.make n 0 and succs = Array.make n [] in
    List.iter
      (fun (((so : Algorithm.op_id), _), ((dok : Algorithm.op_id), _)) ->
        let so = (so :> int) and dok = (dok :> int) in
        if so <> dok && Algorithm.op_kind alg (List.nth (Algorithm.ops alg) so) <> Algorithm.Memory
        then begin
          succs.(so) <- dok :: succs.(so);
          indegree.(dok) <- indegree.(dok) + 1
        end)
      (Algorithm.dependencies alg);
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      if indegree.(i) = 0 then Queue.add i queue
    done;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr visited;
      List.iter
        (fun succ ->
          indegree.(succ) <- indegree.(succ) - 1;
          if indegree.(succ) = 0 then Queue.add succ queue)
        succs.(i)
    done;
    if !visited = n then []
    else
      let stuck =
        List.filteri (fun i _ -> indegree.(i) > 0) (Algorithm.ops alg)
        |> List.map (Algorithm.op_name alg)
      in
      [
        Diag.error ~rule:"ALG002" ~artifact
          ~location:(String.concat ", " stuck)
          (Printf.sprintf "intra-iteration dependency cycle through %s"
             (String.concat ", " stuck))
          ~hint:"break the cycle with a Memory (delay) operation";
      ]
  in
  let conditions =
    List.filter_map
      (fun op ->
        match Algorithm.op_cond alg op with
        | None -> None
        | Some { Algorithm.var; _ } -> (
            let name = Algorithm.op_name alg op in
            match Algorithm.condition_source alg ~var with
            | None ->
                Some
                  (Diag.error ~rule:"ALG003" ~artifact ~location:name
                     (Printf.sprintf
                        "conditioning variable %S of %S has no declared source" var name)
                     ~hint:"declare it with Algorithm.set_condition_source")
            | Some (src, _) -> (
                match Algorithm.op_cond alg src with
                | Some c when String.equal c.Algorithm.var var ->
                    Some
                      (Diag.error ~rule:"ALG003" ~artifact ~location:name
                         (Printf.sprintf "source of condition %S is conditioned on itself"
                            var))
                | Some _ | None -> None)))
      (Algorithm.ops alg)
    (* one diagnostic per distinct message: several operations
       conditioned on the same missing variable collapse to one each,
       which is fine, but keep them all for per-operation locations *)
  in
  let endpoints =
    let missing kind what =
      if List.length kind = 0 then
        [
          Diag.warning ~rule:"ALG005" ~artifact ~location:(Algorithm.name alg)
            (Printf.sprintf "algorithm %S has no %s operation" (Algorithm.name alg) what)
            ~hint:"a control loop needs at least one sensor and one actuator";
        ]
      else []
    in
    missing (Algorithm.sensors alg) "sensor" @ missing (Algorithm.actuators alg) "actuator"
  in
  unwired @ cycles @ conditions @ endpoints

let check_architecture arch =
  let artifact = "architecture" in
  if Architecture.operator_count arch = 0 then
    [
      Diag.error ~rule:"ARCH001" ~artifact ~location:(Architecture.name arch)
        "architecture has no operator";
    ]
  else begin
    let degenerate =
      List.filter_map
        (fun medium ->
          let endpoints = Architecture.medium_endpoints arch medium in
          if
            Architecture.medium_kind arch medium = Architecture.Point_to_point
            && List.length endpoints <> 2
          then
            Some
              (Diag.error ~rule:"ARCH002" ~artifact
                 ~location:(Architecture.medium_name arch medium)
                 (Printf.sprintf "point-to-point medium %S does not join two operators"
                    (Architecture.medium_name arch medium)))
          else None)
        (Architecture.media arch)
    in
    let connectivity =
      let n = Architecture.operator_count arch in
      if n <= 1 then []
      else begin
        let reached = Array.make n false in
        let rec visit id =
          if not reached.(id) then begin
            reached.(id) <- true;
            List.iter
              (fun medium ->
                let endpoints = Architecture.medium_endpoints arch medium in
                if List.exists (fun (o : Architecture.operator_id) -> (o :> int) = id) endpoints
                then List.iter (fun (o : Architecture.operator_id) -> visit (o :> int)) endpoints)
              (Architecture.media arch)
          end
        in
        visit 0;
        if Array.for_all Fun.id reached then []
        else
          let isolated =
            List.filteri (fun i _ -> not reached.(i)) (Architecture.operators arch)
            |> List.map (Architecture.operator_name arch)
          in
          [
            Diag.error ~rule:"ARCH001" ~artifact
              ~location:(String.concat ", " isolated)
              (Printf.sprintf "operator graph is not connected: %s unreachable from %s"
                 (String.concat ", " isolated)
                 (Architecture.operator_name arch (List.hd (Architecture.operators arch))))
              ~hint:"add a medium joining the disconnected operators";
          ]
      end
    in
    degenerate @ connectivity
  end

let check_mapping ~algorithm ~architecture ~durations =
  let artifact = "mapping" in
  let operators = Architecture.operators architecture in
  let runnable op =
    List.filter
      (fun operator ->
        Durations.can_run durations
          ~op:(Algorithm.op_name algorithm op)
          ~operator:(Architecture.operator_name architecture operator))
      operators
  in
  let period = Algorithm.period algorithm in
  let per_op =
    List.concat_map
      (fun op ->
        let name = Algorithm.op_name algorithm op in
        match runnable op with
        | [] ->
            [
              Diag.error ~rule:"MAP001" ~artifact ~location:name
                (Printf.sprintf "operation %S has no operator able to run it" name)
                ~hint:"declare a WCET for it on at least one operator";
            ]
        | hosts ->
            let wcets =
              List.filter_map
                (fun operator ->
                  Durations.wcet durations ~op:name
                    ~operator:(Architecture.operator_name architecture operator))
                hosts
            in
            let best = List.fold_left Float.min infinity wcets in
            if best > period then
              [
                Diag.warning ~rule:"MAP003" ~artifact ~location:name
                  (Printf.sprintf
                     "operation %S needs at least %g s but the period is %g s" name best
                     period)
                  ~hint:"use a faster operator or relax the period";
              ]
            else [])
      (Algorithm.ops algorithm)
  in
  let routable o1 o2 =
    o1 = o2
    || (try Architecture.routes architecture o1 o2 <> [] with Invalid_argument _ -> false)
  in
  let per_dep =
    List.filter_map
      (fun ((src, sp), (dst, dp)) ->
        let hosts_src = runnable src and hosts_dst = runnable dst in
        if hosts_src = [] || hosts_dst = [] then None (* MAP001 already reported *)
        else if
          List.exists
            (fun o1 -> List.exists (fun o2 -> routable o1 o2) hosts_dst)
            hosts_src
        then None
        else
          let src_n = Algorithm.op_name algorithm src
          and dst_n = Algorithm.op_name algorithm dst in
          Some
            (Diag.error ~rule:"MAP002" ~artifact
               ~location:(Printf.sprintf "%s.%d -> %s.%d" src_n sp dst_n dp)
               (Printf.sprintf
                  "dependency %s.%d -> %s.%d cannot be routed between any pair of operators able to run its endpoints"
                  src_n sp dst_n dp)
               ~hint:"add a medium between the operators or widen the durations table"))
      (Algorithm.dependencies algorithm)
  in
  per_op @ per_dep

(* ALG004 and the DUR family are raised by construction validators
   and surface via [Diag.of_invalid_arg] *)
let ids =
  [
    "ALG001"; "ALG002"; "ALG003"; "ALG004"; "ALG005";
    "ARCH001"; "ARCH002";
    "DUR001"; "DUR002";
    "MAP001"; "MAP002"; "MAP003";
  ]
