(** Design rules for online recovery policies (REC001–REC006).

    A {!Exec.Recovery.policy} is checked {e against the schedule it
    will supervise}: the rules hold the policy's retry and heartbeat
    parameters to the schedule's timing so that recovery configured at
    design time cannot silently break the period or misfire online. *)

val check :
  ?bus_models:(string * Media.Bus.config) list ->
  Exec.Recovery.policy ->
  Aaa.Schedule.t ->
  Diag.t list
(** - [REC001] (error): malformed policy parameters (negative counts,
      times or budgets, backoff factor below 1) — normally unreachable
      when the policy comes from {!Exec.Recovery.make};
    - [REC002] (warning): on some medium, planned traffic plus the
      full retry budget at worst-case backoff and transfer duration
      exceeds the period — recovery can itself cause overruns;
    - [REC003] (warning): the heartbeat timeout is shorter than the
      schedule's latest planned in-iteration completion — a live but
      busy operator can be declared dead (false-positive fail-stop);
    - [REC004] (warning): the heartbeat supervisor is enabled but some
      operator has no failover executive — its fail-stop would be
      confirmed with nowhere to switch;
    - [REC005] (warning): retransmission is enabled but some
      transfer's worst-case retried completion lands after its planned
      read offset — the time-triggered consumer reads the stale value
      (close it with {!Aaa.Schedule.insert_slack});
    - [REC006] (error): a transfer {e declares} a retry window
      ([cm_read] past its completion) that is smaller than the
      worst-case retry chain — each attempt priced at its media
      worst-case response time ({!Media_rules.frame_wcrt}) when
      [bus_models] covers the medium. *)

val ids : string list
(** Every rule identifier this pass can raise. *)
