(** Design rules for online recovery policies (REC001–REC004).

    A {!Exec.Recovery.policy} is checked {e against the schedule it
    will supervise}: the rules hold the policy's retry and heartbeat
    parameters to the schedule's timing so that recovery configured at
    design time cannot silently break the period or misfire online. *)

val check : Exec.Recovery.policy -> Aaa.Schedule.t -> Diag.t list
(** - [REC001] (error): malformed policy parameters (negative counts,
      times or budgets, backoff factor below 1) — normally unreachable
      when the policy comes from {!Exec.Recovery.make};
    - [REC002] (warning): on some medium, planned traffic plus the
      full retry budget at worst-case backoff and transfer duration
      exceeds the period — recovery can itself cause overruns;
    - [REC003] (warning): the heartbeat timeout is shorter than the
      schedule's latest planned in-iteration completion — a live but
      busy operator can be declared dead (false-positive fail-stop);
    - [REC004] (warning): the heartbeat supervisor is enabled but some
      operator has no failover executive — its fail-stop would be
      confirmed with nowhere to switch. *)

val ids : string list
(** Every rule identifier this pass can raise. *)
