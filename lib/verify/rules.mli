(** The design-rule catalogue: every rule identifier the checker can
    emit, with its default severity, the pass that owns it and a short
    title.

    A rule identifier is stable across releases — tests, CI gates and
    suppression lists key on it.  The same identifiers appear as
    ["[RULE]"] prefixes in the [Invalid_argument] messages of the
    construction-time validators ({!Aaa.Schedule.make},
    {!Dataflow.Graph.connect_data}, ...), so the library raises and the
    linter diagnostics are one rule set. *)

type rule = {
  id : string;  (** e.g. ["SCHED003"] *)
  severity : Diag.severity;  (** default severity of a finding *)
  pass : string;  (** owning pass: "graph", "algorithm", "architecture",
      "mapping", "schedule", "temporal", "cgen" or "core" *)
  title : string;  (** one-line meaning *)
}

val all : rule list
(** The full catalogue, grouped by pass, ascending identifiers.
    Identifiers are unique. *)

val find : string -> rule option

val severity_of : string -> Diag.severity
(** Default severity of a rule identifier; [Error] for unknown ones
    (unknown identifiers come from uncatalogued raises, which are
    construction failures). *)

val markdown_table : unit -> string
(** The catalogue as a markdown table (ID, severity, pass, meaning) —
    the source of the ARCHITECTURE.md rule listing. *)
