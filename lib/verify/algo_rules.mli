(** Static checks on the SynDEx-side design artifacts: the algorithm
    graph, the architecture graph and the mapping data (durations)
    relating them — everything the adequation consumes. *)

val check_algorithm : Aaa.Algorithm.t -> Diag.t list
(** Emits ALG001 (unwired input), ALG002 (intra-iteration dependency
    cycle), ALG003 (conditioning variable without a valid source) and
    ALG005 (no sensor or no actuator). *)

val check_architecture : Aaa.Architecture.t -> Diag.t list
(** Emits ARCH001 (no operator / disconnected operator graph) and
    ARCH002 (degenerate media: a point-to-point medium without two
    distinct endpoints). *)

val check_mapping :
  algorithm:Aaa.Algorithm.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  Diag.t list
(** Emits MAP001 (operation with no operator able to run it), MAP002
    (dependency whose producer/consumer placements are never routable)
    and MAP003 (operation whose WCET exceeds the period on every
    operator able to run it). *)

val ids : string list
(** Every rule identifier attributable to this pass, including those
    raised by the construction-time validators of its artifacts. *)
