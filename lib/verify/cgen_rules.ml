module Algorithm = Aaa.Algorithm
module Architecture = Aaa.Architecture
module Schedule = Aaa.Schedule
module Codegen = Aaa.Codegen

let artifact = "cgen"

let describe_comm alg (c : Schedule.comm_slot) =
  Printf.sprintf "%s.%d -> %s%s"
    (Algorithm.op_name alg (fst c.cm_src))
    (snd c.cm_src)
    (Algorithm.op_name alg (fst c.cm_dst))
    (if snd c.cm_dst = -1 then "[cond]" else Printf.sprintf ".%d" (snd c.cm_dst))

(* The send/receive sets Codegen.generate derives from the schedule:
   the producer's operator posts hop 0, the consumer's operator
   receives the hop reaching it. *)
let structural exe =
  let sched = exe.Codegen.schedule in
  let alg = sched.Schedule.algorithm and arch = sched.Schedule.architecture in
  List.concat_map
    (fun operator ->
      let operator_name = Architecture.operator_name arch operator in
      let program =
        match List.assoc_opt operator exe.Codegen.programs with Some p -> p | None -> []
      in
      let missing_program =
        if List.mem_assoc operator exe.Codegen.programs then []
        else
          [
            Diag.error ~rule:"CGEN002" ~artifact ~location:operator_name
              (Printf.sprintf "operator %S has no generated program" operator_name);
          ]
      in
      let expected_sends =
        List.filter
          (fun (c : Schedule.comm_slot) -> c.cm_hop = 0 && c.cm_from = operator)
          sched.Schedule.comm
      in
      let expected_recvs =
        List.filter
          (fun (c : Schedule.comm_slot) ->
            c.cm_to = operator
            && (try Schedule.operator_of sched (fst c.cm_dst) = operator
                with Invalid_argument _ -> false))
          sched.Schedule.comm
      in
      let actual_sends =
        List.filter_map
          (function Codegen.Send c -> Some c | _ -> None)
          program
      in
      let actual_recvs =
        List.filter_map
          (function Codegen.Recv c -> Some c | _ -> None)
          program
      in
      let diff what expected actual =
        let missing = List.filter (fun c -> not (List.mem c actual)) expected in
        let extra = List.filter (fun c -> not (List.mem c expected)) actual in
        List.map
          (fun c ->
            Diag.error ~rule:"CGEN002" ~artifact ~location:operator_name
              (Printf.sprintf "operator %S misses the %s of transfer %s" operator_name
                 what (describe_comm alg c))
              ~hint:"the peer would block forever on this transfer")
          missing
        @ List.map
            (fun c ->
              Diag.error ~rule:"CGEN002" ~artifact ~location:operator_name
                (Printf.sprintf "operator %S has a spurious %s of transfer %s"
                   operator_name what (describe_comm alg c)))
            extra
      in
      missing_program
      @ diff "send" expected_sends actual_sends
      @ diff "receive" expected_recvs actual_recvs)
    (Architecture.operators arch)

let media_order exe =
  let sched = exe.Codegen.schedule in
  let arch = sched.Schedule.architecture in
  List.concat_map
    (fun medium ->
      let medium_name = Architecture.medium_name arch medium in
      let expected = Schedule.on_medium sched medium in
      let actual =
        match List.assoc_opt medium exe.Codegen.media_programs with
        | Some p -> p
        | None -> []
      in
      if actual = expected then []
      else
        [
          Diag.error ~rule:"CGEN003" ~artifact ~location:medium_name
            (Printf.sprintf
               "medium %S carries %d transfer(s) in an order differing from the schedule's \
                total order (%d scheduled)"
               medium_name (List.length actual) (List.length expected))
            ~hint:"media must serve transfers in ascending schedule time";
        ])
    (Architecture.media arch)

(* Walk each program in order and check every read has a producer
   earlier in the sequence: locally computed outputs become available
   at their Exec, remote ones at their Recv; Memory outputs pre-exist
   (previous iteration).  Sends must follow their local producer. *)
let data_order exe =
  let sched = exe.Codegen.schedule in
  let alg = sched.Schedule.algorithm and arch = sched.Schedule.architecture in
  List.concat_map
    (fun (operator, program) ->
      let operator_name = Architecture.operator_name arch operator in
      let local op =
        try Schedule.operator_of sched op = operator with Invalid_argument _ -> false
      in
      let available = Hashtbl.create 32 and diags = ref [] in
      let emit d = diags := d :: !diags in
      List.iter
        (fun instr ->
          match instr with
          | Codegen.Wait_period -> ()
          | Codegen.Recv c -> Hashtbl.replace available c.Schedule.cm_src ()
          | Codegen.Send c ->
              let src = fst c.Schedule.cm_src in
              if
                local src
                && Algorithm.op_kind alg src <> Algorithm.Memory
                && not (Hashtbl.mem available c.Schedule.cm_src)
              then
                emit
                  (Diag.error ~rule:"CGEN004" ~artifact ~location:operator_name
                     (Printf.sprintf
                        "operator %S posts transfer %s before executing its producer %S"
                        operator_name (describe_comm alg c)
                        (Algorithm.op_name alg src))
                     ~hint:"a send must follow the execution producing its data")
          | Codegen.Exec op ->
              Array.iteri
                (fun port _ ->
                  match Algorithm.dep_source alg op port with
                  | None -> ()
                  | Some (src, sp) ->
                      if
                        Algorithm.op_kind alg src <> Algorithm.Memory
                        && not (Hashtbl.mem available (src, sp))
                      then
                        emit
                          (Diag.error ~rule:"CGEN004" ~artifact ~location:operator_name
                             (Printf.sprintf
                                "%S runs on %S before its input %s.%d is %s"
                                (Algorithm.op_name alg op) operator_name
                                (Algorithm.op_name alg src) sp
                                (if local src then "computed" else "received"))
                             ~hint:"receives must precede the executions consuming them"))
                (Algorithm.op_inputs alg op);
              Array.iteri
                (fun port _ -> Hashtbl.replace available (op, port) ())
                (Algorithm.op_outputs alg op))
        program;
      List.rev !diags)
    exe.Codegen.programs

(* Lexical audit of the emitted C: every buf_* identifier a file uses
   must be declared by one of its `static double buf_*` lines. *)
let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let buffer_identifiers content =
  let declared = Hashtbl.create 16 and used = Hashtbl.create 16 in
  let n = String.length content in
  let decl_prefix = "static double " in
  let i = ref 0 in
  while !i < n do
    if
      !i + 4 <= n
      && String.sub content !i 4 = "buf_"
      && (!i = 0 || not (is_ident_char content.[!i - 1]))
    then begin
      let j = ref !i in
      while !j < n && is_ident_char content.[!j] do
        incr j
      done;
      let ident = String.sub content !i (!j - !i) in
      let p = String.length decl_prefix in
      if !i >= p && String.sub content (!i - p) p = decl_prefix then
        Hashtbl.replace declared ident ()
      else Hashtbl.replace used ident ();
      i := !j
    end
    else incr i
  done;
  (declared, used)

let emitted_c exe =
  match Aaa.Cgen.emit exe with
  | files ->
      List.concat_map
        (fun (filename, content) ->
          if not (String.length filename > 2 && Filename.check_suffix filename ".c") then
            []
          else begin
            let declared, used = buffer_identifiers content in
            Hashtbl.fold
              (fun ident () acc ->
                if Hashtbl.mem declared ident then acc
                else
                  Diag.error ~rule:"CGEN001" ~artifact ~location:filename
                    (Printf.sprintf "%s references %s without declaring it" filename
                       ident)
                    ~hint:"every used buffer must have a static declaration in the file"
                  :: acc)
              used []
            |> List.sort Diag.compare
          end)
        files
  | exception Invalid_argument msg ->
      [ Diag.of_invalid_arg ~artifact ~location:"emit" msg ]

let check exe = structural exe @ media_order exe @ data_order exe @ emitted_c exe

let ids = [ "CGEN001"; "CGEN002"; "CGEN003"; "CGEN004" ]
