(** Whole-design abstract interpretation over {!Dataflow.Graph}.

    Computes, without executing the design, a sound interval for every
    regular output port: every value the simulator can ever produce on
    that port lies inside the inferred interval.  The analysis is a
    Kleene fixpoint iteration over the {!Dataflow.Block.transfer}
    abstract semantics declared by the block libraries, with
    threshold widening at stateful ([Update]) blocks to force
    termination on feedback loops and two narrowing sweeps to recover
    precision lost to widening.

    Soundness argument, in brief: every transfer function is
    inclusion-monotone and covers the block's concrete step, the
    iteration only ever joins (ascending chain), and widening
    over-approximates the join — so the final map is a post-fixpoint
    of the abstract system and therefore contains every reachable
    concrete valuation.  Blocks with [Opaque] transfer contribute
    {!Dataflow.Interval.top}, which is trivially sound. *)

type t
(** The result of analysing one graph. *)

val analyze : ?max_sweeps:int -> Dataflow.Graph.t -> t
(** Runs the fixpoint.  [max_sweeps] caps the number of full-graph
    sweeps (the default is generous: the widening ladder guarantees
    convergence well below it on any graph whose cycles all pass
    through a stateful or source block, which graph validation
    enforces).  If the cap is hit anyway, all non-static ports are
    forced to {!Dataflow.Interval.top} — still sound — and
    {!converged} reports [false]. *)

val range : t -> Dataflow.Graph.block_id * int -> Dataflow.Interval.t
(** Inferred interval of an output port.  Raises [Invalid_argument] on
    an out-of-range port index. *)

val input_range : t -> Dataflow.Graph.block_id * int -> Dataflow.Interval.t
(** Interval flowing into an input port: the range of the source port
    feeding it, or {!Dataflow.Interval.top} when the port is not
    wired. *)

val ports : t -> (Dataflow.Graph.block_id * int * Dataflow.Interval.t) list
(** All [(block, output-port, interval)] triples, in block order. *)

val iterations : t -> int
(** Number of full-graph sweeps performed (ascending + narrowing). *)

val converged : t -> bool
(** Whether a fixpoint was reached before [max_sweeps]. *)

val markdown_table : t -> string
(** A [| block | port | range |] table of the inferred bounds, for
    design reports. *)
