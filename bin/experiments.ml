(* Experiment runner: regenerates the data behind every figure of the
   paper (the figures are conceptual diagrams; each experiment turns
   one into a measured table) plus the quantitative experiments the
   methodology motivates.  See EXPERIMENTS.md for the recorded
   results.

   Usage:  dune exec bin/experiments.exe -- <experiment|all>        *)

module M = Numerics.Matrix
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module TM = Translator.Temporal_model

let header title =
  Printf.printf "\n================ %s ================\n" title

(* ------------------------------------------------------------------ *)
(* Shared DC-motor PID setup *)

(* Default gains give a snappy loop whose bandwidth approaches the
   Nyquist rate — the regime where I/O latency visibly matters (cf.
   Cervin et al. 2003).  [aggressive] pushes further to exhibit the
   latency-induced instability crossover. *)
let snappy_gains = { Control.Pid.kp = 60.; ki = 80.; kd = 0. }
let aggressive_gains = { Control.Pid.kp = 100.; ki = 150.; kd = 0. }

let dc_design ?(horizon = 10.) ?(gains = snappy_gains) () =
  Lifecycle.Design.pid_loop ~name:"dc_motor"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |] ~gains ~ts:0.05 ~reference:1. ~horizon ()

(* WCETs scaled so that the static I/O latency is [frac]·Ts on one
   processor: fractions of the period per operation *)
let dc_durations ?(operators = [ "P0" ]) ~frac () =
  let ts = 0.05 in
  let d = Dur.create () in
  let set op share =
    List.iter
      (fun operator ->
        Dur.set d ~op ~operator (share *. frac *. ts);
        Dur.set_bcet d ~op ~operator (0.4 *. share *. frac *. ts))
      operators
  in
  set "reference" 0.05;
  set "sample_y" 0.2;
  set "pid" 0.6;
  set "hold_u" 0.15;
  d

let dc_two_proc () = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1" ]

(* ------------------------------------------------------------------ *)
(* fig1: implementation effect on the timing of I/O operations *)

let fig1 () =
  header "fig1: sampling/actuation latencies Ls_j(k), La_j(k)";
  let design = dc_design () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(dc_two_proc ()) ~durations ()
  in
  let trace =
    Lifecycle.Methodology.execute
      ~config:
        {
          Exec.Machine.default_config with
          iterations = 200;
          law = Exec.Timing_law.Uniform;
          durations = Some durations;
        }
      design impl
  in
  let ls = List.hd (Exec.Machine.sampling_latencies trace) in
  let la = List.hd (Exec.Machine.actuation_latencies trace) in
  Printf.printf "%4s %12s %12s   (Ts = %g s, first 15 of %d iterations)\n" "k" "Ls(k)"
    "La(k)" trace.Exec.Machine.period trace.Exec.Machine.iterations;
  for k = 0 to 14 do
    Printf.printf "%4d %12.6f %12.6f\n" k (snd ls).(k) (snd la).(k)
  done;
  let stat name arr =
    Printf.printf "%s: %s\n" name (Numerics.Stats.summary arr)
  in
  stat "Ls" (snd ls);
  stat "La" (snd la);
  Printf.printf "static (WCET) model: Ls = %g, La = %g\n"
    (snd (List.hd (TM.of_schedule impl.Lifecycle.Methodology.schedule).TM.sampling_offsets))
    (snd (List.hd (TM.of_schedule impl.Lifecycle.Methodology.schedule).TM.actuation_offsets))

(* ------------------------------------------------------------------ *)
(* fig2: plant and controller interconnection (stroboscopic model) *)

let fig2 () =
  header "fig2: ideal (stroboscopic) closed-loop simulation";
  let design = dc_design () in
  let e = Lifecycle.Methodology.simulate_ideal design in
  let y = Sim.Engine.probe_component e "y" 0 in
  Printf.printf "t (s)    y(t)\n";
  List.iter
    (fun t_target ->
      (* nearest recorded sample *)
      let best = ref (Float.neg_infinity, Float.nan) in
      Array.iteri
        (fun i t ->
          if Float.abs (t -. t_target) < Float.abs (fst !best -. t_target) then
            best := (t, y.Control.Metrics.values.(i)))
        y.Control.Metrics.times;
      Printf.printf "%-8.2f %.5f\n" (fst !best) (snd !best))
    [ 0.; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Printf.printf "IAE = %.5f, overshoot = %.1f %%, sse = %.5f\n"
    (Control.Metrics.iae ~reference:1. y)
    (100. *. Control.Metrics.overshoot ~reference:1. y)
    (Control.Metrics.steady_state_error ~reference:1. y)

(* ------------------------------------------------------------------ *)
(* fig3: plant + controller + graph of delays *)

let fig3 () =
  header "fig3: co-simulation with the generated graph of delays";
  let design = dc_design () in
  List.iter
    (fun frac ->
      let durations = dc_durations ~frac () in
      let c =
        Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ()) ~durations ()
      in
      Printf.printf
        "latency %.0f %% of Ts: ideal IAE = %.5f, implemented IAE = %.5f (%+.2f %%)\n"
        (frac *. 100.) c.Lifecycle.Methodology.ideal_cost
        c.Lifecycle.Methodology.implemented_cost c.Lifecycle.Methodology.degradation_pct)
    [ 0.2; 0.5; 0.9 ]

(* ------------------------------------------------------------------ *)
(* fig4: sequencing translation *)

let fig4 () =
  header "fig4: sequencing — Event Delay chain reproduces the schedule";
  let design = dc_design () in
  let durations = dc_durations ~frac:0.6 () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(Arch.single ()) ~durations ()
  in
  let built = design.Lifecycle.Design.build () in
  let _ =
    Translator.Cosim.attach_delay_graph ~graph:built.Lifecycle.Design.graph
      ~schedule:impl.Lifecycle.Methodology.schedule
      ~binding:impl.Lifecycle.Methodology.binding ()
  in
  let e = Sim.Engine.create built.Lifecycle.Design.graph in
  Sim.Engine.run ~t_end:0.049 e;
  Printf.printf "%-12s %-22s %-22s\n" "operation" "scheduled completion" "measured event time";
  List.iter
    (fun op ->
      let slot = Sched.slot_of impl.Lifecycle.Methodology.schedule op in
      let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
      let block =
        Translator.Scicos_to_syndex.block_of_op impl.Lifecycle.Methodology.binding op
      in
      let measured =
        match Sim.Engine.activations e ~block with
        | [ t ] -> Printf.sprintf "%.6f" t
        | [] -> "(not event-activated)"
        | l -> Printf.sprintf "%d events" (List.length l)
      in
      Printf.printf "%-12s %-22.6f %-22s\n"
        (Alg.op_name impl.Lifecycle.Methodology.algorithm op)
        static measured)
    (Alg.ops impl.Lifecycle.Methodology.algorithm)

(* ------------------------------------------------------------------ *)
(* conditioned_loop: mode source, cheap/expensive conditioned branches,
   merge, actuator — shared by fig5 and the lint audit *)

let cond_mode_period = 0.5

let conditioned_design () =
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let mode_period = cond_mode_period in
  let build () =
    let g = G.create () in
    let plant = G.add g (C.lti_continuous ~name:"plant" ~x0:[| 0. |]
                           (Control.Plants.first_order ~tau:0.4 ~gain:1.)) in
    let sampler = G.add g (C.sample_hold ~name:"sample_y" 1) in
    G.connect_data g ~src:(plant, 0) ~dst:(sampler, 0);
    (* mode flips with simulation time *)
    let mode_state = ref 0. in
    let mode =
      G.add g
        (Dataflow.Block.make ~name:"mode" ~out_widths:[| 1 |] ~event_inputs:1
           ~on_event:(fun ctx ~port:_ ->
             mode_state :=
               (if Float.rem ctx.Dataflow.Block.time (2. *. mode_period) < mode_period then 0.
                else 1.);
             [])
           ~reset:(fun () -> mode_state := 0.)
           (fun _ -> [| [| !mode_state |] |]))
    in
    let branch name =
      let held = ref 0. in
      G.add g
        (Dataflow.Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~event_inputs:1
           ~on_event:(fun ctx ~port:_ ->
             held := 2. *. (1. -. ctx.Dataflow.Block.inputs.(0).(0));
             [])
           ~reset:(fun () -> held := 0.)
           (fun _ -> [| [| !held |] |]))
    in
    let cheap = branch "cheap" in
    let costly = branch "costly" in
    G.connect_data g ~src:(sampler, 0) ~dst:(cheap, 0);
    G.connect_data g ~src:(sampler, 0) ~dst:(costly, 0);
    let merge =
      let held = ref 0. in
      G.add g
        (Dataflow.Block.make ~name:"merge" ~in_widths:[| 1; 1; 1 |] ~out_widths:[| 1 |]
           ~event_inputs:1
           ~on_event:(fun ctx ~port:_ ->
             held :=
               (if ctx.Dataflow.Block.inputs.(0).(0) >= 0.5 then
                  ctx.Dataflow.Block.inputs.(2).(0)
                else ctx.Dataflow.Block.inputs.(1).(0));
             [])
           ~reset:(fun () -> held := 0.)
           (fun _ -> [| [| !held |] |]))
    in
    G.connect_data g ~src:(mode, 0) ~dst:(merge, 0);
    G.connect_data g ~src:(cheap, 0) ~dst:(merge, 1);
    G.connect_data g ~src:(costly, 0) ~dst:(merge, 2);
    let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
    G.connect_data g ~src:(merge, 0) ~dst:(hold, 0);
    G.connect_data g ~src:(hold, 0) ~dst:(plant, 0);
    {
      Lifecycle.Design.graph = g;
      clocked = [ sampler; mode; cheap; costly; merge; hold ];
      members = [ sampler; mode; cheap; costly; merge; hold ];
      memories = [];
      probes = [ ("y", (plant, 0)) ];
      condition_feed = Some (fun _ -> (mode, 0));
      customize_algorithm =
        Some
          (fun algorithm binding ->
            Translator.Scicos_to_syndex.declare_condition binding ~algorithm ~var:"mode"
              ~source:(mode, 0)
              ~ops:[ (cheap, 0); (costly, 1) ]);
    }
  in
  let design =
    Lifecycle.Design.make ~name:"conditioned_loop" ~ts:0.05 ~horizon:4.
      ~condition_runtime:(fun ~iteration ~var:_ ->
        if Float.rem (float_of_int iteration *. 0.05) (2. *. mode_period) < mode_period then 0
        else 1)
      ~cost:(fun e -> Control.Metrics.iae ~reference:1. (Sim.Engine.probe_component e "y" 0))
      build
  in
  let d = Dur.create () in
  let set op wcet = Dur.set d ~op ~operator:"P0" wcet in
  set "sample_y" 0.002;
  set "mode" 0.001;
  set "cheap" 0.002;
  set "costly" 0.030;
  set "merge" 0.001;
  set "hold_u" 0.002;
  (design, d)

(* ------------------------------------------------------------------ *)
(* fig5: conditioning translation *)

let fig5 () =
  header "fig5: conditioning — branch-dependent latency via Event Select";
  let design, d = conditioned_design () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(Arch.single ()) ~durations:d ()
  in
  let e = Lifecycle.Methodology.simulate_implemented design impl in
  let built = design.Lifecycle.Design.build () in
  let hold_block = List.nth built.Lifecycle.Design.clocked 5 in
  let la = Translator.Cosim.measured_latencies e ~block:hold_block ~period:0.05 in
  Printf.printf "actuation latency per iteration (mode flips every %.1f s):\n"
    cond_mode_period;
  Printf.printf "%4s %10s\n" "k" "La(k)";
  Array.iteri (fun k l -> if k < 24 then Printf.printf "%4d %10.4f\n" k l) la;
  Printf.printf "two latency levels = two conditional branches: %s\n"
    (Numerics.Stats.summary la)

(* ------------------------------------------------------------------ *)
(* sync: the Synchronization block construction *)

let sync () =
  header "sync: inter-processor synchronisation preserves the total order";
  let design = dc_design () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () in
  (* force the pid away from the sensor's processor *)
  let impl =
    Lifecycle.Methodology.implement
      ~pins:[ ("sample_y", "P0"); ("pid", "P1"); ("hold_u", "P0") ]
      ~design ~architecture:(dc_two_proc ()) ~durations ()
  in
  Printf.printf "%s\n" (Aaa.Gantt.render impl.Lifecycle.Methodology.schedule);
  let e = Lifecycle.Methodology.simulate_implemented design impl in
  let built = design.Lifecycle.Design.build () in
  let pid_block = List.nth built.Lifecycle.Design.clocked 1 in
  let inst = Translator.Cosim.measured_instants e ~block:pid_block in
  let op_pid = Option.get (Alg.find_op impl.Lifecycle.Methodology.algorithm "pid") in
  let slot = Sched.slot_of impl.Lifecycle.Methodology.schedule op_pid in
  Printf.printf "pid slot completion (static): %.6f; first co-simulated activations:"
    (slot.Sched.cs_start +. slot.Sched.cs_duration);
  Array.iteri (fun i t -> if i < 3 then Printf.printf " %.6f" t) inst;
  Printf.printf "\n";
  (* robustness: executive under strong jitter *)
  let trace =
    Lifecycle.Methodology.execute
      ~config:
        {
          Exec.Machine.default_config with
          iterations = 500;
          comm_jitter_frac = 0.5;
          law = Exec.Timing_law.Uniform;
        }
      design impl
  in
  Printf.printf
    "executive under 50%% comm jitter for 500 iterations: deadlock-free = true, order conformant = %b\n"
    (Exec.Machine.order_conformant trace)

(* ------------------------------------------------------------------ *)
(* latency sweep (Cervin-style cost-vs-latency curve) *)

let latency_sweep () =
  header "latency sweep: control cost vs I/O latency (fraction of Ts)";
  let snappy = dc_design () in
  let aggressive = dc_design ~gains:aggressive_gains () in
  Printf.printf "%-10s | %-12s %-10s | %-12s %-10s\n" "latency/Ts" "snappy IAE" "degr %"
    "aggr. IAE" "degr %";
  let ideal design =
    (Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
       ~durations:(dc_durations ~frac:0.01 ()) ())
      .Lifecycle.Methodology.ideal_cost
  in
  let ideal_snappy = ideal snappy and ideal_aggr = ideal aggressive in
  List.iter
    (fun frac ->
      let durations = dc_durations ~frac () in
      let implemented design =
        (Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ()) ~durations ())
          .Lifecycle.Methodology.implemented_cost
      in
      let cs = implemented snappy and ca = implemented aggressive in
      Printf.printf "%-10.2f | %-12.5f %-10.1f | %-12.4g %-10.3g\n" frac cs
        ((cs -. ideal_snappy) /. ideal_snappy *. 100.)
        ca
        ((ca -. ideal_aggr) /. ideal_aggr *. 100.))
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.98 ];
  Printf.printf
    "(the aggressive design crosses into instability as latency nears Ts —\n\
    \ the crossover the methodology detects before any code runs)\n"

(* ------------------------------------------------------------------ *)
(* jitter sweep *)

let jitter_sweep () =
  header "jitter sweep: control cost vs execution-time variability";
  let design = dc_design () in
  let durations = dc_durations ~frac:0.9 () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(Arch.single ()) ~durations ()
  in
  (* two views: (a) shrinking BCET lowers the *mean* latency (costs
     improve); (b) at a fixed [0.2·WCET, WCET] interval, widening the
     spread around a constant mean isolates pure jitter *)
  Printf.printf "(a) mean-latency effect — uniform law over [bcet, wcet]\n";
  Printf.printf "%-12s %-12s\n" "bcet/wcet" "impl IAE";
  List.iter
    (fun bcet_frac ->
      let mode =
        if bcet_frac >= 1. then Translator.Delay_graph.Static_wcet
        else
          Translator.Delay_graph.Jittered
            { law = Exec.Timing_law.Uniform; bcet_frac; seed = 17 }
      in
      let e = Lifecycle.Methodology.simulate_implemented ~mode design impl in
      Printf.printf "%-12.2f %-12.5f\n" bcet_frac (design.Lifecycle.Design.cost e))
    [ 1.0; 0.8; 0.6; 0.4; 0.2 ];
  Printf.printf "\n(b) pure-jitter effect — gaussian, constant mean 0.6 WCET\n";
  Printf.printf "%-12s %-12s\n" "sigma/span" "impl IAE";
  List.iter
    (fun sigma_frac ->
      let mode =
        Translator.Delay_graph.Jittered
          {
            law = Exec.Timing_law.Gaussian { mean_frac = 0.5; sigma_frac };
            bcet_frac = 0.2;
            seed = 17;
          }
      in
      let e = Lifecycle.Methodology.simulate_implemented ~mode design impl in
      Printf.printf "%-12.2f %-12.5f\n" sigma_frac (design.Lifecycle.Design.cost e))
    [ 0.01; 0.1; 0.2; 0.4 ]

(* ------------------------------------------------------------------ *)
(* adequation sweep *)

let adequation_sweep () =
  header "adequation: makespan vs processors; ranking strategies and refinement";
  Printf.printf "%-8s %-12s %-16s %-12s\n" "#procs" "pressure" "earliest-finish" "refined";
  List.iter
    (fun n ->
      let procs = List.init n (fun i -> Printf.sprintf "P%d" i) in
      let arch =
        if n = 1 then Arch.single ()
        else Arch.bus_topology ~latency:0.005 ~time_per_word:0.002 procs
      in
      let procs = if n = 1 then [ "P0" ] else procs in
      let alg, d = Aaa.Workloads.fork_join ~branches:8 ~operators:procs () in
      let run strategy =
        Aaa.Adequation.run ~strategy ~algorithm:alg ~architecture:arch ~durations:d ()
      in
      let pressure = run Aaa.Adequation.Pressure in
      let eft = run Aaa.Adequation.Earliest_finish in
      let refined =
        Aaa.Adequation.refine ~iterations:150 ~algorithm:alg ~architecture:arch
          ~durations:d ~initial:pressure ()
      in
      Printf.printf "%-8d %-12.4f %-16.4f %-12.4f\n" n pressure.Sched.makespan
        eft.Sched.makespan refined.Sched.makespan)
    [ 1; 2; 4; 8 ];
  (* heterogeneous random workloads: where greedy ranking leaves room
     for the local-search refinement *)
  Printf.printf "\nrandom layered workloads on 3 processors (pressure vs refined):\n";
  Printf.printf "%-8s %-12s %-12s %-10s\n" "seed" "pressure" "refined" "gain %";
  List.iter
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let procs = [ "P0"; "P1"; "P2" ] in
      let alg, d =
        Aaa.Workloads.layered ~rng ~layers:5 ~width:4 ~wcet_min:0.001 ~wcet_max:0.05
          ~operators:procs ()
      in
      let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 procs in
      let initial = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations:d () in
      let refined =
        Aaa.Adequation.refine ~iterations:250 ~seed ~algorithm:alg ~architecture:arch
          ~durations:d ~initial ()
      in
      Printf.printf "%-8d %-12.4f %-12.4f %-10.1f\n" seed initial.Sched.makespan
        refined.Sched.makespan
        (100. *. (initial.Sched.makespan -. refined.Sched.makespan) /. initial.Sched.makespan))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* windup: actuator saturation x integrator windup x latency *)

let windup () =
  header "windup: actuator saturation, integrator windup and latency interact";
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let u_limit = 12.0 in
  let make_design ~anti_windup =
    let build () =
      let g = G.create () in
      let plant =
        G.add g
          (C.lti_continuous ~name:"plant" ~x0:[| 0.; 0. |]
             (Control.Plants.dc_motor Control.Plants.default_dc_motor))
      in
      let reference = G.add g (C.constant ~name:"reference" [| 1. |]) in
      let sampler = G.add g (C.sample_hold ~name:"sample_y" 1) in
      let pid_block =
        let windup = if anti_windup then Some u_limit else None in
        G.add g
          (C.pid ~name:"pid" (Control.Pid.create ?windup ~gains:snappy_gains ~ts:0.05 ()))
      in
      let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
      (* the physical actuator saturates outside the control law *)
      let sat = G.add g (C.saturation ~name:"actuator" ~lo:(-.u_limit) ~hi:u_limit ()) in
      G.connect_data g ~src:(plant, 0) ~dst:(sampler, 0);
      G.connect_data g ~src:(reference, 0) ~dst:(pid_block, 0);
      G.connect_data g ~src:(sampler, 0) ~dst:(pid_block, 1);
      G.connect_data g ~src:(pid_block, 0) ~dst:(hold, 0);
      G.connect_data g ~src:(hold, 0) ~dst:(sat, 0);
      G.connect_data g ~src:(sat, 0) ~dst:(plant, 0);
      {
        Lifecycle.Design.graph = g;
        clocked = [ sampler; pid_block; hold ];
        members = [ reference; sampler; pid_block; hold ];
        memories = [];
        probes = [ ("y", (plant, 0)); ("u", (sat, 0)) ];
        condition_feed = None;
        customize_algorithm = None;
      }
    in
    Lifecycle.Design.make
      ~name:(if anti_windup then "dc_antiwindup" else "dc_windup")
      ~ts:0.05 ~horizon:10.
      ~cost:(fun e -> Control.Metrics.iae ~reference:1. (Sim.Engine.probe_component e "y" 0))
      build
  in
  Printf.printf "%-22s %-12s %-14s\n" "controller" "ideal IAE" "impl IAE (f=0.9)";
  List.iter
    (fun anti_windup ->
      let design = make_design ~anti_windup in
      let c =
        Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
          ~durations:(dc_durations ~frac:0.9 ())
          ()
      in
      Printf.printf "%-22s %-12.4f %-14.4f\n"
        (if anti_windup then "PID + anti-windup" else "naive PID (winds up)")
        c.Lifecycle.Methodology.ideal_cost c.Lifecycle.Methodology.implemented_cost)
    [ false; true ];
  Printf.printf
    "(the reference step drives the actuator into its +/-%.0f V saturation; the\n\
    \ unguarded integrator winds up and the latency deepens the recovery -\n\
    \ both visible in the same design-time co-simulation)\n"
    u_limit

(* ------------------------------------------------------------------ *)
(* suspension: quarter-car state feedback over a two-ECU bus — shared
   by the lifecycle experiment and the lint audit *)

let suspension_setup () =
  let qc = Control.Plants.default_quarter_car in
  let full =
    let sys = Control.Plants.quarter_car qc in
    Control.Lti.make ~domain:Control.Lti.Continuous ~a:sys.Control.Lti.a
      ~b:sys.Control.Lti.b ~c:(M.identity 4) ~d:(M.zeros 4 2)
  in
  let force_only =
    Control.Lti.make ~domain:Control.Lti.Continuous ~a:full.Control.Lti.a
      ~b:(M.block full.Control.Lti.b 0 0 4 1) ~c:(M.identity 4) ~d:(M.zeros 4 1)
  in
  let ts = 0.05 in
  let q =
    M.of_arrays
      [|
        [| 1e6; 0.; 0.; 0. |]; [| 0.; 1e4; 0.; 0. |]; [| 0.; 0.; 1e2; 0. |];
        [| 0.; 0.; 0.; 1e1 |];
      |]
  in
  let r = M.of_arrays [| [| 1e-6 |] |] in
  let bump () =
    Dataflow.Block.make ~name:"road_bump" ~out_widths:[| 1 |] ~always_active:true
      (fun ctx ->
        let t = ctx.Dataflow.Block.time in
        let z =
          if t >= 0.5 && t < 0.7 then
            0.05 *. (1. -. cos (10. *. Float.pi *. (t -. 0.5))) /. 2.
          else 0.
        in
        [| [| z |] |])
  in
  let arch =
    Arch.bus_topology ~latency:0.001 ~time_per_word:0.0005 [ "wheel_ecu"; "body_ecu" ]
  in
  let durations () =
    let d = Dur.create () in
    for i = 0 to 3 do
      Dur.set d ~op:(Printf.sprintf "sample_x%d" i) ~operator:"wheel_ecu" 0.0024
    done;
    Dur.set d ~op:"sfb" ~operator:"body_ecu" 0.0238;
    Dur.set d ~op:"hold_u" ~operator:"body_ecu" 0.0024;
    d
  in
  let k_nom = Lifecycle.Calibrate.lqr_gain ~plant:force_only ~ts ~q ~r () in
  let nominal =
    Lifecycle.Design.state_feedback_loop ~name:"nominal" ~plant:full ~x0:(Array.make 4 0.)
      ~k:k_nom ~ts ~horizon:3. ~disturbance:bump ~cost_output:0 ()
  in
  (nominal, arch, durations, force_only, full, ts, q, r, bump)

(* ------------------------------------------------------------------ *)
(* lifecycle: the suspension calibration story, condensed *)

let lifecycle () =
  header "lifecycle: suspension — predict degradation, calibrate, recover";
  (* identical to examples/suspension.ml, condensed to the numbers *)
  let nominal, arch, durations, force_only, full, ts, q, r, bump = suspension_setup () in
  let c =
    Lifecycle.Methodology.evaluate ~design:nominal ~architecture:arch
      ~durations:(durations ()) ()
  in
  let tau =
    Float.min ts
      (TM.io_latency c.Lifecycle.Methodology.implementation.Lifecycle.Methodology.static)
  in
  let k_cal = Lifecycle.Calibrate.lqr_delay_gain ~plant:force_only ~ts ~delay:tau ~q ~r () in
  let calibrated =
    Lifecycle.Design.delayed_state_feedback_loop ~name:"calibrated" ~plant:full
      ~x0:(Array.make 4 0.) ~k_aug:k_cal ~ts ~horizon:3. ~disturbance:bump ~cost_output:0 ()
  in
  let impl_cal =
    Lifecycle.Methodology.implement ~design:calibrated ~architecture:arch
      ~durations:(durations ()) ()
  in
  let cost_cal =
    calibrated.Lifecycle.Design.cost
      (Lifecycle.Methodology.simulate_implemented calibrated impl_cal)
  in
  Printf.printf "predicted I/O latency tau = %.4g s (%.0f %% of Ts)\n" tau (100. *. tau /. ts);
  Printf.printf "ideal cost              : %.6g\n" c.Lifecycle.Methodology.ideal_cost;
  Printf.printf "implemented (nominal)   : %.6g (%+.1f %%)\n"
    c.Lifecycle.Methodology.implemented_cost c.Lifecycle.Methodology.degradation_pct;
  Printf.printf "implemented (calibrated): %.6g\n" cost_cal;
  Printf.printf "degradation recovered   : %.1f %%\n"
    ((c.Lifecycle.Methodology.implemented_cost -. cost_cal)
    /. (c.Lifecycle.Methodology.implemented_cost -. c.Lifecycle.Methodology.ideal_cost)
    *. 100.)

(* ------------------------------------------------------------------ *)
(* quantization: the amplitude-domain implementation effect *)

let quantization () =
  header "quantization: control cost vs ADC resolution (timing held ideal)";
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let make_design step =
    let build () =
      let g = G.create () in
      let plant =
        G.add g
          (C.lti_continuous ~name:"plant" ~x0:[| 0.; 0. |]
             (Control.Plants.dc_motor Control.Plants.default_dc_motor))
      in
      (* the quantiser models the ADC: part of the physical interface,
         not of the control law *)
      let adc =
        if step > 0. then G.add g (C.quantizer ~name:"adc" ~step ())
        else G.add g (C.gain ~name:"adc" 1.)
      in
      G.connect_data g ~src:(plant, 0) ~dst:(adc, 0);
      let reference = G.add g (C.constant ~name:"reference" [| 1. |]) in
      let sampler = G.add g (C.sample_hold ~name:"sample_y" 1) in
      let pid =
        G.add g
          (C.pid ~name:"pid" (Control.Pid.create ~gains:snappy_gains ~ts:0.05 ()))
      in
      let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
      G.connect_data g ~src:(adc, 0) ~dst:(sampler, 0);
      G.connect_data g ~src:(reference, 0) ~dst:(pid, 0);
      G.connect_data g ~src:(sampler, 0) ~dst:(pid, 1);
      G.connect_data g ~src:(pid, 0) ~dst:(hold, 0);
      G.connect_data g ~src:(hold, 0) ~dst:(plant, 0);
      {
        Lifecycle.Design.graph = g;
        clocked = [ sampler; pid; hold ];
        members = [ reference; sampler; pid; hold ];
        memories = [];
        probes = [ ("y", (plant, 0)) ];
        condition_feed = None;
        customize_algorithm = None;
      }
    in
    Lifecycle.Design.make ~name:"dc_quantized" ~ts:0.05 ~horizon:10.
      ~cost:(fun e -> Control.Metrics.iae ~reference:1. (Sim.Engine.probe_component e "y" 0))
      build
  in
  Printf.printf "%-12s %-12s\n" "ADC step" "IAE";
  List.iter
    (fun step ->
      let design = make_design step in
      let e = Lifecycle.Methodology.simulate_ideal design in
      Printf.printf "%-12g %-12.5f\n" step (design.Lifecycle.Design.cost e))
    [ 0.; 0.001; 0.01; 0.05; 0.1; 0.2 ];
  Printf.printf "(coarser sampling of the measure degrades the loop even with ideal\n\
                \ timing — the amplitude counterpart of the paper's timing effects)\n"

(* ------------------------------------------------------------------ *)
(* margins: frequency-domain delay margin vs co-simulated instability *)

let margins () =
  header "margins: delay margin (frequency domain) vs co-simulated instability";
  let ts = 0.05 in
  let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
  let plant_d = Control.Discretize.discretize ~ts plant in
  let analyse label gains =
    let c =
      Control.Tf.to_ss ~domain:(Control.Lti.Discrete ts) (Control.Pid.to_tf gains ~ts)
    in
    let open_loop = Control.Lti.series c plant_d in
    let m = Control.Freq.margins ~n:1200 ~w_min:1e-2 ~w_max:(Float.pi /. ts) open_loop in
    let dm = m.Control.Freq.delay_margin in
    Printf.printf "%-12s wc = %s rad/s, PM = %s deg, predicted delay margin = %s (%.0f %% of Ts)\n"
      label
      (match m.Control.Freq.gain_crossover with Some x -> Printf.sprintf "%.2f" x | None -> "-")
      (match m.Control.Freq.phase_margin_deg with Some x -> Printf.sprintf "%.1f" x | None -> "-")
      (match dm with Some x -> Printf.sprintf "%.4f s" x | None -> "-")
      (match dm with Some x -> 100. *. x /. ts | None -> Float.nan);
    dm
  in
  let dm_snappy = analyse "snappy" snappy_gains in
  let dm_aggr = analyse "aggressive" aggressive_gains in
  (* empirical instability: finest latency fraction where the
     co-simulated cost stays below 20x the ideal *)
  let empirical gains =
    let design = dc_design ~gains () in
    let ideal =
      (Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
         ~durations:(dc_durations ~frac:0.02 ())
         ())
        .Lifecycle.Methodology.ideal_cost
    in
    let unstable frac =
      let c =
        Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
          ~durations:(dc_durations ~frac ())
          ()
      in
      (not (Float.is_finite c.Lifecycle.Methodology.implemented_cost))
      || c.Lifecycle.Methodology.implemented_cost > 20. *. ideal
    in
    let rec search lo hi n =
      if n = 0 then (lo +. hi) /. 2.
      else
        let mid = (lo +. hi) /. 2. in
        if unstable mid then search lo mid (n - 1) else search mid hi (n - 1)
    in
    if not (unstable 0.99) then None else Some (search 0.02 0.99 8 *. ts)
  in
  let report label dm emp =
    Printf.printf "%-12s predicted %.4f s vs co-simulated instability at %s\n" label
      (Option.value dm ~default:Float.nan)
      (match emp with Some x -> Printf.sprintf "%.4f s" x | None -> ">= Ts (stable)")
  in
  report "snappy" dm_snappy (empirical snappy_gains);
  report "aggressive" dm_aggr (empirical aggressive_gains);
  Printf.printf
    "(the actuation latency consumes phase margin; the co-simulation finds the\n\
    \ same breaking point the frequency-domain analysis predicts)\n"

(* ------------------------------------------------------------------ *)
(* exploration: which architecture meets the control requirement? *)

let exploration () =
  header "exploration: architecture selection against a control requirement";
  (* the loop's computations are too heavy for a cheap single MCU:
     explore candidate platforms and pick the cheapest one keeping the
     degradation below 10 % *)
  let design = dc_design () in
  let ideal =
    design.Lifecycle.Design.cost (Lifecycle.Methodology.simulate_ideal design)
  in
  (* candidate platforms: (label, relative cost, architecture, WCET scale) *)
  let shares = [ ("reference", 0.05); ("sample_y", 0.2); ("pid", 0.6); ("hold_u", 0.15) ] in
  let durations ~operators ~scale =
    let d = Dur.create () in
    List.iter
      (fun (op, share) ->
        List.iter
          (fun operator -> Dur.set d ~op ~operator (share *. scale *. 0.05))
          operators)
      shares;
    d
  in
  let candidates =
    [
      ("slow MCU", 1.0, Arch.single ~proc_name:"mcu" (), durations ~operators:[ "mcu" ] ~scale:0.95);
      ( "2 slow MCUs + bus",
        2.2,
        dc_two_proc (),
        durations ~operators:[ "P0"; "P1" ] ~scale:0.95 );
      ("fast MCU", 3.0, Arch.single ~proc_name:"mcu" (), durations ~operators:[ "mcu" ] ~scale:0.3);
      ( "premium MCU",
        5.0,
        Arch.single ~proc_name:"mcu" (),
        durations ~operators:[ "mcu" ] ~scale:0.1 );
    ]
  in
  Printf.printf "%-20s %-10s %-12s %-10s %-10s\n" "platform" "cost" "impl IAE" "degr %"
    "meets 10%?";
  let best = ref None in
  List.iter
    (fun (label, price, architecture, durations) ->
      let c = Lifecycle.Methodology.evaluate ~design ~architecture ~durations () in
      let degr = (c.Lifecycle.Methodology.implemented_cost -. ideal) /. ideal *. 100. in
      let ok = degr <= 10. in
      if ok then (match !best with
        | Some (_, p) when p <= price -> ()
        | _ -> best := Some (label, price));
      Printf.printf "%-20s %-10.1f %-12.5f %-10.1f %-10s\n" label price
        c.Lifecycle.Methodology.implemented_cost degr
        (if ok then "yes" else "no"))
    candidates;
  (match !best with
  | Some (label, price) ->
      Printf.printf "\ncheapest platform meeting the requirement: %s (cost %.1f)\n" label price
  | None -> Printf.printf "\nno candidate meets the requirement\n");
  Printf.printf
    "(note the negative result for the 2-MCU platform: the control chain is\n\
    \ serial, so doubling the processors barely reduces the I/O latency)\n";
  Printf.printf
    "(the decision is taken from co-simulations alone — no prototype of any\n\
    \ candidate platform was built, which is the methodology's promise)\n"

(* ------------------------------------------------------------------ *)
(* montecarlo: cost distribution under execution-time jitter *)

let montecarlo () =
  header "montecarlo: implemented-cost distribution under timing jitter";
  let design = dc_design () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(Arch.single ())
      ~durations:(dc_durations ~frac:0.9 ())
      ()
  in
  let ideal =
    design.Lifecycle.Design.cost (Lifecycle.Methodology.simulate_ideal design)
  in
  let s =
    Lifecycle.Montecarlo.run ~runs:30 ~design ~implementation:impl ()
  in
  Printf.printf "ideal cost: %.5f\n" ideal;
  Format.printf "%a@." Lifecycle.Montecarlo.pp s;
  Printf.printf
    "(every jittered run lies between the ideal and the WCET-static bound:\n\
    \ the static model is the safe envelope the adequation plans against)\n"

(* ------------------------------------------------------------------ *)
(* codegen robustness *)

let codegen_exec () =
  header "codegen: executive robustness across laws and seeds";
  let design = dc_design () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.8 () in
  let impl =
    Lifecycle.Methodology.implement ~design ~architecture:(dc_two_proc ()) ~durations ()
  in
  let laws =
    [
      ("wcet", Exec.Timing_law.Wcet);
      ("uniform", Exec.Timing_law.Uniform);
      ("triangular", Exec.Timing_law.Triangular 0.25);
      ("gaussian", Exec.Timing_law.Gaussian { mean_frac = 0.6; sigma_frac = 0.3 });
    ]
  in
  Printf.printf "%-12s %-8s %-12s %-12s\n" "law" "seeds" "conformant" "overruns";
  List.iter
    (fun (name, law) ->
      let conformant = ref 0 and overruns = ref 0 in
      for seed = 0 to 19 do
        let trace =
          Exec.Machine.run
            ~config:
              {
                Exec.Machine.default_config with
                iterations = 100;
                law;
                comm_jitter_frac = 0.3;
                seed;
                durations = Some durations;
              }
            impl.Lifecycle.Methodology.executive
        in
        if Exec.Machine.order_conformant trace then incr conformant;
        overruns := !overruns + trace.Exec.Machine.overruns
      done;
      Printf.printf "%-12s %-8d %-12d %-12d\n" name 20 !conformant !overruns)
    laws

(* ------------------------------------------------------------------ *)
(* baseline: synchronised executive vs unsynchronised best-effort *)

let baseline () =
  header "baseline: synchronised executive vs time-triggered table (no sync)";
  let design = dc_design () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.8 () in
  let impl =
    Lifecycle.Methodology.implement
      ~pins:[ ("sample_y", "P0"); ("pid", "P1"); ("hold_u", "P0") ]
      ~design ~architecture:(dc_two_proc ()) ~durations ()
  in
  let exe = impl.Lifecycle.Methodology.executive in
  Printf.printf "%-14s | %-24s | %-30s\n" "overrun prob" "synchronised (Machine)"
    "time-triggered (Async)";
  Printf.printf "%-14s | %-10s %-12s | %-10s %-9s %-9s\n" "(factor 2.0)" "mean La" "stale"
    "mean La" "stale" "of total";
  List.iter
    (fun p ->
      let sync_trace =
        Exec.Machine.run
          ~config:
            {
              Exec.Machine.default_config with
              iterations = 300;
              comm_jitter_frac = 0.2;
              overrun_prob = p;
              overrun_factor = 2.0;
              durations = Some durations;
            }
          exe
      in
      let sync_la =
        match Exec.Machine.actuation_latencies sync_trace with
        | (_, lat) :: _ -> Numerics.Stats.mean lat
        | [] -> Float.nan
      in
      let tt =
        Exec.Async.run
          ~config:
            {
              Exec.Async.default_config with
              iterations = 300;
              comm_jitter_frac = 0.2;
              overrun_prob = p;
              overrun_factor = 2.0;
            }
          exe
      in
      let tt_la =
        match tt.Exec.Async.actuation_latencies with
        | (_, lat) :: _ -> Numerics.Stats.mean lat
        | [] -> Float.nan
      in
      Printf.printf "%-14.2f | %-10.5f %-12d | %-10.5f %-9d %-9d\n" p sync_la 0 tt_la
        tt.Exec.Async.violations tt.Exec.Async.remote_consumptions)
    [ 0.0; 0.05; 0.15; 0.3 ];
  Printf.printf
    "(under the WCET contract both are correct; when executions overrun, the\n\
    \ time-triggered table silently consumes stale data while the synchronised\n\
    \ executive blocks and stays coherent — the deadlock-free order guarantee\n\
    \ the paper attributes to the generated code)\n"

(* ------------------------------------------------------------------ *)
(* faults: structural faults — failover schedules and robustness *)

let faults () =
  header "faults: fail-stop/outage/loss scenarios, failover re-adequation";
  (* 1. single-failure failover table on the fork_join workload *)
  let procs = [ "P0"; "P1"; "P2" ] in
  let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 procs in
  let alg, d = Aaa.Workloads.fork_join ~period:0.5 ~branches:6 ~operators:procs () in
  let nominal = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations:d () in
  Printf.printf "fork_join (6 branches) on 3 processors: nominal makespan %.4f\n"
    nominal.Sched.makespan;
  let table =
    Fault.Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
  in
  List.iter (fun f -> Format.printf "  %a@." Fault.Degrade.pp_failover f) table;
  (* 2. robustness of the DC-motor loop across fault scenarios *)
  let design = dc_design ~horizon:4. () in
  let architecture = dc_two_proc () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () in
  let scenarios =
    Fault.Scenario.single_processor_failures ~at:1.0 ~seed:500 architecture
    @ [
        Fault.Scenario.make ~name:"bus_outage" ~seed:502
          [ Fault.Scenario.Medium_outage { medium = "bus"; from_t = 1.0; until_t = 1.5 } ];
        Fault.Scenario.make ~name:"loss_10pct" ~seed:503
          [ Fault.Scenario.Message_loss { medium = None; prob = 0.1 } ];
        Fault.Scenario.make ~name:"overrun_bursts" ~seed:504
          [
            Fault.Scenario.Overrun_burst
              { start_prob = 0.05; stop_prob = 0.3; overrun_prob = 0.8; factor = 2.0 };
          ];
      ]
  in
  let summary =
    Fault.Robustness.evaluate ~iterations:200 ~design ~architecture ~durations
      ~scenarios ()
  in
  Format.printf "%a@." Fault.Robustness.pp summary;
  Printf.printf "\n%s" (Fault.Fault_report.markdown_section summary)

(* ------------------------------------------------------------------ *)
(* recovery: online detection, retransmission and mid-run mode switch *)

let recovery () =
  header "recovery: online detection, retransmission and mid-run mode switch";
  let design = dc_design ~horizon:4. () in
  let architecture = dc_two_proc () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () in
  let period = design.Lifecycle.Design.ts in
  let iterations = 80 in
  (* 1. executive timeline: P1 fail-stops at 1.0 s with the full
     policy on — watchdog, heartbeats and the precomputed failover *)
  let nominal = Lifecycle.Methodology.implement ~design ~architecture ~durations () in
  let table =
    Fault.Degrade.failover_table ~algorithm:nominal.Lifecycle.Methodology.algorithm
      ~architecture ~durations ~nominal:nominal.Lifecycle.Methodology.schedule ()
  in
  let policy =
    Exec.Recovery.make ~failover:(Fault.Degrade.failover_executives table) ~period ()
  in
  let scenario =
    Fault.Scenario.make ~name:"failstop_P1" ~seed:500
      [ Fault.Scenario.Processor_failstop { operator = "P1"; at = 1.0 } ]
  in
  let config =
    {
      Exec.Machine.default_config with
      iterations;
      seed = 500;
      durations = Some durations;
      injection = Fault.Scenario.injection scenario ~architecture;
      recovery = policy;
    }
  in
  let trace = Lifecycle.Methodology.execute ~config design nominal in
  Printf.printf "fail-stop of P1 at 1.0 s, %d iterations of Ts = %g s:\n" iterations
    period;
  let stale, other =
    List.partition
      (function Exec.Recovery.Stale_detected _ -> true | _ -> false)
      trace.Exec.Machine.recovery_events
  in
  Printf.printf "  freshness watchdog dated %d stale reads\n" (List.length stale);
  (match stale with
  | e :: _ -> Format.printf "  first: %a@." Exec.Recovery.pp_event e
  | [] -> ());
  List.iter (fun e -> Format.printf "  %a@." Exec.Recovery.pp_event e) other;
  (match trace.Exec.Machine.detection_latency with
  | Some l -> Printf.printf "  detection latency %g s\n" l
  | None -> ());
  (match trace.Exec.Machine.switched_at with
  | Some k ->
      Printf.printf "  running on the failover executive from iteration %d on\n" k
  | None -> ());
  Printf.printf "  order conformant across both phases: %b\n"
    (Exec.Machine.order_conformant trace);
  let trace' = Lifecycle.Methodology.execute ~config design nominal in
  Printf.printf "  re-run reproduces the timeline bit-for-bit: %b\n"
    (trace.Exec.Machine.recovery_events = trace'.Exec.Machine.recovery_events);
  (* 2. bounded retransmission under message loss *)
  let loss =
    Fault.Scenario.make ~name:"loss_20pct" ~seed:501
      [ Fault.Scenario.Message_loss { medium = None; prob = 0.2 } ]
  in
  let cfg_loss =
    {
      config with
      Exec.Machine.seed = 501;
      injection = Fault.Scenario.injection loss ~architecture;
      recovery = { policy with Exec.Recovery.failover = [] };
    }
  in
  let with_r = Lifecycle.Methodology.execute ~config:cfg_loss design nominal in
  let without_r =
    Lifecycle.Methodology.execute
      ~config:{ cfg_loss with Exec.Machine.recovery = Exec.Recovery.disabled }
      design nominal
  in
  Printf.printf
    "\n\
     20 %% message loss: %d retries recovered %d transfers; %d stay lost (vs %d \
     without recovery); stale %d vs %d; overruns %d vs %d\n"
    with_r.Exec.Machine.retransmissions with_r.Exec.Machine.recovered_transfers
    with_r.Exec.Machine.lost_transfers without_r.Exec.Machine.lost_transfers
    with_r.Exec.Machine.stale_reads without_r.Exec.Machine.stale_reads
    with_r.Exec.Machine.overruns without_r.Exec.Machine.overruns;
  (* 3. the design-time verdict: robustness with vs without recovery,
     including the recovered-vs-frozen control cost split *)
  let scenarios =
    (* P0 hosts the sensor→controller→actuator chain; failing it at
       0.05 s — right in the 1.0-step transient — freezes a slewing
       control value, the case where switching to the failover executive
       pays.  (P1 only hosts the constant reference: freezing it is a
       no-op, so its fail-stop carries no recoverable cost.) *)
    [
      Fault.Scenario.make ~name:"failstop_P0" ~seed:500
        [ Fault.Scenario.Processor_failstop { operator = "P0"; at = 0.05 } ];
    ]
  in
  let summary =
    Fault.Robustness.evaluate ~iterations ~recovery:(Exec.Recovery.make ~period ())
      ~design ~architecture ~durations ~scenarios ()
  in
  Format.printf "@.%a@." Fault.Robustness.pp summary;
  Printf.printf "\n%s" (Fault.Fault_report.markdown_section summary)

(* ------------------------------------------------------------------ *)
(* standby: hot-standby replica, output voting, schedule-time slack *)

let standby () =
  header "standby: hot-standby replica execution with output voting";
  let design = dc_design ~horizon:4. () in
  let architecture = dc_two_proc () in
  let durations = dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () in
  let period = design.Lifecycle.Design.ts in
  let iterations = 80 in
  let nominal = Lifecycle.Methodology.implement ~design ~architecture ~durations () in
  let sched = nominal.Lifecycle.Methodology.schedule in
  let algorithm = nominal.Lifecycle.Methodology.algorithm in
  (* 1. the replica plans: each failover copy re-hosted as a concurrent
     hot standby instead of a blackout-then-switch target *)
  let table =
    Fault.Degrade.failover_table ~algorithm ~architecture ~durations ~nominal:sched ()
  in
  let plans = Fault.Degrade.standby_plans ~nominal:sched table in
  List.iter (fun p -> Format.printf "  %a@." Fault.Degrade.pp_standby_plan p) plans;
  (* 2. the voted run: P0 (the whole sense→control→actuate chain)
     fail-stops at 0.05 s, right in the 1.0-step transient; the
     replica stream is live from iteration 0, so the voter falls
     through the period the primary goes stale — zero blackout *)
  let plan =
    match Fault.Degrade.standby_plan_for table ~nominal:sched ~operator:"P0" with
    | Some p -> p
    | None -> failwith "no standby plan for P0"
  in
  let scenario =
    Fault.Scenario.make ~name:"failstop_P0" ~seed:500
      [ Fault.Scenario.Processor_failstop { operator = "P0"; at = 0.05 } ]
  in
  let config =
    {
      Exec.Machine.default_config with
      iterations;
      seed = 500;
      durations = Some durations;
      injection = Fault.Scenario.injection scenario ~architecture;
      recovery = Exec.Recovery.make ~period ();
    }
  in
  let run () =
    Exec.Standby.run ~config ~protects:"P0"
      ~standby:plan.Fault.Degrade.executive nominal.Lifecycle.Methodology.executive
  in
  let trace = run () in
  Format.printf "%a@." Exec.Standby.pp trace;
  let trace' = run () in
  (* structural compare, not (=): Held decisions date their actuation
     instant as nan *)
  Printf.printf "  re-run reproduces the voted timeline bit-for-bit: %b\n"
    (compare trace.Exec.Standby.decisions trace'.Exec.Standby.decisions = 0
    && compare trace.Exec.Standby.events trace'.Exec.Standby.events = 0);
  (* 3. the design-time verdict: frozen vs blackout-then-switch vs
     hot standby over the same post-failure window *)
  let summary =
    Fault.Robustness.evaluate ~iterations ~recovery:(Exec.Recovery.make ~period ())
      ~standby:true ~design ~architecture ~durations ~scenarios:[ scenario ] ()
  in
  Format.printf "@.%a@." Fault.Robustness.pp summary;
  List.iter
    (fun (o : Fault.Robustness.outcome) ->
      match o.Fault.Robustness.recovery with
      | Some { Fault.Robustness.standby = Some sb; _ } -> (
          match
            ( sb.Fault.Robustness.standby_post_cost,
              sb.Fault.Robustness.switch_post_cost,
              sb.Fault.Robustness.frozen_post_cost )
          with
          | Some sbc, Some swc, Some frc ->
              Printf.printf
                "\n\
                \  post-failure cost: %.6g hot-standby vs %.6g blackout-then-switch \
                 vs %.6g frozen\n\
                \  hot-standby strictly below blackout-then-switch: %b\n"
                sbc swc frc (sbc < swc)
          | _ -> ())
      | _ -> ())
    summary.Fault.Robustness.outcomes;
  Printf.printf "\n%s" (Fault.Fault_report.markdown_section summary);
  (* 4. schedule-time slack insertion: under a retransmission-only
     policy the unslacked schedule reads every transfer at its planned
     completion, so a retried payload lands late (REC005); retiming
     the read offsets with insert_slack absorbs the worst-case retry
     chain and the rule goes silent *)
  let rpol = Exec.Recovery.make ~heartbeat_timeout:0. ~period () in
  let slacked =
    Aaa.Schedule.insert_slack
      ~slack_of:(fun c ->
        Exec.Recovery.worst_case_retry_time rpol
          ~transfer_duration:c.Aaa.Schedule.cm_duration)
      sched
  in
  let count rule diags =
    List.length (List.filter (fun d -> d.Verify.Diag.rule = rule) diags)
  in
  let before = Verify.Recovery_rules.check rpol sched in
  let after = Verify.Recovery_rules.check rpol slacked in
  Printf.printf "\nschedule-time slack insertion (retransmission-only policy):\n";
  List.iter
    (fun (c : Aaa.Schedule.comm_slot) ->
      Printf.printf "  %s -> %s: completes %.6g, reads %.6g (retry window %.6g s)\n"
        (Aaa.Algorithm.op_name algorithm (fst c.Aaa.Schedule.cm_src))
        (Aaa.Algorithm.op_name algorithm (fst c.Aaa.Schedule.cm_dst))
        (c.Aaa.Schedule.cm_start +. c.Aaa.Schedule.cm_duration)
        c.Aaa.Schedule.cm_read
        (Aaa.Schedule.retry_slack c))
    slacked.Aaa.Schedule.comm;
  Printf.printf
    "  REC005 before: %d, after insert_slack: %d; makespan %.6g -> %.6g (consumers \
     retimed past their retry windows), still fits the period: %b\n"
    (count "REC005" before) (count "REC005" after) sched.Aaa.Schedule.makespan
    slacked.Aaa.Schedule.makespan
    (Aaa.Schedule.fits_period slacked)

(* ------------------------------------------------------------------ *)
(* explore: the batch-parallel, cached design-space engine *)

(* seeds per grid cell; set by --runs (the CI smoke run uses 2) *)
let explore_runs = ref 3

let explore () =
  header "explore: parallel design-space engine — grid, cache, Pareto front";
  (* periods × platforms × WCET-speed-grades × seeds.  WCETs are
     absolute (a property of code on hardware), so the same platform
     grid is meaningful for every sampling period. *)
  let designs =
    List.map
      (fun ts ->
        Lifecycle.Design.pid_loop
          ~name:(Printf.sprintf "dc_motor_ts%g" ts)
          ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
          ~x0:[| 0.; 0. |] ~gains:snappy_gains ~ts ~reference:1. ~horizon:4. ())
      [ 0.05; 0.06 ]
  in
  let shares = [ ("reference", 0.05); ("sample_y", 0.2); ("pid", 0.6); ("hold_u", 0.15) ] in
  let durations_for operators scale =
    let d = Dur.create () in
    List.iter
      (fun (op, share) ->
        List.iter
          (fun operator ->
            Dur.set d ~op ~operator (share *. scale *. 0.05);
            Dur.set_bcet d ~op ~operator (0.4 *. share *. scale *. 0.05))
          operators)
      shares;
    d
  in
  let platforms =
    [
      {
        Explore.Grid.label = "mcu";
        price = 1.0;
        architecture = Arch.single ~proc_name:"mcu" ();
        durations_of = (fun scale -> durations_for [ "mcu" ] scale);
      };
      {
        Explore.Grid.label = "duo";
        price = 2.2;
        architecture = dc_two_proc ();
        durations_of = (fun scale -> durations_for [ "P0"; "P1" ] scale);
      };
      {
        Explore.Grid.label = "fast_mcu";
        price = 3.0;
        architecture = Arch.single ~proc_name:"mcu" ();
        durations_of = (fun scale -> durations_for [ "mcu" ] (0.33 *. scale));
      };
    ]
  in
  let seeds = List.init (max 1 !explore_runs) (fun i -> 900 + i) in
  let candidates =
    Explore.Grid.candidates ~fractions:[ 0.3; 0.6; 0.95 ] ~seeds ~platforms ()
  in
  let pool = Explore.Pool.default () in
  let cache = Explore.Cache.create () in
  Printf.printf "grid: %d designs x %d candidates = %d evaluations, pool of %d domain(s)\n"
    (List.length designs)
    (Explore.Grid.size candidates)
    (List.length designs * Explore.Grid.size candidates)
    (Explore.Pool.domains pool);
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let points, t1 =
    timed (fun () -> Lifecycle.Explorer.evaluate ~pool ~cache ~designs ~candidates ())
  in
  let points2, t2 =
    timed (fun () -> Lifecycle.Explorer.evaluate ~pool ~cache ~designs ~candidates ())
  in
  Printf.printf "pass 1 (cold cache): %.3f s; pass 2 (warm cache): %.3f s (%s)\n" t1 t2
    (if points = points2 then "identical points" else "POINTS DIFFER");
  let n_evals = List.length points in
  Printf.printf
    "throughput: %.0f candidates/sec cold, %.0f candidates/sec cache-warm\n"
    (float_of_int n_evals /. t1)
    (float_of_int n_evals /. t2);
  let st = Explore.Cache.stats cache in
  Printf.printf "cache: %d hits, %d misses over both passes\n" st.Explore.Cache.hits
    st.Explore.Cache.misses;
  Format.printf "cache after both passes: %a@." Explore.Cache.pp_stats
    (Explore.Cache.stats cache);
  print_string (Lifecycle.Explorer.markdown_section ~cache points);
  let front = Lifecycle.Explorer.pareto points in
  Printf.printf "\nCSV export: %d rows (Explorer.csv); front holds %d of %d points\n"
    (List.length points) (List.length front) (List.length points)

(* ------------------------------------------------------------------ *)
(* explore-scale: the streamed map-reduce sweep at grid sizes no
   eager candidate list could hold — anytime Pareto snapshots while
   it runs, then a subsampled bit-for-bit check of the streamed
   work-stealing engine-reuse pipeline against the
   rebuild-per-candidate reference *)

(* total candidate count; set by --candidates (CI smoke uses 10^4,
   the EXPERIMENTS.md entry is recorded at 10^5) *)
let explore_scale_target = ref 10_000

let explore_scale () =
  header "explore-scale: streamed sweep — work stealing, anytime front, subsample check";
  (* short screening horizon: triaging a huge grid is the regime the
     streamed engine-reuse pipeline targets *)
  let design =
    Lifecycle.Design.pid_loop ~name:"dc_motor_scale"
      ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
      ~x0:[| 0.; 0. |] ~gains:snappy_gains ~ts:0.05 ~reference:1. ~horizon:0.5 ()
  in
  let shares = [ ("reference", 0.05); ("sample_y", 0.2); ("pid", 0.6); ("hold_u", 0.15) ] in
  let durations_for operators scale =
    let d = Dur.create () in
    List.iter
      (fun (op, share) ->
        List.iter
          (fun operator ->
            Dur.set d ~op ~operator (share *. scale *. 0.05);
            Dur.set_bcet d ~op ~operator (0.4 *. share *. scale *. 0.05))
          operators)
      shares;
    d
  in
  let platforms =
    [
      {
        Explore.Grid.label = "mcu";
        price = 1.0;
        architecture = Arch.single ~proc_name:"mcu" ();
        durations_of = (fun scale -> durations_for [ "mcu" ] scale);
      };
      {
        Explore.Grid.label = "duo";
        price = 2.2;
        architecture = dc_two_proc ();
        durations_of = (fun scale -> durations_for [ "P0"; "P1" ] scale);
      };
    ]
  in
  let fractions = [ 0.3; 0.6; 0.9 ] in
  let cells = List.length platforms * List.length fractions in
  let n_seeds = max 1 ((max 1 !explore_scale_target + cells - 1) / cells) in
  let seeds = List.init n_seeds (fun i -> 900 + i) in
  let candidates () = Explore.Grid.seq ~fractions ~seeds ~platforms () in
  let total = Explore.Grid.count ~fractions ~seeds ~platforms () in
  let pool = Explore.Pool.default () in
  Printf.printf
    "grid: %d cells x %d seeds = %d candidates, streamed (never materialized), pool of %d domain(s)\n"
    cells n_seeds total
    (Explore.Pool.domains pool);
  let snapshot_every = max 1 (total / 8) in
  let sample_every = max 1 (total / 16) in
  let t0 = Unix.gettimeofday () in
  let summary =
    Lifecycle.Explorer.evaluate_seq ~pool ~snapshot_every
      ~snapshot:(fun p ->
        Printf.printf "anytime snapshot: evaluated=%d feasible=%d front=%d\n%!"
          p.Lifecycle.Explorer.p_evaluated p.Lifecycle.Explorer.p_feasible
          (List.length p.Lifecycle.Explorer.p_front))
      ~sample_every ~designs:[ design ]
      ~candidates:(candidates ()) ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "evaluated %d candidates in %.2f s: %.0f candidates/sec (feasible %d, infeasible %d, front %d)\n"
    summary.Lifecycle.Explorer.s_evaluated dt
    (float_of_int summary.Lifecycle.Explorer.s_evaluated /. dt)
    summary.Lifecycle.Explorer.s_feasible summary.Lifecycle.Explorer.s_infeasible
    (List.length summary.Lifecycle.Explorer.s_front);
  if summary.Lifecycle.Explorer.s_front = [] then begin
    Printf.printf "FAIL: empty Pareto front\n";
    exit 1
  end;
  (* bit-for-bit subsample check: re-evaluate every retained sample
     through the rebuild-per-candidate reference path *)
  let nth i =
    match Seq.uncons (Seq.drop i (candidates ())) with
    | Some (c, _) -> c
    | None -> assert false
  in
  let checked =
    List.map
      (fun (i, p) ->
        let reference =
          Lifecycle.Explorer.evaluate ~pool ~engine_reuse:false
            ~designs:[ design ]
            ~candidates:[ nth i ] ()
        in
        (i, compare reference [ p ] = 0))
      summary.Lifecycle.Explorer.s_samples
  in
  let ok = List.for_all snd checked in
  Printf.printf
    "subsample check (%d points vs rebuild-per-candidate reference): %b\n"
    (List.length checked) ok;
  if not ok then begin
    List.iter
      (fun (i, good) -> if not good then Printf.printf "  MISMATCH at candidate %d\n" i)
      checked;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* networked: N nodes sharing one CAN-like bus, arbitration jitter *)

let networked_nodes = ref 8

(* one fork-join control workload (adc → 2N filters → fusion → dac)
   spread over N processors that share a single bus — the distributed
   sensor/actuator layout of the paper's automotive target.  Scales to
   hundreds of nodes (--nodes). *)
let networked_setup ~nodes () =
  let n = max 2 nodes in
  let procs = List.init n (Printf.sprintf "N%d") in
  let time_per_word = 0.0002 in
  let arch = Arch.bus_topology ~time_per_word procs in
  let alg, durations =
    Aaa.Workloads.fork_join ~period:0.05 ~sensor_wcet:0.002 ~branch_wcet:0.004
      ~fusion_wcet:0.003 ~branches:(2 * n) ~operators:procs ()
  in
  let schedule = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations () in
  (n, arch, durations, schedule, time_per_word)

(* background CAN traffic: one high-priority chatter stream per third
   node, asynchronous to the control period so interference drifts
   across iterations.  Per-stream period grows with the stream count so
   aggregate background utilization stays ≈ 28 % at any N. *)
let networked_bus ~nodes ~time_per_word () =
  let chatterers = List.filter (fun i -> i mod 3 = 0) (List.init nodes Fun.id) in
  let period = 0.01 *. float_of_int (List.length chatterers) in
  let load =
    List.map
      (fun node ->
        Media.Load.periodic ~jitter_frac:0.3 ~node ~ident:(10 + node) ~words:4
          ~period ())
      chatterers
  in
  Media.Bus.make ~name:"bus" ~time_per_word ~frame_overhead:(10. *. time_per_word)
    ~max_wait:0.5 ~seed:77 ~load ()

let networked () =
  header "networked: N-node fork-join loop on one shared CAN-like bus";
  let nodes = !networked_nodes in
  let n, _arch, durations, schedule, time_per_word = networked_setup ~nodes () in
  Printf.printf "%d nodes on one bus: makespan %.4f s (period %g s), %d transfers/iter\n"
    n schedule.Sched.makespan
    (Alg.period schedule.Sched.algorithm)
    (List.length schedule.Sched.comm);
  let exe = Aaa.Codegen.generate schedule in
  let run bus_models =
    Exec.Machine.run
      ~config:
        {
          Exec.Machine.default_config with
          iterations = 60;
          law = Exec.Timing_law.Wcet;
          seed = 7;
          durations = Some durations;
          bus_models;
        }
      exe
  in
  (* per-iteration instant the last transfer settles, relative to its
     release — the communication tail the consumers actually see *)
  let comm_tail (trace : Exec.Machine.trace) =
    let tail = Array.make trace.Exec.Machine.iterations 0. in
    List.iter
      (fun (c : Exec.Machine.comm_exec) ->
        let k = c.Exec.Machine.ce_iteration in
        let rel =
          c.Exec.Machine.ce_finish -. (float_of_int k *. trace.Exec.Machine.period)
        in
        if rel > tail.(k) then tail.(k) <- rel)
      trace.Exec.Machine.comms;
    tail
  in
  let fixed = run [] in
  let bus_cfg = networked_bus ~nodes:n ~time_per_word () in
  let bussed = run [ ("bus", bus_cfg) ] in
  let t_fixed = comm_tail fixed and t_bus = comm_tail bussed in
  Printf.printf "comm tail, fixed durations: %s\n" (Numerics.Stats.summary t_fixed);
  Printf.printf "comm tail, arbitrated bus:  %s\n" (Numerics.Stats.summary t_bus);
  let spread a = Array.fold_left Float.max neg_infinity a -. Array.fold_left Float.min infinity a in
  Printf.printf "arbitration-induced jitter (tail spread): fixed %.6f s, bus %.6f s\n"
    (spread t_fixed) (spread t_bus);
  (match List.assoc_opt "bus" bussed.Exec.Machine.bus_log with
  | Some log ->
      let bg = List.filter (fun c -> c.Media.Bus.c_background) log in
      let horizon =
        float_of_int fixed.Exec.Machine.iterations *. fixed.Exec.Machine.period
      in
      let busy =
        List.fold_left (fun acc c -> acc +. (c.Media.Bus.c_finish -. c.Media.Bus.c_start))
          0. log
      in
      Printf.printf
        "bus log: %d frames (%d background), utilization \xe2\x89\x88 %.1f %% of the %g s horizon\n"
        (List.length log) (List.length bg) (100. *. busy /. horizon) horizon
  | None -> assert false);
  Printf.printf "order conformant under arbitration: %b\n"
    (Exec.Machine.order_conformant bussed);
  (* the exec Gantt shows the same jitter graphically *)
  ignore (Exec.Machine.order_conformant fixed);
  (* static bus-schedulability: the deployed config is clean, a forged
     overload is flagged *)
  let lint models = Verify.Media_rules.check ~schedule models in
  let clean = lint [ ("bus", bus_cfg) ] in
  Printf.printf "Media_rules on the deployed bus: %s\n" (Verify.Diag.summary clean);
  let overloaded =
    {
      bus_cfg with
      Media.Bus.b_load =
        [ Media.Load.periodic ~node:0 ~ident:1 ~words:60 ~period:0.001 () ];
    }
  in
  let flagged = lint [ ("bus", overloaded) ] in
  Printf.printf "Media_rules on a forged overload: %s\n" (Verify.Diag.summary flagged);
  List.iter
    (fun (d : Verify.Diag.t) ->
      if d.Verify.Diag.rule = "MEDIA001" then
        Printf.printf "  %s: %s\n" d.Verify.Diag.rule d.Verify.Diag.message)
    flagged

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* absint: the value-flow lint catching what a simulation run misses *)

(* A marginally unstable discrete loop x[n+1] = k·x[n] + u with k just
   above 1, its state annotated as Float32 for the target.  Any
   finite-horizon simulation reports a modest maximum; the abstract
   interpreter proves the loop unbounded and flags the overflow of the
   declared machine format before anything runs. *)
let absint_demo () =
  header "absint — static signal bounds vs a finite simulation";
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let module B = Dataflow.Block in
  let k = 1.02 and u = 1. and ts = 0.01 and horizon = 2.0 in
  let g = G.create () in
  let clock = G.add g (Dataflow.Eventlib.clock ~period:ts ()) in
  let src = G.add g (C.constant ~name:"u" [| u |]) in
  let sum = G.add g (B.with_format B.Float32 (C.sum ~name:"x" [| 1.; 1. |])) in
  let delay = G.add g (C.unit_delay ~name:"mem" [| 0. |]) in
  let fb = G.add g (C.gain ~name:"k" k) in
  G.connect_data g ~src:(src, 0) ~dst:(sum, 0);
  G.connect_data g ~src:(sum, 0) ~dst:(delay, 0);
  G.connect_data g ~src:(delay, 0) ~dst:(fb, 0);
  G.connect_data g ~src:(fb, 0) ~dst:(sum, 1);
  G.connect_event g ~src:(clock, 0) ~dst:(delay, 0);
  let eng = Sim.Engine.create g in
  Sim.Engine.add_probe eng ~name:"x" ~block:sum ~port:0;
  Sim.Engine.run ~t_end:horizon eng;
  let peak =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a x -> Float.max a (Float.abs x)) acc row)
      0.
      (Sim.Trace.values (Sim.Engine.probe eng "x"))
  in
  Printf.printf
    "simulated %g s (%d steps): max |x| = %.1f — far below the Float32 limit \
     (3.4e38), so the run looks healthy\n\n"
    horizon
    (int_of_float (horizon /. ts))
    peak;
  let result, diags = Verify.Flow_rules.check ~probes:[ ("x", (sum, 0)) ] g in
  Printf.printf "inferred bound on x: %s (fixpoint in %d sweeps)\n\n"
    (Dataflow.Interval.to_string (Verify.Absint.range result (sum, 0)))
    (Verify.Absint.iterations result);
  print_string (Verify.Diag.render diags);
  Printf.printf "%s\n" (Verify.Diag.summary diags)

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("sync", sync);
    ("latency-sweep", latency_sweep);
    ("jitter-sweep", jitter_sweep);
    ("adequation-sweep", adequation_sweep);
    ("quantization", quantization);
    ("margins", margins);
    ("windup", windup);
    ("lifecycle", lifecycle);
    ("baseline", baseline);
    ("faults", faults);
    ("recovery", recovery);
    ("standby", standby);
    ("exploration", exploration);
    ("explore", explore);
    ("explore-scale", explore_scale);
    ("montecarlo", montecarlo);
    ("codegen-exec", codegen_exec);
    ("networked", networked);
    ("absint", absint_demo);
  ]

(* ------------------------------------------------------------------ *)
(* lint: run the Verify design-rule passes over the seed designs *)

let lint_targets () =
  let cond_design, cond_durations = conditioned_design () in
  let susp_nominal, susp_arch, susp_durations, _, _, _, _, _, _ = suspension_setup () in
  [
    ("dc_motor/single", dc_design (), Arch.single (), dc_durations ~frac:0.6 ());
    ( "dc_motor/duo",
      dc_design (),
      dc_two_proc (),
      dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 () );
    ("conditioned_loop", cond_design, Arch.single (), cond_durations);
    ("suspension", susp_nominal, susp_arch, susp_durations ());
  ]

let lint json_path strict =
  let results =
    List.map
      (fun (label, design, architecture, durations) ->
        let recovery =
          Exec.Recovery.make ~period:design.Lifecycle.Design.ts ()
        in
        let diags = Verify.run_all ~architecture ~durations ~recovery design in
        Printf.printf "== %s ==\n%s%s\n\n" label
          (Verify.Diag.render diags)
          (Verify.Diag.summary diags);
        (label, diags))
      (lint_targets ())
  in
  (match json_path with
  | None -> ()
  | Some path ->
      let entries =
        List.concat_map
          (fun (label, diags) ->
            List.map
              (fun d ->
                Printf.sprintf "{\"design\": %S, \"diag\": %s}" label
                  (Verify.Diag.json_of d))
              (List.sort Verify.Diag.compare diags))
          results
      in
      let oc = open_out path in
      output_string oc
        (match entries with
        | [] -> "[]\n"
        | _ -> "[\n  " ^ String.concat ",\n  " entries ^ "\n]\n");
      close_out oc;
      Printf.printf "wrote %s\n" path);
  let all = List.concat_map snd results in
  Printf.printf "lint total: %s\n" (Verify.Diag.summary all);
  let gating =
    if strict then
      List.exists
        (fun (d : Verify.Diag.t) ->
          match d.Verify.Diag.severity with
          | Verify.Diag.Error | Verify.Diag.Warning -> true
          | Verify.Diag.Info -> false)
        all
    else Verify.Diag.has_errors all
  in
  if gating then exit 1

open Cmdliner

let runs_arg =
  let doc = "Seeds per grid cell for the $(b,explore) experiment." in
  Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc)

let nodes_arg =
  let doc = "Processor count for the $(b,networked) experiment." in
  Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc)

let candidates_arg =
  let doc = "Grid size for the $(b,explore-scale) experiment." in
  Arg.(value & opt int 10_000 & info [ "candidates" ] ~docv:"N" ~doc)

let run_all_experiments runs nodes candidates =
  explore_runs := runs;
  networked_nodes := nodes;
  explore_scale_target := candidates;
  List.iter (fun (_, f) -> f ()) experiments

let experiment_cmds =
  List.map
    (fun (name, f) ->
      let doc = Printf.sprintf "Run the %s experiment." name in
      Cmd.v (Cmd.info name ~doc)
        Term.(
          const (fun runs nodes candidates ->
              explore_runs := runs;
              networked_nodes := nodes;
              explore_scale_target := candidates;
              f ())
          $ runs_arg $ nodes_arg $ candidates_arg))
    experiments

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run_all_experiments $ runs_arg $ nodes_arg $ candidates_arg)

let json_arg =
  let doc = "Also write the diagnostics as a JSON array to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let strict_arg =
  let doc = "Exit non-zero on warnings too, not only on errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_cmd =
  let doc = "Statically check the seed designs against the Verify rule catalogue" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const lint $ json_arg $ strict_arg)

let cmd =
  let doc = "Regenerate the paper's figures as measured experiments" in
  let default = Term.(const run_all_experiments $ runs_arg $ nodes_arg $ candidates_arg) in
  Cmd.group ~default
    (Cmd.info "experiments" ~doc)
    (lint_cmd :: all_cmd :: experiment_cmds)

let () = exit (Cmd.eval cmd)
