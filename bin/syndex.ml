(* syndex — a standalone CLI over the AAA toolchain: load an SDX
   application file, run the adequation, and inspect the result
   (Gantt chart, generated executive, Graphviz exports, simulated
   execution).  The command-line counterpart of the SynDEx GUI.

   Examples:
     syndex show examples/data/dc_motor.sdx
     syndex adequation examples/data/dc_motor.sdx --gantt --executive
     syndex adequation file.sdx --strategy eft --refine 200 --dot out
     syndex execute examples/data/dc_motor.sdx --iterations 100 --law uniform
*)

open Cmdliner

let load_app path =
  try Ok (Aaa.Sdx.load path) with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let strategy_conv =
  let parse = function
    | "pressure" -> Ok Aaa.Adequation.Pressure
    | "eft" -> Ok Aaa.Adequation.Earliest_finish
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (pressure|eft)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with Aaa.Adequation.Pressure -> "pressure" | Earliest_finish -> "eft")
  in
  Arg.conv (parse, print)

let law_conv =
  let parse = function
    | "wcet" -> Ok Exec.Timing_law.Wcet
    | "bcet" -> Ok Exec.Timing_law.Bcet
    | "uniform" -> Ok Exec.Timing_law.Uniform
    | "triangular" -> Ok (Exec.Timing_law.Triangular 0.25)
    | "gaussian" -> Ok (Exec.Timing_law.Gaussian { mean_frac = 0.5; sigma_frac = 0.2 })
    | s -> Error (`Msg (Printf.sprintf "unknown law %S (wcet|bcet|uniform|triangular|gaussian)" s))
  in
  let print ppf _ = Format.pp_print_string ppf "<law>" in
  Arg.conv (parse, print)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.sdx" ~doc:"Application file.")

let run_adequation app strategy refine_iters =
  let sched =
    Aaa.Adequation.run ~strategy ~pins:app.Aaa.Sdx.pins ~algorithm:app.Aaa.Sdx.algorithm
      ~architecture:app.Aaa.Sdx.architecture ~durations:app.Aaa.Sdx.durations ()
  in
  if refine_iters > 0 then
    Aaa.Adequation.refine ~iterations:refine_iters ~algorithm:app.Aaa.Sdx.algorithm
      ~architecture:app.Aaa.Sdx.architecture ~durations:app.Aaa.Sdx.durations
      ~initial:sched ()
  else sched

(* ------------------------------------------------------------------ *)

let show_cmd =
  let action path =
    match load_app path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok app ->
        let alg = app.Aaa.Sdx.algorithm in
        Printf.printf "algorithm %S: %d operations, %d dependencies, period %g s\n"
          (Aaa.Algorithm.name alg) (Aaa.Algorithm.op_count alg)
          (List.length (Aaa.Algorithm.dependencies alg))
          (Aaa.Algorithm.period alg);
        Printf.printf "architecture %S: %d operators, %d media\n"
          (Aaa.Architecture.name app.Aaa.Sdx.architecture)
          (Aaa.Architecture.operator_count app.Aaa.Sdx.architecture)
          (Aaa.Architecture.medium_count app.Aaa.Sdx.architecture);
        Printf.printf "pins: %d\n\n%s" (List.length app.Aaa.Sdx.pins) (Aaa.Sdx.print app);
        0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Parse an application file and print its normalised form")
    Term.(const action $ file_arg)

let adequation_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv Aaa.Adequation.Pressure
      & info [ "strategy" ] ~docv:"S" ~doc:"Ranking strategy: pressure or eft.")
  in
  let refine_iters =
    Arg.(
      value & opt int 0
      & info [ "refine" ] ~docv:"N" ~doc:"Local-search refinement iterations (0 = off).")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print the ASCII Gantt chart.") in
  let executive =
    Arg.(value & flag & info [ "executive" ] ~doc:"Print the generated executive.")
  in
  let dot_prefix =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PREFIX"
          ~doc:"Write PREFIX.algorithm.dot, PREFIX.architecture.dot, PREFIX.schedule.dot.")
  in
  let save_schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-schedule" ] ~docv:"FILE"
          ~doc:"Save the resulting schedule so later runs can reload it.")
  in
  let generate_c =
    Arg.(
      value
      & opt (some dir) None
      & info [ "generate-c" ] ~docv:"DIR"
          ~doc:"Emit the distributed executive as C sources under DIR.")
  in
  let action path strategy refine_iters gantt executive dot_prefix save_schedule generate_c =
    match load_app path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok app -> (
        match run_adequation app strategy refine_iters with
        | exception Aaa.Adequation.Infeasible msg ->
            Printf.eprintf "infeasible: %s\n" msg;
            1
        | sched ->
            (match save_schedule with
            | Some out ->
                Aaa.Schedule_io.save sched out;
                Printf.printf "wrote %s\n" out
            | None -> ());
            (match generate_c with
            | Some dir ->
                Aaa.Cgen.write (Aaa.Codegen.generate sched) ~dir;
                List.iter
                  (fun (f, _) -> Printf.printf "wrote %s\n" (Filename.concat dir f))
                  (Aaa.Cgen.emit (Aaa.Codegen.generate sched))
            | None -> ());
            Format.printf "%a@." Aaa.Schedule.pp sched;
            let tm = Translator.Temporal_model.of_schedule sched in
            Format.printf "%a@." Translator.Temporal_model.pp_static tm;
            if gantt then print_string (Aaa.Gantt.render sched);
            if executive then
              print_string (Aaa.Codegen.to_string (Aaa.Codegen.generate sched));
            (match dot_prefix with
            | Some prefix ->
                let write suffix content =
                  let path = prefix ^ "." ^ suffix ^ ".dot" in
                  let oc = open_out path in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> output_string oc content);
                  Printf.printf "wrote %s\n" path
                in
                write "algorithm" (Aaa.Adot.algorithm app.Aaa.Sdx.algorithm);
                write "architecture" (Aaa.Adot.architecture app.Aaa.Sdx.architecture);
                write "schedule" (Aaa.Adot.schedule sched)
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "adequation" ~doc:"Run the adequation on an application file")
    Term.(
      const action $ file_arg $ strategy $ refine_iters $ gantt $ executive $ dot_prefix
      $ save_schedule $ generate_c)

let execute_cmd =
  let iterations =
    Arg.(value & opt int 100 & info [ "iterations" ] ~docv:"N" ~doc:"Periods to execute.")
  in
  let law =
    Arg.(
      value
      & opt law_conv Exec.Timing_law.Uniform
      & info [ "law" ] ~docv:"LAW" ~doc:"Execution-time law.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let schedule_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Reload a schedule saved by 'adequation --save-schedule' instead of re-running \
                the adequation.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the per-iteration latency table as CSV.")
  in
  let action path iterations law seed schedule_file csv =
    match load_app path with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok app -> (
        let schedule () =
          match schedule_file with
          | Some file ->
              Aaa.Schedule_io.load ~algorithm:app.Aaa.Sdx.algorithm
                ~architecture:app.Aaa.Sdx.architecture file
          | None -> run_adequation app Aaa.Adequation.Pressure 0
        in
        match schedule () with
        | exception Aaa.Adequation.Infeasible msg ->
            Printf.eprintf "infeasible: %s\n" msg;
            1
        | exception Failure msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | sched ->
            let exe = Aaa.Codegen.generate sched in
            let config =
              {
                Exec.Machine.default_config with
                iterations;
                law;
                seed;
                durations = Some app.Aaa.Sdx.durations;
              }
            in
            let trace = Exec.Machine.run ~config exe in
            Printf.printf
              "executed %d iterations: order conformant = %b, overruns = %d\n\n" iterations
              (Exec.Machine.order_conformant trace)
              trace.Exec.Machine.overruns;
            Printf.printf "%-20s %10s %10s %10s %10s\n" "operation" "mean" "min" "max"
              "jitter";
            List.iter
              (fun (s : Translator.Temporal_model.series) ->
                Printf.printf "%-20s %10.6f %10.6f %10.6f %10.6f\n"
                  (Aaa.Algorithm.op_name app.Aaa.Sdx.algorithm s.Translator.Temporal_model.op)
                  s.Translator.Temporal_model.mean s.Translator.Temporal_model.lmin
                  s.Translator.Temporal_model.lmax s.Translator.Temporal_model.jitter)
              (Translator.Temporal_model.sampling_series trace
              @ Translator.Temporal_model.actuation_series trace);
            (match csv with
            | Some out ->
                let oc = open_out out in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc (Exec.Machine.latencies_csv trace));
                Printf.printf "wrote %s\n" out
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "execute"
       ~doc:"Run the adequation, generate the executive and execute it on the simulated machine")
    Term.(const action $ file_arg $ iterations $ law $ seed $ schedule_file $ csv)

let lifecycle_cmd =
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print the ASCII Gantt chart.") in
  let montecarlo =
    Arg.(
      value & opt int 0
      & info [ "montecarlo" ] ~docv:"N"
          ~doc:"Also run N jittered co-simulations and print the cost distribution.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write a full markdown report to FILE.")
  in
  let sweep =
    Arg.(
      value & opt int 0
      & info [ "sweep" ] ~docv:"N"
          ~doc:"Also sweep the WCET scale over N points between 0.1x and 1x the file's \
                durations and print the cost curve.")
  in
  let action path gantt montecarlo_runs report_path sweep_points =
    match (try Ok (Lifecycle.Diagram.load path) with Failure m | Sys_error m -> Error m) with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok file -> (
        match
          Lifecycle.Methodology.evaluate ~pins:file.Lifecycle.Diagram.pins
            ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        with
        | exception Aaa.Adequation.Infeasible msg ->
            Printf.eprintf "infeasible: %s\n" msg;
            1
        | comparison ->
            print_string
              (Lifecycle.Report.comparison file.Lifecycle.Diagram.design comparison);
            if gantt then
              print_string
                (Aaa.Gantt.render
                   comparison.Lifecycle.Methodology.implementation
                     .Lifecycle.Methodology.schedule);
            let montecarlo_summary =
              if montecarlo_runs > 0 then
                Some
                  (Lifecycle.Montecarlo.run ~runs:montecarlo_runs
                     ~design:file.Lifecycle.Diagram.design
                     ~implementation:comparison.Lifecycle.Methodology.implementation ())
              else None
            in
            (match montecarlo_summary with
            | Some s -> Format.printf "%a@." Lifecycle.Montecarlo.pp s
            | None -> ());
            if sweep_points > 1 then begin
              Printf.printf "\nWCET-scale sweep:\n%-10s %-12s %-10s\n" "scale" "impl cost"
                "degr %";
              let points =
                Lifecycle.Sweep.latency
                  ~fractions:
                    (List.init sweep_points (fun i ->
                         0.1 +. (0.9 *. float_of_int i /. float_of_int (sweep_points - 1))))
                  ~design:file.Lifecycle.Diagram.design
                  ~architecture:file.Lifecycle.Diagram.architecture
                  ~durations_of:(fun f ->
                    Aaa.Durations.scale file.Lifecycle.Diagram.durations f)
                  ()
              in
              List.iter
                (fun (p : Lifecycle.Sweep.point) ->
                  Printf.printf "%-10.2f %-12.6g %-10.2f\n" p.Lifecycle.Sweep.parameter
                    p.Lifecycle.Sweep.implemented_cost p.Lifecycle.Sweep.degradation_pct)
                points
            end;
            (match report_path with
            | Some out ->
                let trace =
                  Lifecycle.Methodology.execute file.Lifecycle.Diagram.design
                    comparison.Lifecycle.Methodology.implementation
                in
                let lint =
                  Verify.markdown_section
                    (Verify.run_all ~pins:file.Lifecycle.Diagram.pins
                       ~architecture:file.Lifecycle.Diagram.architecture
                       ~durations:file.Lifecycle.Diagram.durations
                       file.Lifecycle.Diagram.design)
                in
                let bounds =
                  match file.Lifecycle.Diagram.design.Lifecycle.Design.build () with
                  | exception Invalid_argument _ -> None
                  | built ->
                      Some
                        (Verify.Absint.markdown_table
                           (Verify.Absint.analyze built.Lifecycle.Design.graph))
                in
                let doc =
                  Lifecycle.Report.markdown ?montecarlo:montecarlo_summary ~trace ?bounds
                    ~lint file.Lifecycle.Diagram.design comparison
                in
                let oc = open_out out in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> output_string oc doc);
                Printf.printf "wrote %s\n" out
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "lifecycle"
       ~doc:
         "Run the whole methodology (ideal sim, extraction, adequation, delay-aware \
          co-simulation) from a lifecycle diagram file")
    Term.(const action $ file_arg $ gantt $ montecarlo $ report $ sweep)

let rules_cmd =
  let action () =
    print_string (Verify.Rules.markdown_table ());
    0
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:
         "Print the design-rule catalogue: every identifier the static checker can emit, \
          with its severity, owning pass and meaning")
    Term.(const action $ const ())

let lint_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Lifecycle diagram (.lcs) or application (.sdx) files.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero on warnings too, not only on errors (for CI gates).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write all diagnostics as a JSON array.")
  in
  let no_failover =
    Arg.(
      value & flag
      & info [ "no-failover" ]
          ~doc:
            "Skip the single-failure failover coverage pass (SCHED010) — e.g. for \
             single-operator architectures where failover is impossible by construction.")
  in
  let recovery =
    Arg.(
      value & flag
      & info [ "recovery" ]
          ~doc:
            "Also audit each schedule under a retransmission-only recovery policy \
             (REC rules: retry budgets vs the period, worst-case retried completions \
             vs the consumers' planned read offsets).")
  in
  let retry_slack =
    Arg.(
      value & flag
      & info [ "retry-slack" ]
          ~doc:
            "With --recovery, retime the consumer read offsets through schedule-time \
             slack insertion before auditing — checks the schedule as it would deploy, \
             so REC005 stays silent when the reserved retry windows fit.")
  in
  (* a retransmission-only policy (supervisor off, so REC003/REC004
     stay silent): what the --recovery audit sizes retry windows for *)
  let lint_policy ~period = Exec.Recovery.make ~heartbeat_timeout:0. ~period () in
  let lint_file ~failover ~recovery ~retry_slack path =
    if Filename.check_suffix path ".sdx" then
      match (try Ok (Aaa.Sdx.load path) with Failure m | Sys_error m -> Error m) with
      | Error msg -> Error msg
      | Ok app ->
          let recovery =
            if recovery then
              Some (lint_policy ~period:(Aaa.Algorithm.period app.Aaa.Sdx.algorithm))
            else None
          in
          Ok (Verify.run_app ~failover ?recovery ~retry_slack app)
    else
      match
        (try Ok (Lifecycle.Diagram.load path) with Failure m | Sys_error m -> Error m)
      with
      | Error msg -> Error msg
      | Ok file ->
          let recovery =
            if recovery then
              Some
                (lint_policy
                   ~period:file.Lifecycle.Diagram.design.Lifecycle.Design.ts)
            else None
          in
          Ok
            (Verify.run_all ~pins:file.Lifecycle.Diagram.pins
               ~architecture:file.Lifecycle.Diagram.architecture
               ~durations:file.Lifecycle.Diagram.durations ~failover ?recovery
               ~retry_slack file.Lifecycle.Diagram.design)
  in
  let action files strict json no_failover recovery retry_slack =
    let lint_file = lint_file ~failover:(not no_failover) ~recovery ~retry_slack in
    let load_failed = ref false in
    let all =
      List.concat_map
        (fun path ->
          Printf.printf "== %s ==\n" path;
          match lint_file path with
          | Error msg ->
              Printf.printf "error: %s\n\n" msg;
              load_failed := true;
              []
          | Ok diags ->
              let rendered = Verify.Diag.render diags in
              if rendered <> "" then print_string rendered;
              Printf.printf "%s\n\n" (Verify.Diag.summary diags);
              diags)
        files
    in
    Printf.printf "lint total: %s\n" (Verify.Diag.summary all);
    (match json with
    | Some out ->
        let oc = open_out out in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Verify.Diag.to_json all));
        Printf.printf "wrote %s\n" out
    | None -> ());
    let gating =
      if strict then
        List.exists
          (fun (d : Verify.Diag.t) ->
            match d.Verify.Diag.severity with
            | Verify.Diag.Error | Verify.Diag.Warning -> true
            | Verify.Diag.Info -> false)
          all
      else Verify.Diag.has_errors all
    in
    if !load_failed || gating then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run every static design-rule pass (including the value-flow FLOW rules) over \
          lifecycle diagrams and application files; with --strict, warnings fail the run")
    Term.(const action $ files $ strict $ json $ no_failover $ recovery $ retry_slack)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at PATH instead of serving \
             stdin/stdout; clients are accepted one at a time and share the \
             service (cache, stats) until one sends a shutdown request.")
  in
  let montecarlo =
    Arg.(
      value
      & opt int Serve.Service.default_config.Serve.Service.montecarlo_runs
      & info [ "montecarlo" ] ~docv:"N"
          ~doc:"Monte-Carlo scenarios per submission (0 = off).")
  in
  let seed =
    Arg.(
      value
      & opt int Serve.Service.default_config.Serve.Service.base_seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"First Monte-Carlo seed.")
  in
  let law =
    Arg.(
      value
      & opt law_conv Exec.Timing_law.Uniform
      & info [ "law" ] ~docv:"LAW" ~doc:"Execution-time jitter law.")
  in
  let no_robustness =
    Arg.(
      value & flag
      & info [ "no-robustness" ] ~doc:"Skip the single-failure robustness scenarios.")
  in
  let standby =
    Arg.(
      value & flag
      & info [ "standby" ]
          ~doc:
            "Score each robustness scenario's hot-standby replica run too: voted \
             takeover and the three-way (hot-standby / blackout-then-switch / frozen) \
             post-failure costs appear in the report.")
  in
  let cache_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"Persist the evaluation memo table to FILE across restarts.")
  in
  let cache_capacity =
    Arg.(
      value
      & opt int Serve.Service.default_config.Serve.Service.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Memo entries kept in memory.")
  in
  let max_bytes =
    Arg.(
      value
      & opt int Serve.Service.default_config.Serve.Service.max_submission_bytes
      & info [ "max-bytes" ] ~docv:"N" ~doc:"Submission size limit in bytes.")
  in
  let pending =
    Arg.(
      value
      & opt int Serve.Service.default_config.Serve.Service.max_pending
      & info [ "pending" ] ~docv:"N"
          ~doc:"Received-request queue bound before the client blocks.")
  in
  let action socket montecarlo seed law no_robustness standby cache_path cache_capacity
      max_bytes pending =
    if montecarlo < 0 || cache_capacity <= 0 || max_bytes <= 0 || pending <= 0 then begin
      Printf.eprintf "error: --montecarlo must be >= 0 and --cache-capacity, --max-bytes, --pending > 0\n";
      1
    end
    else begin
      let config =
        {
          Serve.Service.default_config with
          Serve.Service.montecarlo_runs = montecarlo;
          base_seed = seed;
          law;
          robustness = not no_robustness;
          standby;
          max_submission_bytes = max_bytes;
          max_pending = pending;
          cache_capacity;
          cache_path;
        }
      in
      match Serve.Service.create config with
      | exception (Sys_error msg | Invalid_argument msg | Failure msg) ->
          Printf.eprintf "error: %s\n" msg;
          1
      | service ->
          Fun.protect
            ~finally:(fun () -> Serve.Service.close service)
            (fun () ->
              match socket with
              | Some path ->
                  Serve.Server.serve_unix_socket ~service ~path;
                  0
              | None -> (
                  match
                    Serve.Server.serve ~service ~input:Unix.stdin ~output:Unix.stdout
                  with
                  | `Shutdown | `Eof -> 0
                  | `Disconnect -> 1))
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch co-simulation service: line-delimited JSON requests \
          (evaluate, stats, ping, shutdown) on stdin/stdout or a Unix socket, \
          each evaluate running the full methodology pipeline with memoized, \
          shared-engine Monte-Carlo batches")
    Term.(
      const action $ socket $ montecarlo $ seed $ law $ no_robustness $ standby
      $ cache_path $ cache_capacity $ max_bytes $ pending)

let () =
  let doc = "system-level CAD for distributed real-time embedded control (SynDEx-style)" in
  let info = Cmd.info "syndex" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            show_cmd;
            adequation_cmd;
            execute_cmd;
            lifecycle_cmd;
            lint_cmd;
            rules_cmd;
            serve_cmd;
          ]))
