open Helpers
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module B = Dataflow.Block

(* ------------------------------------------------------------------ *)
(* Event queue *)

let queue_tests =
  [
    test "pop returns earliest time" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.push q ~time:2. ~priority:0 "b";
        Sim.Event_queue.push q ~time:1. ~priority:0 "a";
        check_true "a first" (Sim.Event_queue.pop q = Some (1., "a"));
        check_true "b second" (Sim.Event_queue.pop q = Some (2., "b"));
        check_true "empty" (Sim.Event_queue.pop q = None));
    test "priority breaks time ties" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.push q ~time:1. ~priority:5 "low";
        Sim.Event_queue.push q ~time:1. ~priority:1 "high";
        check_true "high first" (Sim.Event_queue.pop q = Some (1., "high")));
    test "sequence breaks priority ties (FIFO)" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.push q ~time:1. ~priority:0 "first";
        Sim.Event_queue.push q ~time:1. ~priority:0 "second";
        check_true "fifo" (Sim.Event_queue.pop q = Some (1., "first")));
    test "peek does not remove" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.push q ~time:3. ~priority:0 ();
        check_true "peek" (Sim.Event_queue.peek_time q = Some 3.);
        check_int "still there" 1 (Sim.Event_queue.length q));
    test "clear empties" (fun () ->
        let q = Sim.Event_queue.create () in
        Sim.Event_queue.push q ~time:1. ~priority:0 ();
        Sim.Event_queue.clear q;
        check_true "empty" (Sim.Event_queue.is_empty q));
    qtest "pop sequence is sorted" ~count:100
      QCheck2.Gen.(list_size (int_range 0 50) (pair (float_range 0. 100.) (int_range 0 5)))
      (fun entries ->
        let q = Sim.Event_queue.create () in
        List.iter (fun (t, p) -> Sim.Event_queue.push q ~time:t ~priority:p ()) entries;
        let rec drain last =
          match Sim.Event_queue.pop q with
          | None -> true
          | Some (t, ()) -> t >= last && drain t
        in
        drain neg_infinity);
  ]

(* ------------------------------------------------------------------ *)
(* Trace *)

let trace_tests =
  [
    test "record and read back" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        Sim.Trace.record tr 0. [| 1.; 2. |];
        Sim.Trace.record tr 1. [| 3.; 4. |];
        check_int "length" 2 (Sim.Trace.length tr);
        check_vec "times" [| 0.; 1. |] (Sim.Trace.times tr));
    test "same-time sample replaces previous" (fun () ->
        let tr = Sim.Trace.create ~width:1 in
        Sim.Trace.record tr 1. [| 1. |];
        Sim.Trace.record tr 1. [| 2. |];
        check_int "one sample" 1 (Sim.Trace.length tr);
        (match Sim.Trace.last tr with
        | Some (_, v) -> check_float "latest" 2. v.(0)
        | None -> Alcotest.fail "expected sample"));
    test "width mismatch raises" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        check_raises_invalid "width" (fun () -> Sim.Trace.record tr 0. [| 1. |]));
    test "component extracts metric trace" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        Sim.Trace.record tr 0. [| 1.; 5. |];
        Sim.Trace.record tr 1. [| 2.; 6. |];
        let m = Sim.Trace.component tr 1 in
        check_vec "values" [| 5.; 6. |] m.Control.Metrics.values);
    test "clear resets" (fun () ->
        let tr = Sim.Trace.create ~width:1 in
        Sim.Trace.record tr 0. [| 1. |];
        Sim.Trace.clear tr;
        check_int "empty" 0 (Sim.Trace.length tr));
    test "recording across chunk boundaries keeps every sample" (fun () ->
        (* storage grows in 1024-sample chunks: straddle several *)
        let n = (2 * 1024) + 5 in
        let tr = Sim.Trace.create ~width:1 in
        for i = 0 to n - 1 do
          Sim.Trace.record tr (float_of_int i) [| float_of_int (2 * i) |]
        done;
        check_int "length" n (Sim.Trace.length tr);
        let times = Sim.Trace.times tr in
        let values = Sim.Trace.values tr in
        List.iter
          (fun i ->
            check_float (Printf.sprintf "time %d" i) (float_of_int i) times.(i);
            check_float (Printf.sprintf "value %d" i) (float_of_int (2 * i)) values.(i).(0))
          [ 0; 1023; 1024; 1025; 2047; 2048; n - 1 ];
        let seen = ref 0 in
        Sim.Trace.iter
          (fun t v ->
            check_float "iter order" (float_of_int !seen) t;
            check_float "iter value" (float_of_int (2 * !seen)) v.(0);
            incr seen)
          tr;
        check_int "iter count" n !seen);
    test "same-time replacement works on the first slot of a chunk" (fun () ->
        let tr = Sim.Trace.create ~width:1 in
        for i = 0 to 1024 do
          Sim.Trace.record tr (float_of_int i) [| 0. |]
        done;
        (* sample 1024 opened a fresh chunk; overwrite it in place *)
        Sim.Trace.record tr 1024. [| 9. |];
        check_int "length" 1025 (Sim.Trace.length tr);
        (match Sim.Trace.last tr with
        | Some (t, v) ->
            check_float "time" 1024. t;
            check_float "replaced" 9. v.(0)
        | None -> Alcotest.fail "expected sample"));
    test "clear then refill reuses chunks without stale data" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        for i = 0 to 1499 do
          Sim.Trace.record tr (float_of_int i) [| 1.; 2. |]
        done;
        Sim.Trace.clear tr;
        check_int "cleared" 0 (Sim.Trace.length tr);
        Sim.Trace.record tr 0.5 [| 7.; 8. |];
        check_int "one sample" 1 (Sim.Trace.length tr);
        check_vec "times" [| 0.5 |] (Sim.Trace.times tr);
        let m = Sim.Trace.component tr 1 in
        check_vec "fresh values" [| 8. |] m.Control.Metrics.values);
    test "to_csv spans chunks" (fun () ->
        let tr = Sim.Trace.create ~width:1 in
        for i = 0 to 1100 do
          Sim.Trace.record tr (float_of_int i) [| float_of_int i |]
        done;
        let csv = Sim.Trace.to_csv tr in
        check_int "rows" (1101 + 1) (List.length (String.split_on_char '\n' (String.trim csv))));
  ]

(* ------------------------------------------------------------------ *)
(* Engine *)

(* integrator driven by a constant: x(t) = t *)
let engine_integrator () =
  let g = G.create () in
  let src = G.add g (C.constant [| 1. |]) in
  let integ = G.add g (C.integrator [| 0. |]) in
  G.connect_data g ~src:(src, 0) ~dst:(integ, 0);
  (g, integ)

let engine_tests =
  [
    test "pure continuous integration" (fun () ->
        let g, integ = engine_integrator () in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"x" ~block:integ ~port:0;
        Sim.Engine.run ~t_end:2. e;
        match Sim.Trace.last (Sim.Engine.probe e "x") with
        | Some (t, v) ->
            check_float ~eps:1e-12 "t_end" 2. t;
            check_float ~eps:1e-6 "x = t" 2. v.(0)
        | None -> Alcotest.fail "no samples");
    test "clock ticks at the expected instants" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:0.25 ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        (* ticks at 0, .25, .5, .75, 1 *)
        let acts = Sim.Engine.activations e ~block:counter in
        check_int "five ticks" 5 (List.length acts);
        check_float ~eps:1e-12 "first at 0" 0. (List.hd acts));
    test "clock offset delays first tick" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~offset:0.1 ~period:1. ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:0.5 e;
        check_true "tick at 0.1"
          (match Sim.Engine.activations e ~block:counter with
          | [ t ] -> Float.abs (t -. 0.1) < 1e-12
          | _ -> false));
    test "sample_hold latches at events only" (fun () ->
        let g = G.create () in
        let src = G.add g (C.sine_source ~freq_hz:1. ()) in
        let sh = G.add g (C.sample_hold 1) in
        let clock = G.add g (E.clock ~period:0.25 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(sh, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(sh, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"held" ~block:sh ~port:0;
        Sim.Engine.run ~t_end:0.25 e;
        (* at t = 0.25 the S/H latches sin(2π·0.25) = 1 *)
        (match Sim.Trace.last (Sim.Engine.probe e "held") with
        | Some (_, v) -> check_float ~eps:1e-6 "latched peak" 1. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "simultaneous events ordered by data dependency" (fun () ->
        (* source S/H feeding consumer S/H, both activated by the same
           clock: the consumer must see the freshly latched value *)
        let g = G.create () in
        let src = G.add g (C.constant [| 42. |]) in
        let first = G.add g (C.sample_hold ~name:"first" 1) in
        let second = G.add g (C.sample_hold ~name:"second" 1) in
        let clock = G.add g (E.clock ~period:1. ()) in
        G.connect_data g ~src:(src, 0) ~dst:(first, 0);
        G.connect_data g ~src:(first, 0) ~dst:(second, 0);
        (* connect in reverse order to prove ordering is structural,
           not insertion-based *)
        G.connect_event g ~src:(clock, 0) ~dst:(second, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(first, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"out" ~block:second ~port:0;
        Sim.Engine.run ~t_end:0. e;
        (match Sim.Trace.last (Sim.Engine.probe e "out") with
        | Some (_, v) -> check_float "propagated same instant" 42. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "event_delay shifts activation in time" (fun () ->
        let g = G.create () in
        let start = G.add g (E.initial_event ~at:0.5 ()) in
        let delay = G.add g (E.event_delay ~delay:0.2 ()) in
        let latch = G.add g (E.event_latch_time ()) in
        G.connect_event g ~src:(start, 0) ~dst:(delay, 0);
        G.connect_event g ~src:(delay, 0) ~dst:(latch, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"t" ~block:latch ~port:0;
        Sim.Engine.run ~t_end:1. e;
        (match Sim.Trace.last (Sim.Engine.probe e "t") with
        | Some (_, v) -> check_float ~eps:1e-9 "0.5 + 0.2" 0.7 v.(0)
        | None -> Alcotest.fail "no samples"));
    test "event_source replays its schedule" (fun () ->
        let g = G.create () in
        let src = G.add g (E.event_source [| 0.1; 0.4; 0.45 |]) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(src, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        let acts = Sim.Engine.activations e ~block:counter in
        check_int "three" 3 (List.length acts);
        List.iter2
          (fun expected actual -> check_float ~eps:1e-9 "instant" expected actual)
          [ 0.1; 0.4; 0.45 ] acts);
    test "event_select routes by condition" (fun () ->
        let g = G.create () in
        let cond = G.add g (C.constant [| 1. |]) in
        let select = G.add g (E.event_select ~channels:2 ~mapping:int_of_float ()) in
        let c0 = G.add g (E.event_counter ~name:"c0" ()) in
        let c1 = G.add g (E.event_counter ~name:"c1" ()) in
        let clock = G.add g (E.clock ~period:0.5 ()) in
        G.connect_data g ~src:(cond, 0) ~dst:(select, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(select, 0);
        G.connect_event g ~src:(select, 0) ~dst:(c0, 0);
        G.connect_event g ~src:(select, 1) ~dst:(c1, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        check_int "channel 0 unused" 0 (List.length (Sim.Engine.activations e ~block:c0));
        check_int "channel 1 used" 3 (List.length (Sim.Engine.activations e ~block:c1)));
    test "synchronization waits for all inputs" (fun () ->
        let g = G.create () in
        let a = G.add g (E.initial_event ~name:"a" ~at:0.1 ()) in
        let b = G.add g (E.initial_event ~name:"b" ~at:0.4 ()) in
        let sync = G.add g (E.synchronization ~inputs:2 ()) in
        let latch = G.add g (E.event_latch_time ()) in
        G.connect_event g ~src:(a, 0) ~dst:(sync, 0);
        G.connect_event g ~src:(b, 0) ~dst:(sync, 1);
        G.connect_event g ~src:(sync, 0) ~dst:(latch, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"t" ~block:latch ~port:0;
        Sim.Engine.run ~t_end:1. e;
        (match Sim.Trace.last (Sim.Engine.probe e "t") with
        | Some (_, v) -> check_float ~eps:1e-9 "fires at the later input" 0.4 v.(0)
        | None -> Alcotest.fail "no samples"));
    test "synchronization resets after firing" (fun () ->
        let g = G.create () in
        let clock_fast = G.add g (E.clock ~period:0.2 ()) in
        let clock_slow = G.add g (E.clock ~period:0.4 ()) in
        let sync = G.add g (E.synchronization ~inputs:2 ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(clock_fast, 0) ~dst:(sync, 0);
        G.connect_event g ~src:(clock_slow, 0) ~dst:(sync, 1);
        G.connect_event g ~src:(sync, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        (* fires at 0, 0.4, 0.8: rate limited by the slow clock *)
        check_int "three firings" 3 (List.length (Sim.Engine.activations e ~block:counter)));
    test "unit_delay delays by one activation" (fun () ->
        let g = G.create () in
        let counter = G.add g (E.event_counter ()) in
        let delay = G.add g (C.unit_delay [| 0. |]) in
        let clock = G.add g (E.clock ~period:1. ()) in
        G.connect_data g ~src:(counter, 0) ~dst:(delay, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(counter, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(delay, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"d" ~block:delay ~port:0;
        Sim.Engine.run ~t_end:3. e;
        (* counter after t=3 is 4; the delay holds the value sampled
           one tick earlier *)
        (match Sim.Trace.last (Sim.Engine.probe e "d") with
        | Some (_, v) -> check_true "delayed" (v.(0) <= 3.)
        | None -> Alcotest.fail "no samples"));
    test "reset allows identical re-run" (fun () ->
        let g, integ = engine_integrator () in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"x" ~block:integ ~port:0;
        Sim.Engine.run ~t_end:1. e;
        let first = Sim.Trace.last (Sim.Engine.probe e "x") in
        Sim.Engine.reset e;
        Sim.Engine.run ~t_end:1. e;
        let second = Sim.Trace.last (Sim.Engine.probe e "x") in
        (match (first, second) with
        | Some (_, v1), Some (_, v2) -> check_float ~eps:1e-12 "identical" v1.(0) v2.(0)
        | (Some _ | None), _ -> Alcotest.fail "missing samples"));
    test "run can be continued" (fun () ->
        let g, integ = engine_integrator () in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"x" ~block:integ ~port:0;
        Sim.Engine.run ~t_end:1. e;
        Sim.Engine.run ~t_end:2. e;
        check_float ~eps:1e-12 "time" 2. (Sim.Engine.now e);
        match Sim.Trace.last (Sim.Engine.probe e "x") with
        | Some (_, v) -> check_float ~eps:1e-6 "x = 2" 2. v.(0)
        | None -> Alcotest.fail "no samples");
    test "duplicate probe name rejected" (fun () ->
        let g, integ = engine_integrator () in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"x" ~block:integ ~port:0;
        check_raises_invalid "dup" (fun () ->
            Sim.Engine.add_probe e ~name:"x" ~block:integ ~port:0));
    test "event_log records deliveries in order" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:0.5 ()) in
        let counter = G.add g (E.event_counter ~name:"cnt" ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        let log = Sim.Engine.event_log e in
        let times = List.map (fun (t, _, _) -> t) log in
        check_true "sorted" (List.sort compare times = times);
        check_true "mentions counter" (List.exists (fun (_, n, _) -> n = "cnt") log));
    test "closed loop tracks reference (PID on lag)" (fun () ->
        let plant = Control.Plants.first_order ~tau:0.5 ~gain:1. in
        let ts = 0.05 in
        let g = G.create () in
        let p = G.add g (C.lti_continuous ~x0:[| 0. |] plant) in
        let r = G.add g (C.constant [| 2. |]) in
        let sh = G.add g (C.sample_hold 1) in
        let pid =
          G.add g
            (C.pid (Control.Pid.create ~gains:{ Control.Pid.kp = 4.; ki = 8.; kd = 0. } ~ts ()))
        in
        let hold = G.add g (C.sample_hold 1) in
        let clock = G.add g (E.clock ~period:ts ()) in
        G.connect_data g ~src:(p, 0) ~dst:(sh, 0);
        G.connect_data g ~src:(r, 0) ~dst:(pid, 0);
        G.connect_data g ~src:(sh, 0) ~dst:(pid, 1);
        G.connect_data g ~src:(pid, 0) ~dst:(hold, 0);
        G.connect_data g ~src:(hold, 0) ~dst:(p, 0);
        List.iter (fun b -> G.connect_event g ~src:(clock, 0) ~dst:(b, 0)) [ sh; pid; hold ];
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:p ~port:0;
        Sim.Engine.run ~t_end:8. e;
        let sse =
          Control.Metrics.steady_state_error ~reference:2.
            (Sim.Engine.probe_component e "y" 0)
        in
        check_true "tracks" (Float.abs sse < 0.01));
    test "divider forwards every Nth event" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:0.1 ()) in
        let div3 = G.add g (E.divider ~factor:3 ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(div3, 0);
        G.connect_event g ~src:(div3, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        (* 11 ticks at 0, 0.1, …, 1.0 → forwarded at 0, 0.3, 0.6, 0.9 *)
        let acts = Sim.Engine.activations e ~block:counter in
        check_int "4 forwarded" 4 (List.length acts);
        check_float ~eps:1e-9 "second at 0.3" 0.3 (List.nth acts 1));
    test "divider phase selects a later event in each group" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:0.1 ()) in
        let div = G.add g (E.divider ~factor:3 ~phase:1 ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(div, 0);
        G.connect_event g ~src:(div, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:1. e;
        (match Sim.Engine.activations e ~block:counter with
        | first :: _ -> check_float ~eps:1e-9 "first at 0.1" 0.1 first
        | [] -> Alcotest.fail "no events");
        check_raises_invalid "factor" (fun () -> ignore (E.divider ~factor:0 ()));
        check_raises_invalid "phase" (fun () -> ignore (E.divider ~factor:2 ~phase:2 ())));
    test "merge inlines a sub-diagram with its wiring intact" (fun () ->
        (* sub-diagram: constant -> gain, to be embedded and extended *)
        let sub = G.create () in
        let c = G.add sub (C.constant [| 2. |]) in
        let gn = G.add sub (C.gain 3.) in
        G.connect_data sub ~src:(c, 0) ~dst:(gn, 0);
        let target = G.create () in
        let outer_gain = G.add target (C.gain 10.) in
        let translate = G.merge target sub in
        G.connect_data target ~src:(translate gn, 0) ~dst:(outer_gain, 0);
        let e = Sim.Engine.create target in
        Sim.Engine.add_probe e ~name:"y" ~block:outer_gain ~port:0;
        Sim.Engine.run ~t_end:0.1 e;
        (match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) -> check_float ~eps:1e-12 "2*3*10" 60. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "merge preserves event links of the sub-diagram" (fun () ->
        let sub = G.create () in
        let clock = G.add sub (E.clock ~period:0.25 ()) in
        let counter = G.add sub (E.event_counter ()) in
        G.connect_event sub ~src:(clock, 0) ~dst:(counter, 0);
        let target = G.create () in
        let translate = G.merge target sub in
        let e = Sim.Engine.create target in
        Sim.Engine.run ~t_end:1. e;
        check_int "clock survived the merge" 5
          (List.length (Sim.Engine.activations e ~block:(translate counter))));
    test "stroboscopic S/H pair samples and actuates simultaneously" (fun () ->
        (* the Fig. 2 property: with one clock, measured sampling and
           actuation latencies are zero *)
        let g = G.create () in
        let src = G.add g (C.constant [| 1. |]) in
        let sh_in = G.add g (C.sample_hold ~name:"sh_in" 1) in
        let sh_out = G.add g (C.sample_hold ~name:"sh_out" 1) in
        let clock = G.add g (E.clock ~period:0.5 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(sh_in, 0);
        G.connect_data g ~src:(sh_in, 0) ~dst:(sh_out, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(sh_in, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(sh_out, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:2. e;
        let t_in = Sim.Engine.activations e ~block:sh_in in
        let t_out = Sim.Engine.activations e ~block:sh_out in
        List.iter2 (fun a b -> check_float ~eps:1e-12 "same instant" a b) t_in t_out);
  ]

let suites =
  [
    ("sim.event_queue", queue_tests);
    ("sim.trace", trace_tests);
    ("sim.engine", engine_tests);
  ]
