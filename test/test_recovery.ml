open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation
module TL = Exec.Timing_law
module Machine = Exec.Machine
module Async = Exec.Async
module Recovery = Exec.Recovery
module Injection = Exec.Injection
module Scenario = Fault.Scenario
module Degrade = Fault.Degrade
module Robustness = Fault.Robustness
module Metrics = Control.Metrics

(* The distributed sense → law → act chain of test_fault: law pinned
   on P1, so every iteration carries two bus transfers to lose and
   retransmit. *)
let dist_chain () =
  let alg = Alg.create ~name:"chain" ~period:0.1 in
  let s = Alg.add_op alg ~name:"sense" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let c = Alg.add_op alg ~name:"law" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
  Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
  let arch = Arch.bus_topology ~time_per_word:0.002 [ "P0"; "P1" ] in
  let d = Dur.create () in
  Dur.set d ~op:"sense" ~operator:"P0" 0.01;
  Dur.set d ~op:"law" ~operator:"P1" 0.01;
  Dur.set d ~op:"act" ~operator:"P0" 0.01;
  let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (alg, arch, d, sched, Aaa.Codegen.generate sched)

(* A parallel fork/join on two processors: every operation runs
   anywhere, so each single-operator failure has a feasible failover
   schedule to switch to. *)
let fj () =
  let operators = [ "P0"; "P1" ] in
  let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 operators in
  (* branch WCET chosen so the whole algorithm still fits one surviving
     processor: every single-operator failover is feasible *)
  let alg, d =
    Aaa.Workloads.fork_join ~period:0.5 ~branch_wcet:0.1 ~branches:4 ~operators ()
  in
  let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (alg, arch, d, nominal, Aaa.Codegen.generate nominal)

let always_lost ~iteration:_ ~slot:_ = true
let retries_lost ~attempt:_ ~iteration:_ ~slot:_ = true

(* ------------------------------------------------------------------ *)

let policy_tests =
  [
    test "make validates its parameters under REC001" (fun () ->
        check_raises_invalid "period" (fun () -> ignore (Recovery.make ~period:0. ()));
        check_raises_invalid "negative retries" (fun () ->
            ignore (Recovery.make ~max_retries:(-1) ~period:0.1 ()));
        check_raises_invalid "backoff factor" (fun () ->
            ignore (Recovery.make ~backoff_factor:0.5 ~period:0.1 ()));
        check_raises_invalid "heartbeat k" (fun () ->
            ignore (Recovery.make ~heartbeat_k:0 ~period:0.1 ()));
        match Recovery.make ~max_retries:(-1) ~period:0.1 () with
        | exception Invalid_argument msg ->
            check_true "message carries the rule id" (contains msg "[REC001]")
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "disabled turns every mechanism off" (fun () ->
        check_false "no retransmission" (Recovery.retransmission_enabled Recovery.disabled);
        check_false "no supervisor" (Recovery.supervisor_enabled Recovery.disabled);
        check_false "no watchdog" Recovery.disabled.Recovery.freshness_watchdog;
        let p = Recovery.make ~period:0.1 () in
        check_true "make enables retransmission" (Recovery.retransmission_enabled p);
        check_true "make enables the supervisor" (Recovery.supervisor_enabled p));
    test "backoff is geometric and the worst case sums it" (fun () ->
        let p =
          Recovery.make ~max_retries:3 ~backoff_base:0.01 ~backoff_factor:2. ~period:0.1 ()
        in
        check_float "first" 0.01 (Recovery.backoff_delay p ~attempt:1);
        check_float "second" 0.02 (Recovery.backoff_delay p ~attempt:2);
        check_float "third" 0.04 (Recovery.backoff_delay p ~attempt:3);
        check_float "worst case" (0.01 +. 0.02 +. 0.04 +. (3. *. 0.005))
          (Recovery.worst_case_retry_time p ~transfer_duration:0.005));
    test "first_failure bisects a monotone fail-stop" (fun () ->
        match Recovery.first_failure ~failed:(fun ~time -> time >= 0.37) ~horizon:2. with
        | None -> Alcotest.fail "expected a failure instant"
        | Some t ->
            check_float ~eps:1e-9 "bisected" 0.37 t;
            check_true "alive predicate yields None"
              (Recovery.first_failure ~failed:(fun ~time:_ -> false) ~horizon:2. = None));
    test "confirmation samples heartbeats at the periodic releases" (fun () ->
        let p = Recovery.make ~heartbeat_timeout:0.1 ~heartbeat_k:2 ~blackout:0.1 ~period:0.1 () in
        let operator_failed ~operator ~time = operator = "P1" && time >= 0.22 in
        match
          Recovery.confirm p ~operator_failed ~operators:[ "P0"; "P1" ] ~period:0.1
            ~iterations:20
        with
        | None -> Alcotest.fail "expected a confirmation"
        | Some c ->
            check_true "right operator" (c.Recovery.operator = "P1");
            check_float ~eps:1e-9 "bisected failure" 0.22 c.Recovery.fail_time;
            check_int "first missed release" 3 c.Recovery.first_missed;
            (* (3 + 2 − 1)·0.1 + 0.1 *)
            check_float ~eps:1e-9 "confirm instant" 0.5 c.Recovery.confirm_time;
            check_int "switch release after the blackout" 6
              (Recovery.switch_iteration p ~confirm_time:c.Recovery.confirm_time
                 ~period:0.1));
    test "a healthy run confirms nothing" (fun () ->
        let p = Recovery.make ~period:0.1 () in
        check_true "none"
          (Recovery.confirm p
             ~operator_failed:(fun ~operator:_ ~time:_ -> false)
             ~operators:[ "P0" ] ~period:0.1 ~iterations:50
          = None));
    test "is_none is structural, not physical" (fun () ->
        check_true "none itself" (Injection.is_none Injection.none);
        check_true "make () shares none's closures" (Injection.is_none (Injection.make ()));
        check_true "record update of none stays none"
          (Injection.is_none { Injection.none with transfer_lost = Injection.none.Injection.transfer_lost });
        check_false "a custom decision is an injection"
          (Injection.is_none (Injection.make ~retry_lost:(fun ~attempt:_ ~iteration:_ ~slot:_ -> false) ())));
  ]

(* ------------------------------------------------------------------ *)

let machine_tests =
  [
    test "the freshness watchdog dates stale reads without touching time" (fun () ->
        let _, _, _, _, exe = dist_chain () in
        let inj = Injection.make ~transfer_lost:always_lost () in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 20; injection = inj } in
        let plain = Machine.run ~config:base exe in
        let pol = { Recovery.disabled with Recovery.freshness_watchdog = true } in
        let watched = Machine.run ~config:{ base with recovery = pol } exe in
        check_vec ~eps:0. "identical timing" plain.Machine.iteration_end
          watched.Machine.iteration_end;
        check_int "same stale count" plain.Machine.stale_reads watched.Machine.stale_reads;
        check_int "no retries spent" 0 watched.Machine.retransmissions;
        check_int "one event per stale read" watched.Machine.stale_reads
          (List.length
             (List.filter
                (function Recovery.Stale_detected _ -> true | _ -> false)
                watched.Machine.recovery_events));
        check_true "events chronological"
          (List.sort Recovery.compare_event watched.Machine.recovery_events
          = watched.Machine.recovery_events));
    test "retransmission recovers certain loss when retries survive" (fun () ->
        let _, _, _, _, exe = dist_chain () in
        let inj = Injection.make ~transfer_lost:always_lost () in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 20; injection = inj } in
        let without = Machine.run ~config:base exe in
        let with_r =
          Machine.run ~config:{ base with recovery = Recovery.make ~period:0.1 () } exe
        in
        (* two transfers per iteration, every instance dropped once *)
        check_int "baseline loses everything" 40 without.Machine.lost_transfers;
        check_int "every drop recovered" 40 with_r.Machine.recovered_transfers;
        check_int "nothing stays lost" 0 with_r.Machine.lost_transfers;
        check_int "no stale reads" 0 with_r.Machine.stale_reads;
        check_int "one retry per drop" 40 with_r.Machine.retransmissions;
        check_true "recovery dated" (List.exists
             (function Recovery.Transfer_recovered _ -> true | _ -> false)
             with_r.Machine.recovery_events);
        (* a retry consumes real medium time *)
        check_true "completions pushed later"
          (with_r.Machine.iteration_end.(0) > without.Machine.iteration_end.(0)));
    test "the per-period budget bounds the attempts; exhaustion stays lost" (fun () ->
        let _, _, _, _, exe = dist_chain () in
        let inj = Injection.make ~transfer_lost:always_lost ~retry_lost:retries_lost () in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 20; injection = inj } in
        let with_r =
          Machine.run ~config:{ base with recovery = Recovery.make ~period:0.1 () } exe
        in
        check_int "nothing recovered" 0 with_r.Machine.recovered_transfers;
        check_int "all instances lost" 40 with_r.Machine.lost_transfers;
        (* 2 chains × max_retries 2 per iteration = the budget of 4 *)
        check_int "attempts capped by the budget" 80 with_r.Machine.retransmissions;
        check_true "exhaustion dated"
          (List.exists
             (function Recovery.Retries_exhausted _ -> true | _ -> false)
             with_r.Machine.recovery_events));
    test "recovery can itself cause overruns (the REC002 hazard, observed)" (fun () ->
        let _, _, _, _, exe = dist_chain () in
        let inj = Injection.make ~transfer_lost:always_lost () in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 20; injection = inj } in
        let without = Machine.run ~config:base exe in
        let pol = Recovery.make ~backoff_base:0.05 ~period:0.1 () in
        let with_r = Machine.run ~config:{ base with recovery = pol } exe in
        check_int "no overruns without recovery" 0 without.Machine.overruns;
        check_true "big backoffs spill past the release" (with_r.Machine.overruns > 0));
    test "a confirmed fail-stop switches to the failover executive mid-run" (fun () ->
        let alg, arch, d, nominal, exe = fj () in
        ignore alg;
        let failover =
          Degrade.failover_executives
            (Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d
               ~nominal ())
        in
        let pol = Recovery.make ~failover ~period:0.5 () in
        (* P0 hosts the sensor: killing it starves every transfer *)
        let inj =
          Scenario.injection
            (Scenario.make ~name:"kill_P0" ~seed:9
               [ Scenario.Processor_failstop { operator = "P0"; at = 0.9 } ])
            ~architecture:arch
        in
        let base =
          {
            Machine.default_config with
            law = TL.Wcet;
            iterations = 12;
            durations = Some d;
            injection = inj;
          }
        in
        let without = Machine.run ~config:base exe in
        let with_r = Machine.run ~config:{ base with recovery = pol } exe in
        check_true "baseline goes stale" (without.Machine.stale_reads > 0);
        (* fail 0.9 → releases 2,3 missed → confirm 2.0 → blackout 0.5 → 5 *)
        check_true "switched at release 5" (with_r.Machine.switched_at = Some 5);
        (match with_r.Machine.detection_latency with
        | None -> Alcotest.fail "expected a detection latency"
        | Some l -> check_float ~eps:1e-6 "confirm − fail" 1.1 l);
        (match with_r.Machine.continuation with
        | None -> Alcotest.fail "expected a failover phase"
        | Some c -> check_int "remaining iterations" 7 c.Machine.iterations);
        check_true "confirmation dated"
          (List.exists
             (function
               | Recovery.Failstop_confirmed { operator = "P0"; _ } -> true
               | _ -> false)
             with_r.Machine.recovery_events);
        check_true "switch dated"
          (List.exists
             (function
               | Recovery.Mode_switched { iteration = 5; operator = "P0"; _ } -> true
               | _ -> false)
             with_r.Machine.recovery_events);
        check_true "post-switch phase stops going stale"
          (with_r.Machine.stale_reads < without.Machine.stale_reads);
        check_true "both phases order conformant" (Machine.order_conformant with_r);
        let again = Machine.run ~config:{ base with recovery = pol } exe in
        check_true "timeline reproduces bit-for-bit"
          (with_r.Machine.recovery_events = again.Machine.recovery_events);
        check_vec ~eps:0. "timing reproduces bit-for-bit" with_r.Machine.iteration_end
          again.Machine.iteration_end);
    test "no failover executive: the fail-stop is confirmed but not switched" (fun () ->
        let _, arch, d, _, exe = fj () in
        let pol = Recovery.make ~period:0.5 () in
        let inj =
          Scenario.injection
            (Scenario.make ~name:"kill_P0" ~seed:9
               [ Scenario.Processor_failstop { operator = "P0"; at = 0.9 } ])
            ~architecture:arch
        in
        let trace =
          Machine.run
            ~config:
              {
                Machine.default_config with
                law = TL.Wcet;
                iterations = 12;
                durations = Some d;
                injection = inj;
                recovery = pol;
              }
            exe
        in
        check_true "no switch" (trace.Machine.switched_at = None);
        check_true "no continuation" (trace.Machine.continuation = None);
        check_true "still detected" (trace.Machine.detection_latency <> None);
        check_true "confirmation dated"
          (List.exists
             (function Recovery.Failstop_confirmed _ -> true | _ -> false)
             trace.Machine.recovery_events));
    qtest "retransmission keeps order conformance and accounts every drop" ~count:40
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let _, arch, _, _, exe = dist_chain () in
        let s =
          Scenario.make ~name:"loss" ~seed
            [ Scenario.Message_loss { medium = None; prob = 0.3 } ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let base = { Machine.default_config with iterations = 20; injection = inj } in
        let without = Machine.run ~config:base exe in
        let with_r =
          Machine.run ~config:{ base with recovery = Recovery.make ~period:0.1 () } exe
        in
        Machine.order_conformant with_r
        && with_r.Machine.retransmissions >= with_r.Machine.recovered_transfers
        && with_r.Machine.recovered_transfers + with_r.Machine.lost_transfers
           = without.Machine.lost_transfers);
  ]

(* ------------------------------------------------------------------ *)

let async_tests =
  [
    test "the static-table executor retries dropped slots in place" (fun () ->
        let _, _, _, _, exe = dist_chain () in
        let inj = Injection.make ~transfer_lost:always_lost () in
        let base = { Async.default_config with iterations = 20; injection = inj } in
        let without = Async.run ~config:base exe in
        let with_r =
          Async.run ~config:{ base with Async.recovery = Recovery.make ~period:0.1 () } exe
        in
        check_true "baseline violates freshness" (without.Async.violations > 0);
        check_int "every drop recovered" without.Async.lost_transfers
          with_r.Async.recovered_transfers;
        check_int "nothing stays lost" 0 with_r.Async.lost_transfers;
        (* time-triggered reads stay at their planned offsets: the
           retried payload lands after them, so this period's read is
           still a (dated) freshness violation *)
        check_int "reads still miss the planned offsets" without.Async.violations
          with_r.Async.violations;
        check_true "recovery dated"
          (List.exists
             (function Recovery.Transfer_recovered _ -> true | _ -> false)
             with_r.Async.recovery_events);
        check_true "events chronological"
          (List.sort Recovery.compare_event with_r.Async.recovery_events
          = with_r.Async.recovery_events));
    test "a watchdog-only policy replays the baseline's RNG stream" (fun () ->
        let _, arch, _, _, exe = dist_chain () in
        let s =
          Scenario.make ~name:"loss" ~seed:21
            [ Scenario.Message_loss { medium = None; prob = 0.3 } ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let base = { Async.default_config with iterations = 30; injection = inj } in
        let plain = Async.run ~config:base exe in
        let pol = { Recovery.disabled with Recovery.freshness_watchdog = true } in
        let watched = Async.run ~config:{ base with Async.recovery = pol } exe in
        check_int "same violations" plain.Async.violations watched.Async.violations;
        check_int "same losses" plain.Async.lost_transfers watched.Async.lost_transfers;
        check_int "same overruns" plain.Async.overruns watched.Async.overruns;
        check_int "one event per violation" watched.Async.violations
          (List.length watched.Async.recovery_events));
  ]

(* ------------------------------------------------------------------ *)

let clip_tests =
  [
    test "clip interpolates its boundaries" (fun () ->
        let tr = Metrics.of_arrays [| 0.; 1.; 2. |] [| 0.; 2.; 4. |] in
        let w = Metrics.clip ~from_t:0.5 ~until_t:1.5 tr in
        check_float "left boundary" 1. w.Metrics.values.(0);
        check_float "right boundary" 3. w.Metrics.values.(Array.length w.Metrics.values - 1);
        check_raises_invalid "inverted window" (fun () ->
            ignore (Metrics.clip ~from_t:1. ~until_t:0.5 tr)));
    test "integral metrics compose exactly across adjacent windows" (fun () ->
        let tr =
          Metrics.of_arrays
            [| 0.; 0.3; 0.9; 1.4; 2.; 2.7 |]
            [| 0.; 1.2; 0.4; 1.9; 0.8; 1.1 |]
        in
        (* cuts on existing samples are exact for any reference *)
        let whole = Metrics.iae ~reference:1. tr in
        let split cut =
          Metrics.iae ~reference:1. (Metrics.clip ~from_t:0. ~until_t:cut tr)
          +. Metrics.iae ~reference:1. (Metrics.clip ~from_t:cut ~until_t:2.7 tr)
        in
        check_float ~eps:1e-12 "cut on a sample" whole (split 0.9);
        (* in-segment cuts are exact when the error keeps its sign
           there (the trapezoidal quadrature of |e| is linear on the
           segment); reference 0 keeps every segment sign-constant *)
        let whole0 = Metrics.iae ~reference:0. tr in
        let split0 cut =
          Metrics.iae ~reference:0. (Metrics.clip ~from_t:0. ~until_t:cut tr)
          +. Metrics.iae ~reference:0. (Metrics.clip ~from_t:cut ~until_t:2.7 tr)
        in
        check_float ~eps:1e-12 "cut between samples" whole0 (split0 1.13));
  ]

(* ------------------------------------------------------------------ *)

let has rule diags = List.exists (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = rule) diags

let verify_tests =
  [
    test "REC001 catches a malformed policy record" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let bad = { (Recovery.make ~period:0.1 ()) with Recovery.max_retries = -1 } in
        let diags = Verify.Recovery_rules.check bad sched in
        check_true "REC001 raised" (has "REC001" diags);
        check_true "as an error" (Verify.Diag.has_errors diags));
    test "REC002 warns when the retry budget cannot fit the period" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p =
          Recovery.make ~max_retries:5 ~retry_budget:10 ~backoff_base:0.05 ~period:0.1 ()
        in
        check_true "REC002 raised" (has "REC002" (Verify.Recovery_rules.check p sched));
        let tame = Recovery.make ~period:0.1 () in
        check_false "defaults stay quiet"
          (has "REC002" (Verify.Recovery_rules.check tame sched)));
    test "REC003 warns when the timeout undercuts the schedule" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p = Recovery.make ~heartbeat_timeout:0.001 ~period:0.1 () in
        check_true "REC003 raised" (has "REC003" (Verify.Recovery_rules.check p sched)));
    test "REC004 lists the operators without a failover executive" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p = Recovery.make ~period:0.1 () in
        let diags = Verify.Recovery_rules.check p sched in
        check_true "REC004 raised" (has "REC004" diags);
        check_int "one per uncovered operator" 2
          (List.length
             (List.filter (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = "REC004") diags)));
    test "run_all checks a supplied recovery policy" (fun () ->
        let design =
          Lifecycle.Design.pid_loop ~name:"dc"
            ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
            ~x0:[| 0.; 0. |]
            ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
            ~ts:0.05 ~reference:1. ~horizon:2. ()
        in
        let diags = Verify.run_all ~recovery:(Recovery.make ~period:0.05 ()) design in
        check_true "policy rules run in stage 3" (has "REC004" diags);
        check_false "no errors on the seed design" (Verify.Diag.has_errors diags));
  ]

(* ------------------------------------------------------------------ *)

let dc_design () =
  Lifecycle.Design.pid_loop ~name:"dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
    ~ts:0.05 ~reference:1. ~horizon:2. ()

let dc_durations () =
  let d = Dur.create () in
  let all = [ "P0"; "P1" ] in
  Dur.set_everywhere d ~op:"reference" ~operators:all 0.001;
  Dur.set_everywhere d ~op:"sample_y" ~operators:all 0.004;
  Dur.set_everywhere d ~op:"pid" ~operators:all 0.012;
  Dur.set_everywhere d ~op:"hold_u" ~operators:all 0.004;
  d

let dc_arch () = Arch.bus_topology ~time_per_word:0.002 ~latency:0.001 [ "P0"; "P1" ]

let recovery_summary =
  (* computed once: each scenario runs four executive traces and up to
     two extra co-simulations *)
  lazy
    (let architecture = dc_arch () in
     let scenarios =
       Scenario.single_processor_failures ~at:0.2 ~seed:42 architecture
       @ [
           Scenario.make ~name:"loss" ~seed:44
             [ Scenario.Message_loss { medium = None; prob = 0.2 } ];
         ]
     in
     Robustness.evaluate ~iterations:40
       ~recovery:(Recovery.make ~period:0.05 ())
       ~design:(dc_design ()) ~architecture ~durations:(dc_durations ()) ~scenarios ())

let robustness_tests =
  [
    test "every confirmed fail-stop is detected, dated and switched" (fun () ->
        let s = Lazy.force recovery_summary in
        List.iter
          (fun (o : Robustness.outcome) ->
            match o.Robustness.recovery with
            | None -> Alcotest.fail "recovery outcome missing"
            | Some r ->
                if o.Robustness.replanned then begin
                  check_true "detected" (r.Robustness.detection <> None);
                  check_true "switched" (r.Robustness.switch_time <> None);
                  check_true "fewer stale reads with recovery"
                    (r.Robustness.stale_with <= r.Robustness.stale_without)
                end
                else begin
                  check_true "timing faults confirm nothing" (r.Robustness.detection = None);
                  check_true "and switch nothing" (r.Robustness.switch_time = None)
                end)
          s.Robustness.outcomes);
    test "retransmission shows up in the loss scenario's ledger" (fun () ->
        let s = Lazy.force recovery_summary in
        let loss =
          List.find
            (fun (o : Robustness.outcome) -> o.Robustness.scenario.Scenario.name = "loss")
            s.Robustness.outcomes
        in
        match loss.Robustness.recovery with
        | None -> Alcotest.fail "recovery outcome missing"
        | Some r ->
            check_true "retries spent" (r.Robustness.retransmissions > 0);
            check_true "drops recovered" (r.Robustness.recovered_transfers > 0);
            check_true "fewer stale reads"
              (r.Robustness.stale_with < r.Robustness.stale_without));
    test "switching beats freezing on some fail-stop (the acceptance bar)" (fun () ->
        let s = Lazy.force recovery_summary in
        check_true "a switched scenario improves the post-switch cost"
          (List.exists
             (fun (o : Robustness.outcome) ->
               match o.Robustness.recovery with
               | Some { Robustness.phases = Some p; _ } ->
                   p.Robustness.degraded_phase < p.Robustness.frozen_phase
               | _ -> false)
             s.Robustness.outcomes));
    test "phase costs compose back into the whole-horizon cost" (fun () ->
        let s = Lazy.force recovery_summary in
        List.iter
          (fun (o : Robustness.outcome) ->
            match o.Robustness.recovery with
            | Some
                {
                  Robustness.phases = Some p;
                  recovered_cost = Some total;
                  _;
                } ->
                check_float ~eps:1e-6 "nominal + transient + degraded = whole"
                  total
                  (p.Robustness.nominal_phase +. p.Robustness.transient_phase
                  +. p.Robustness.degraded_phase)
            | _ -> ())
          s.Robustness.outcomes);
    test "the evaluation reproduces bit-for-bit with recovery on" (fun () ->
        let s1 = Lazy.force recovery_summary in
        let architecture = dc_arch () in
        let scenarios =
          Scenario.single_processor_failures ~at:0.2 ~seed:42 architecture
          @ [
              Scenario.make ~name:"loss" ~seed:44
                [ Scenario.Message_loss { medium = None; prob = 0.2 } ];
            ]
        in
        let s2 =
          Robustness.evaluate ~iterations:40
            ~recovery:(Recovery.make ~period:0.05 ())
            ~design:(dc_design ()) ~architecture ~durations:(dc_durations ()) ~scenarios ()
        in
        List.iter2
          (fun (a : Robustness.outcome) (b : Robustness.outcome) ->
            match (a.Robustness.recovery, b.Robustness.recovery) with
            | Some ra, Some rb ->
                check_int "retransmissions" ra.Robustness.retransmissions
                  rb.Robustness.retransmissions;
                check_int "stale with" ra.Robustness.stale_with rb.Robustness.stale_with;
                check_true "same switch instant"
                  (ra.Robustness.switch_time = rb.Robustness.switch_time);
                check_true "same costs"
                  (ra.Robustness.recovered_cost = rb.Robustness.recovered_cost
                  && ra.Robustness.frozen_cost = rb.Robustness.frozen_cost)
            | _ -> Alcotest.fail "recovery outcome missing")
          s1.Robustness.outcomes s2.Robustness.outcomes);
    test "the markdown report renders the online-recovery table" (fun () ->
        let s = Lazy.force recovery_summary in
        let md = Fault.Fault_report.markdown_section s in
        check_true "section present" (contains md "### Online recovery");
        check_true "scenario rows" (contains md "failstop_P0");
        check_true "cost column" (contains md "post-switch cost"));
  ]

(* ------------------------------------------------------------------ *)

module Standby = Exec.Standby

(* the fork/join fixture again: every single-operator failover is
   feasible there, so P0 has a standby plan to run concurrently *)
let standby_fj =
  lazy
    (let alg, arch, d, nominal, exe = fj () in
     let table =
       Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
     in
     match Degrade.standby_plan_for table ~nominal ~operator:"P0" with
     | Some plan -> (arch, d, exe, plan)
     | None -> failwith "expected a feasible standby plan for P0")

let standby_config ?(injection = Injection.none) ?(iterations = 12) d =
  {
    Machine.default_config with
    law = TL.Wcet;
    iterations;
    durations = Some d;
    injection;
    recovery = Recovery.make ~period:0.5 ();
  }

let standby_tests =
  [
    test "zero faults: every vote is primary and nothing takes over" (fun () ->
        let _, d, exe, plan = Lazy.force standby_fj in
        let config = standby_config ~iterations:10 d in
        let tr = Standby.run ~config ~protects:"P0" ~standby:plan.Degrade.executive exe in
        let p, s, h = Standby.tally tr in
        check_int "all primary" 10 p;
        check_int "no standby votes" 0 s;
        check_int "no held votes" 0 h;
        check_true "no takeover" (tr.Standby.takeover = None);
        let plain = Machine.run ~config exe in
        List.iter
          (fun (op, voted) ->
            check_true "voted instants equal the plain executive's"
              (compare voted (Machine.instants plain op) = 0))
          (Standby.actuated_instants tr));
    test "a fail-stop takes over with zero blackout and pins on confirmation" (fun () ->
        let arch, d, exe, plan = Lazy.force standby_fj in
        let inj =
          Scenario.injection
            (Scenario.make ~name:"kill_P0" ~seed:9
               [ Scenario.Processor_failstop { operator = "P0"; at = 0.9 } ])
            ~architecture:arch
        in
        let config = standby_config ~injection:inj d in
        let tr = Standby.run ~config ~protects:"P0" ~standby:plan.Degrade.executive exe in
        let k =
          match tr.Standby.takeover with
          | None -> Alcotest.fail "expected a takeover"
          | Some (k, t) ->
              (* the release spanning the 0.9 failure already votes
                 standby: no blackout period between the streams *)
              check_true "takeover at the failing release" (k <= 2);
              check_true "actuation instant dated" (Float.is_finite t);
              k
        in
        let votes = Standby.votes tr in
        Array.iteri
          (fun i v ->
            if i < k then check_true "primary before the failure" (v = Standby.Primary)
            else check_true "standby from the takeover on" (v = Standby.Standby))
          votes;
        check_int "one decision per iteration" config.Machine.iterations
          (Array.length tr.Standby.decisions);
        check_true "the voter's pin is dated on heartbeat evidence"
          (List.exists
             (function
               | Recovery.Voter_switched { operator = "P0"; _ } -> true | _ -> false)
             tr.Standby.events);
        check_true "confirmation precedes it in the same timeline"
          (List.exists
             (function
               | Recovery.Failstop_confirmed { operator = "P0"; _ } -> true
               | _ -> false)
             tr.Standby.events);
        check_true "events chronological"
          (List.sort Recovery.compare_event tr.Standby.events = tr.Standby.events);
        (* the whole construction reproduces bit-for-bit (structural
           compare: Held decisions date their instant nan) *)
        let again =
          Standby.run ~config ~protects:"P0" ~standby:plan.Degrade.executive exe
        in
        check_true "decisions reproduce" (compare tr.Standby.decisions again.Standby.decisions = 0);
        check_true "events reproduce" (compare tr.Standby.events again.Standby.events = 0));
    test "protects must name an operator of the primary architecture" (fun () ->
        let _, d, exe, plan = Lazy.force standby_fj in
        check_raises_invalid "unknown operator" (fun () ->
            ignore
              (Standby.run ~config:(standby_config d) ~protects:"P9"
                 ~standby:plan.Degrade.executive exe)));
    qtest "zero faults: the voted stream is the plain executive's, bit for bit" ~count:30
      QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 12))
      (fun (seed, iterations) ->
        let _, d, exe, plan = Lazy.force standby_fj in
        let config =
          {
            Machine.default_config with
            iterations;
            seed;
            durations = Some d;
            recovery = Recovery.make ~period:0.5 ();
          }
        in
        let tr = Standby.run ~config ~protects:"P0" ~standby:plan.Degrade.executive exe in
        let plain = Machine.run ~config exe in
        let p, s, h = Standby.tally tr in
        p = iterations && s = 0 && h = 0
        && tr.Standby.takeover = None
        && List.for_all
             (fun (op, voted) -> compare voted (Machine.instants plain op) = 0)
             (Standby.actuated_instants tr));
  ]

let standby_summary =
  lazy
    (let architecture = dc_arch () in
     let scenarios =
       [
         Scenario.make ~name:"failstop_P0" ~seed:42
           [ Scenario.Processor_failstop { operator = "P0"; at = 0.2 } ];
       ]
     in
     Robustness.evaluate ~iterations:40 ~standby:true
       ~recovery:(Recovery.make ~period:0.05 ())
       ~design:(dc_design ()) ~architecture ~durations:(dc_durations ()) ~scenarios ())

let standby_robustness_tests =
  [
    test "the three-way comparison favours the hot standby" (fun () ->
        let s = Lazy.force standby_summary in
        let o = List.hd s.Robustness.outcomes in
        match o.Robustness.recovery with
        | Some { Robustness.standby = Some sb; _ } ->
            check_int "every period voted" 40
              (sb.Robustness.vote_primary + sb.Robustness.vote_standby
             + sb.Robustness.vote_held);
            check_true "takeover happened" (sb.Robustness.takeover <> None);
            (match
               ( sb.Robustness.standby_post_cost,
                 sb.Robustness.switch_post_cost,
                 sb.Robustness.frozen_post_cost )
             with
            | Some st, Some sw, Some fr ->
                check_true "hot standby strictly below blackout-then-switch" (st < sw);
                (* freezing can win on a short window (the held u happens
                   to park the plant near the reference); the acceptance
                   bar is only standby vs switch *)
                check_true "frozen cost finite" (Float.is_finite fr)
            | _ -> Alcotest.fail "expected all three post-failure costs");
            check_int "full vote log kept" 40 (List.length sb.Robustness.decisions)
        | _ -> Alcotest.fail "expected a standby outcome");
    test "the markdown report renders the standby table and vote log" (fun () ->
        let s = Lazy.force standby_summary in
        let md = Fault.Fault_report.markdown_section s in
        check_true "section present" (contains md "### Hot standby");
        check_true "vote log present" (contains md "Vote log — failstop_P0");
        check_true "switch evidence listed" (contains md "evidence:");
        check_true "three-way cost column"
          (contains md "post-failure cost (standby / switch / frozen)"));
  ]

(* ------------------------------------------------------------------ *)

let slack_of_policy p (c : Sched.comm_slot) =
  Recovery.worst_case_retry_time p ~transfer_duration:c.Sched.cm_duration

let slack_tests =
  [
    test "insert_slack reserves the retry window on every transfer" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p = Recovery.make ~heartbeat_timeout:0. ~period:0.1 () in
        let slacked = Sched.insert_slack ~slack_of:(slack_of_policy p) sched in
        List.iter
          (fun (c : Sched.comm_slot) ->
            check_true "window at least the worst retry time"
              (Sched.retry_slack c +. 1e-9 >= slack_of_policy p c);
            check_true "reads never precede completion"
              (Sched.read_offset c +. 1e-9 >= c.Sched.cm_start +. c.Sched.cm_duration))
          slacked.Sched.comm;
        check_true "starts only move later" (slacked.Sched.makespan >= sched.Sched.makespan);
        check_true "still fits the period" (Sched.fits_period slacked);
        check_false "the retimed schedule revalidates"
          (Verify.Diag.has_errors (Verify.Sched_rules.check slacked)));
    test "SCHED012 rejects a read planned before the transfer completes" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let early =
          List.map
            (fun (c : Sched.comm_slot) -> { c with Sched.cm_read = c.Sched.cm_start })
            sched.Sched.comm
        in
        let forged = { sched with Sched.comm = early } in
        let diags = Verify.Sched_rules.check forged in
        check_true "SCHED012 raised" (has "SCHED012" diags);
        check_true "as an error" (Verify.Diag.has_errors diags);
        check_raises_invalid "make refuses the forged fixture" (fun () ->
            ignore
              (Sched.make ~algorithm:sched.Sched.algorithm
                 ~architecture:sched.Sched.architecture ~comp:sched.Sched.comp
                 ~comm:early)));
    test "the static-table executor samples at the slacked read offsets" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p = Recovery.make ~heartbeat_timeout:0. ~period:0.1 () in
        let slacked = Sched.insert_slack ~slack_of:(slack_of_policy p) sched in
        let exe = Aaa.Codegen.generate slacked in
        let inj = Injection.make ~transfer_lost:always_lost () in
        let tr =
          Async.run
            ~config:{ Async.default_config with iterations = 20; injection = inj;
                      Async.recovery = p }
            exe
        in
        check_int "every drop recovered" 40 tr.Async.recovered_transfers;
        (* the reserved window absorbs the retry: unlike the unslacked
           schedule, the planned reads now land after the retried
           payload, so freshness holds *)
        check_int "no freshness violations" 0 tr.Async.violations);
    test "REC005 fires on the unslacked schedule and insert_slack silences it" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        let p = Recovery.make ~heartbeat_timeout:0. ~period:0.1 () in
        let before = Verify.Recovery_rules.check p sched in
        check_true "REC005 before" (has "REC005" before);
        check_false "a missing declaration is only a warning" (has "REC006" before);
        let slacked = Sched.insert_slack ~slack_of:(slack_of_policy p) sched in
        let after = Verify.Recovery_rules.check p slacked in
        check_false "REC005 silenced" (has "REC005" after);
        check_false "no REC006 either" (has "REC006" after));
    test "REC006 rejects a declared-but-insufficient window (forged fixture)" (fun () ->
        let _, _, _, sched, _ = dist_chain () in
        (* declare a 0.1 ms window, then verify against a policy whose
           worst-case retry time dwarfs it *)
        let tiny = Sched.insert_slack ~slack_of:(fun _ -> 1e-4) sched in
        let greedy = Recovery.make ~max_retries:5 ~backoff_base:0.01 ~period:0.1 () in
        let diags = Verify.Recovery_rules.check greedy tiny in
        check_true "REC006 raised" (has "REC006" diags);
        check_true "as an error" (Verify.Diag.has_errors diags);
        check_false "not the undeclared warning" (has "REC005" diags));
    test "run_all ~retry_slack audits the slacked deployment" (fun () ->
        let design = dc_design () in
        (* the two-processor deployment: transfers exist, so the
           default policy's retries overrun the planned reads *)
        let architecture = dc_arch () and durations = dc_durations () in
        let p = Recovery.make ~period:0.05 () in
        let plain = Verify.run_all ~architecture ~durations ~recovery:p design in
        check_true "REC005 on the unslacked deployment" (has "REC005" plain);
        let slacked =
          Verify.run_all ~architecture ~durations ~recovery:p ~retry_slack:true design
        in
        check_false "retry_slack closes the gap" (has "REC005" slacked);
        check_false "and declares enough" (has "REC006" slacked);
        check_false "no errors introduced" (Verify.Diag.has_errors slacked));
  ]

let suites =
  [
    ("recovery.policy", policy_tests);
    ("recovery.machine", machine_tests);
    ("recovery.async", async_tests);
    ("recovery.clip", clip_tests);
    ("recovery.verify", verify_tests);
    ("recovery.robustness", robustness_tests);
    ("recovery.standby", standby_tests);
    ("recovery.standby_robustness", standby_robustness_tests);
    ("recovery.slack", slack_tests);
  ]
