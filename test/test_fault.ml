open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation
module TL = Exec.Timing_law
module Machine = Exec.Machine
module Scenario = Fault.Scenario
module Degrade = Fault.Degrade
module Robustness = Fault.Robustness

(* The distributed sense → law → act chain of test_exec: sense and act
   on P0, law on P1, two transfers per iteration over the bus. *)
let chain () =
  let alg = Alg.create ~name:"chain" ~period:0.1 in
  let s = Alg.add_op alg ~name:"sense" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let c = Alg.add_op alg ~name:"law" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
  Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
  let arch = Arch.bus_topology ~time_per_word:0.002 [ "P0"; "P1" ] in
  let d = Dur.create () in
  Dur.set d ~op:"sense" ~operator:"P0" 0.01;
  Dur.set d ~op:"law" ~operator:"P1" 0.01;
  Dur.set d ~op:"act" ~operator:"P0" 0.01;
  let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (alg, arch, sched, Aaa.Codegen.generate sched, (s, c, a))

let fork_join_procs = [ "P0"; "P1"; "P2" ]

let fork_join () =
  let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 fork_join_procs in
  let alg, d = Aaa.Workloads.fork_join ~period:0.5 ~branches:6 ~operators:fork_join_procs () in
  (alg, arch, d)

let loss_scenario ?(seed = 11) prob =
  Scenario.make ~name:"loss" ~seed [ Scenario.Message_loss { medium = None; prob } ]

let scenario_tests =
  [
    test "validation rejects malformed events" (fun () ->
        check_raises_invalid "prob > 1" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [ Scenario.Message_loss { medium = None; prob = 1.5 } ]));
        check_raises_invalid "empty window" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [ Scenario.Medium_outage { medium = "bus"; from_t = 2.; until_t = 1. } ]));
        check_raises_invalid "factor <= 1" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [
                   Scenario.Overrun_burst
                     { start_prob = 0.1; stop_prob = 0.1; overrun_prob = 0.5; factor = 1.0 };
                 ]));
        check_raises_invalid "negative fail time" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [ Scenario.Processor_failstop { operator = "P0"; at = -1. } ])));
    test "injection rejects names the architecture does not have" (fun () ->
        let _, arch, _, _, _ = chain () in
        check_raises_invalid "operator" (fun () ->
            ignore
              (Scenario.injection
                 (Scenario.make ~name:"x" ~seed:0
                    [ Scenario.Processor_failstop { operator = "P9"; at = 0. } ])
                 ~architecture:arch));
        check_raises_invalid "medium" (fun () ->
            ignore
              (Scenario.injection
                 (Scenario.make ~name:"x" ~seed:0
                    [ Scenario.Medium_outage { medium = "can7"; from_t = 0.; until_t = 1. } ])
                 ~architecture:arch)));
    test "the nominal scenario compiles to the null injection" (fun () ->
        let _, arch, _, _, _ = chain () in
        let inj = Scenario.injection (Scenario.nominal ~seed:3) ~architecture:arch in
        check_true "physically none" (Exec.Injection.is_none inj));
    test "loss sampling is a pure function of seed and coordinates" (fun () ->
        let _, arch, sched, _, _ = chain () in
        let decisions inj =
          List.concat_map
            (fun slot ->
              List.init 50 (fun k -> inj.Exec.Injection.transfer_lost ~iteration:k ~slot))
            sched.Sched.comm
        in
        let s = loss_scenario 0.5 in
        (* two independent compilations agree bit-for-bit, in any order *)
        let d1 = decisions (Scenario.injection s ~architecture:arch) in
        let d2 = List.rev (decisions (Scenario.injection s ~architecture:arch)) in
        check_true "same decisions" (d1 = List.rev d2);
        check_true "some lost" (List.exists Fun.id d1);
        check_true "some delivered" (List.exists not d1);
        let other = decisions (Scenario.injection (loss_scenario ~seed:12 0.5) ~architecture:arch) in
        check_true "seed matters" (d1 <> other));
    test "single_processor_failures covers every operator once" (fun () ->
        let _, arch, _ = fork_join () in
        let scenarios = Scenario.single_processor_failures ~at:0.25 ~seed:100 arch in
        check_int "one per operator" (Arch.operator_count arch) (List.length scenarios);
        List.iteri
          (fun i (s : Scenario.t) ->
            check_int "stride-1 seeds" (100 + i) s.Scenario.seed;
            check_int "one failure" 1 (List.length (Scenario.failed_operators s)))
          scenarios;
        check_true "all operators covered"
          (List.sort compare (List.concat_map Scenario.failed_operators scenarios)
          = List.sort compare fork_join_procs));
  ]

let machine_tests =
  [
    test "certain loss marks every remote read stale without touching time" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 50 } in
        let clean = Machine.run ~config:base exe in
        let inj = Scenario.injection (loss_scenario 1.0) ~architecture:arch in
        let trace = Machine.run ~config:{ base with injection = inj } exe in
        (* two transfers per iteration, all lost, all consumers stale *)
        check_int "lost" 100 trace.Machine.lost_transfers;
        check_int "stale" 100 trace.Machine.stale_reads;
        check_int "clean run counts nothing" 0 clean.Machine.lost_transfers;
        (* a lost transfer still consumes its slot: timing is unchanged *)
        check_vec ~eps:0. "identical timing" clean.Machine.iteration_end
          trace.Machine.iteration_end);
    test "fail-stop freezes the operator; downstream reads go stale" (fun () ->
        let _, arch, _, exe, (_, law, _) = chain () in
        let s =
          Scenario.make ~name:"kill_P1" ~seed:0
            [ Scenario.Processor_failstop { operator = "P1"; at = 0. } ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let config = { Machine.default_config with law = TL.Wcet; iterations = 40; injection = inj } in
        let trace = Machine.run ~config exe in
        let failed =
          List.filter (fun oe -> oe.Machine.oe_failed) trace.Machine.ops
        in
        check_int "law never executes" 40 (List.length failed);
        check_true "only P1's operation fails"
          (List.for_all (fun oe -> oe.Machine.oe_op = law) failed);
        Array.iter
          (fun t -> check_true "instants are nan" (Float.is_nan t))
          (Machine.instants trace law);
        (* only the law → act transfer carries a dead producer's value *)
        check_int "lost" 40 trace.Machine.lost_transfers;
        check_int "stale" 40 trace.Machine.stale_reads;
        check_true "still order-conformant" (Machine.order_conformant trace));
    test "a medium outage drops exactly the transfers departing inside it" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let s =
          Scenario.make ~name:"outage" ~seed:0
            [ Scenario.Medium_outage { medium = "bus"; from_t = 0.; until_t = 0.05 } ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let config = { Machine.default_config with law = TL.Wcet; iterations = 30; injection = inj } in
        let trace = Machine.run ~config exe in
        (* at WCET replay both iteration-0 transfers start before 0.05;
           every later iteration starts after the window closes *)
        check_int "iteration 0 loses both transfers" 2 trace.Machine.lost_transfers;
        check_int "both reads stale" 2 trace.Machine.stale_reads);
    test "an overrun burst stretches executions deterministically" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let s =
          Scenario.make ~name:"burst" ~seed:5
            [
              Scenario.Overrun_burst
                { start_prob = 1.0; stop_prob = 0.0; overrun_prob = 1.0; factor = 2.0 };
            ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let base = { Machine.default_config with law = TL.Wcet; iterations = 20 } in
        let clean = Machine.run ~config:base exe in
        let t1 = Machine.run ~config:{ base with injection = inj } exe in
        let t2 = Machine.run ~config:{ base with injection = inj } exe in
        Array.iteri
          (fun k e ->
            check_true "every iteration runs longer"
              (t1.Machine.iteration_end.(k) > e +. 0.009))
          clean.Machine.iteration_end;
        check_vec ~eps:0. "bit-for-bit reproducible" t1.Machine.iteration_end
          t2.Machine.iteration_end);
    test "injected bookkeeping is reproducible bit-for-bit" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let inj = Scenario.injection (loss_scenario 0.3) ~architecture:arch in
        let config = { Machine.default_config with iterations = 80; seed = 9; injection = inj } in
        let t1 = Machine.run ~config exe in
        let t2 = Machine.run ~config exe in
        check_int "same losses" t1.Machine.lost_transfers t2.Machine.lost_transfers;
        check_int "same stale reads" t1.Machine.stale_reads t2.Machine.stale_reads;
        check_true "losses occurred" (t1.Machine.lost_transfers > 0);
        check_vec ~eps:0. "same timing" t1.Machine.iteration_end t2.Machine.iteration_end);
  ]

let async_tests =
  [
    test "injected overrun bursts violate freshness in the TT baseline" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let s =
          Scenario.make ~name:"burst" ~seed:2
            [
              Scenario.Overrun_burst
                { start_prob = 1.0; stop_prob = 0.0; overrun_prob = 1.0; factor = 3.0 };
            ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let config =
          { Exec.Async.default_config with iterations = 20; law = TL.Wcet; injection = inj }
        in
        let trace = Exec.Async.run ~config exe in
        (* 3x WCET pushes every producer past its bus slot / read instant *)
        check_true "remote reads checked" (trace.Exec.Async.remote_consumptions > 0);
        check_int "every remote read is stale" trace.Exec.Async.remote_consumptions
          trace.Exec.Async.violations;
        let again = Exec.Async.run ~config exe in
        check_int "deterministic count" trace.Exec.Async.violations again.Exec.Async.violations);
    test "certain loss on the wire violates every remote read" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let inj = Scenario.injection (loss_scenario 1.0) ~architecture:arch in
        let config =
          { Exec.Async.default_config with iterations = 25; law = TL.Wcet; injection = inj }
        in
        let trace = Exec.Async.run ~config exe in
        check_int "all transfers dropped" 50 trace.Exec.Async.lost_transfers;
        check_int "all reads stale" trace.Exec.Async.remote_consumptions
          trace.Exec.Async.violations;
        check_true "reads were checked" (trace.Exec.Async.remote_consumptions > 0));
    test "a fail-stopped producer starves its consumers" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let s =
          Scenario.make ~name:"kill_P1" ~seed:0
            [ Scenario.Processor_failstop { operator = "P1"; at = 0. } ]
        in
        let inj = Scenario.injection s ~architecture:arch in
        let config =
          { Exec.Async.default_config with iterations = 30; law = TL.Wcet; injection = inj }
        in
        let trace = Exec.Async.run ~config exe in
        check_true "stale reads appear" (trace.Exec.Async.violations > 0);
        let again = Exec.Async.run ~config exe in
        check_int "deterministic" trace.Exec.Async.violations again.Exec.Async.violations);
    test "partial injected loss counts are deterministic and bounded" (fun () ->
        let _, arch, _, exe, _ = chain () in
        let inj = Scenario.injection (loss_scenario ~seed:21 0.4) ~architecture:arch in
        let config =
          { Exec.Async.default_config with iterations = 100; law = TL.Wcet; injection = inj }
        in
        let t1 = Exec.Async.run ~config exe in
        let t2 = Exec.Async.run ~config exe in
        check_int "same violations" t1.Exec.Async.violations t2.Exec.Async.violations;
        check_int "same losses" t1.Exec.Async.lost_transfers t2.Exec.Async.lost_transfers;
        check_true "some lost" (t1.Exec.Async.lost_transfers > 0);
        check_true "not all lost" (t1.Exec.Async.lost_transfers < 200);
        check_true "violations bounded by checked reads"
          (t1.Exec.Async.violations <= t1.Exec.Async.remote_consumptions));
  ]

let degrade_tests =
  [
    test "restrict drops the operator and keeps the surviving bus" (fun () ->
        let _, arch, _ = fork_join () in
        let d = Degrade.restrict arch { Degrade.operators = [ "P1" ]; media = [] } in
        check_int "two survivors" 2 (Arch.operator_count d);
        check_true "P1 gone" (Arch.find_operator d "P1" = None);
        check_int "bus survives with two drops" 1 (Arch.medium_count d);
        Arch.validate d);
    test "restrict rejects unknown names and total destruction" (fun () ->
        let _, arch, _ = fork_join () in
        check_raises_invalid "unknown operator" (fun () ->
            ignore (Degrade.restrict arch { Degrade.operators = [ "P9" ]; media = [] }));
        check_raises_invalid "no survivors" (fun () ->
            ignore
              (Degrade.restrict arch { Degrade.operators = fork_join_procs; media = [] })));
    test "a point-to-point link dies with either end, a bus survives" (fun () ->
        let full = Arch.fully_connected ~time_per_word:0.001 [ "A"; "B"; "C" ] in
        let d = Degrade.restrict full { Degrade.operators = [ "C" ]; media = [] } in
        check_int "only the A-B link left" 1 (Arch.medium_count d);
        check_int "two survivors" 2 (Arch.operator_count d));
    test "replan never places work on the excluded operator" (fun () ->
        let alg, arch, d = fork_join () in
        let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let sched =
          Degrade.replan ~algorithm:alg ~architecture:arch ~durations:d ~nominal
            ~exclusion:{ Degrade.operators = [ "P1" ]; media = [] }
            ()
        in
        List.iter
          (fun (cs : Sched.comp_slot) ->
            check_true "not on P1"
              (Arch.operator_name sched.Sched.architecture cs.Sched.cs_operator <> "P1"))
          sched.Sched.comp);
    test "passive replicas catch the operations of a dead operator" (fun () ->
        let alg, arch, d = fork_join () in
        (* nominally force fusion onto P0, declare its replica on P2 *)
        let nominal =
          Adq.run ~pins:[ ("fusion", "P0") ] ~algorithm:alg ~architecture:arch ~durations:d ()
        in
        let sched =
          Degrade.replan ~replicas:[ ("fusion", "P2") ] ~algorithm:alg ~architecture:arch
            ~durations:d ~nominal
            ~exclusion:{ Degrade.operators = [ "P0" ]; media = [] }
            ()
        in
        let fusion =
          List.find (fun op -> Alg.op_name alg op = "fusion") (Alg.ops alg)
        in
        check_true "fusion runs on its replica"
          (Arch.operator_name sched.Sched.architecture (Sched.operator_of sched fusion) = "P2"));
    test "failover table covers every single failure and fits the period" (fun () ->
        (* the acceptance scenario: fork_join on three processors *)
        let alg, arch, d = fork_join () in
        let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let table =
          Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
        in
        check_int "one row per operator" (Arch.operator_count arch) (List.length table);
        List.iter
          (fun (f : Degrade.failover) ->
            check_true "feasible" (f.Degrade.schedule <> None);
            check_true "fits the 0.5 s period" f.Degrade.fits;
            check_true "degraded but finite" (Float.is_finite f.Degrade.makespan))
          table;
        let again =
          Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
        in
        List.iter2
          (fun (a : Degrade.failover) (b : Degrade.failover) ->
            check_true "bit-for-bit equal makespans" (a.Degrade.makespan = b.Degrade.makespan))
          table again);
    test "a seeded single-failure scenario yields a fitting degraded schedule" (fun () ->
        let alg, arch, d = fork_join () in
        let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let scenario = List.hd (Scenario.single_processor_failures ~seed:7 arch) in
        let replay () =
          Degrade.replan ~algorithm:alg ~architecture:arch ~durations:d ~nominal
            ~exclusion:(Degrade.exclusion_of scenario) ()
        in
        let sched = replay () in
        check_true "fits the period" (Sched.fits_period sched);
        check_true "slower than nominal" (sched.Sched.makespan >= nominal.Sched.makespan);
        check_float ~eps:0. "reproducible from the seed" sched.Sched.makespan
          (replay ()).Sched.makespan);
    test "an operation with no surviving operator is infeasible, not fatal" (fun () ->
        let alg, arch, sched, _, _ = chain () in
        ignore sched;
        (* law only runs on P1: failing P1 cannot be replanned *)
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let table =
          Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
        in
        let row name = List.find (fun f -> f.Degrade.failed_operator = name) table in
        check_true "losing P1 is infeasible" ((row "P1").Degrade.schedule = None);
        check_false "and cannot fit" (row "P1").Degrade.fits);
  ]

(* The lifecycle fixture: the dc-motor PID loop on two processors. *)
let dc_design () =
  Lifecycle.Design.pid_loop ~name:"dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
    ~ts:0.05 ~reference:1. ~horizon:2. ()

let dc_durations () =
  let d = Dur.create () in
  let all = [ "P0"; "P1" ] in
  Dur.set_everywhere d ~op:"reference" ~operators:all 0.001;
  Dur.set_everywhere d ~op:"sample_y" ~operators:all 0.004;
  Dur.set_everywhere d ~op:"pid" ~operators:all 0.012;
  Dur.set_everywhere d ~op:"hold_u" ~operators:all 0.004;
  d

let dc_arch () = Arch.bus_topology ~time_per_word:0.002 ~latency:0.001 [ "P0"; "P1" ]

let dc_summary =
  (* computed once: the co-simulations dominate the suite's runtime *)
  lazy
    (let architecture = dc_arch () in
     let scenarios =
       Scenario.single_processor_failures ~at:0.5 ~seed:42 architecture
       @ [ loss_scenario ~seed:44 0.2 ]
     in
     Robustness.evaluate ~iterations:40 ~design:(dc_design ()) ~architecture
       ~durations:(dc_durations ()) ~scenarios ())

let robustness_tests =
  [
    test "every single failure has a feasible failover meeting the period" (fun () ->
        let s = Lazy.force dc_summary in
        check_int "three scenarios" 3 (List.length s.Robustness.outcomes);
        check_true "all feasible" s.Robustness.all_feasible;
        List.iter
          (fun (o : Robustness.outcome) ->
            if o.Robustness.replanned then begin
              check_false "not infeasible" o.Robustness.infeasible;
              check_true "failover schedule produced" (o.Robustness.schedule <> None);
              check_true "fits the period" o.Robustness.fits_period
            end
            else check_true "timing scenarios keep the mapping" (o.Robustness.schedule = None))
          s.Robustness.outcomes);
    test "degradation is quantified against the nominal implemented cost" (fun () ->
        let s = Lazy.force dc_summary in
        check_true "nominal cost positive" (s.Robustness.nominal_cost > 0.);
        check_true "ideal below implemented" (s.Robustness.ideal_cost < s.Robustness.nominal_cost);
        List.iter
          (fun (o : Robustness.outcome) ->
            check_true "cost finite" (Float.is_finite o.Robustness.cost);
            check_float ~eps:1e-9 "degradation restates the cost ratio"
              ((o.Robustness.cost -. s.Robustness.nominal_cost)
               /. s.Robustness.nominal_cost *. 100.)
              o.Robustness.degradation_pct;
            check_true "worst bounds each"
              (s.Robustness.worst_degradation_pct >= o.Robustness.degradation_pct -. 1e-12))
          s.Robustness.outcomes);
    test "the evaluation reproduces bit-for-bit from the same seeds" (fun () ->
        let s1 = Lazy.force dc_summary in
        let architecture = dc_arch () in
        let scenarios =
          Scenario.single_processor_failures ~at:0.5 ~seed:42 architecture
          @ [ loss_scenario ~seed:44 0.2 ]
        in
        let s2 =
          Robustness.evaluate ~iterations:40 ~design:(dc_design ()) ~architecture
            ~durations:(dc_durations ()) ~scenarios ()
        in
        check_float ~eps:0. "nominal cost" s1.Robustness.nominal_cost s2.Robustness.nominal_cost;
        List.iter2
          (fun (a : Robustness.outcome) (b : Robustness.outcome) ->
            check_float ~eps:0. "cost" a.Robustness.cost b.Robustness.cost;
            check_int "lost" a.Robustness.lost_transfers b.Robustness.lost_transfers;
            check_int "stale" a.Robustness.stale_reads b.Robustness.stale_reads;
            check_int "overruns" a.Robustness.overruns b.Robustness.overruns)
          s1.Robustness.outcomes s2.Robustness.outcomes;
        check_float ~eps:0. "worst" s1.Robustness.worst_degradation_pct
          s2.Robustness.worst_degradation_pct);
    test "the executive side of a fail-stop shows up in the counters" (fun () ->
        let s = Lazy.force dc_summary in
        (* at least one processor hosts a remote producer: killing it
           must surface lost transfers and stale reads *)
        check_true "some scenario loses transfers"
          (List.exists
             (fun (o : Robustness.outcome) ->
               o.Robustness.replanned && o.Robustness.lost_transfers > 0)
             s.Robustness.outcomes));
    test "an empty scenario list is rejected" (fun () ->
        check_raises_invalid "no scenarios" (fun () ->
            ignore
              (Robustness.evaluate ~design:(dc_design ()) ~architecture:(dc_arch ())
                 ~durations:(dc_durations ()) ~scenarios:[] ())));
    test "the markdown robustness section reports the table" (fun () ->
        let s = Lazy.force dc_summary in
        let md = Fault.Fault_report.markdown_section s in
        check_true "section header" (contains md "## Robustness");
        check_true "scenario rows" (contains md "failstop_P0");
        check_true "verdict" (contains md "degradation"));
    test "the lifecycle report embeds the robustness section" (fun () ->
        let s = Lazy.force dc_summary in
        let design = dc_design () in
        let c =
          Lifecycle.Methodology.evaluate ~design ~architecture:(dc_arch ())
            ~durations:(dc_durations ()) ()
        in
        let md =
          Lifecycle.Report.markdown ~robustness:(Fault.Fault_report.markdown_section s) design c
        in
        check_true "cost section still present" (contains md "## Cost comparison");
        check_true "robustness appended" (contains md "## Robustness"));
    test "failover rows render in markdown" (fun () ->
        let alg, arch, d = fork_join () in
        let nominal = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let table =
          Degrade.failover_table ~algorithm:alg ~architecture:arch ~durations:d ~nominal ()
        in
        let md = Fault.Fault_report.failover_markdown table in
        check_true "header" (contains md "failed operator");
        List.iter
          (fun p -> check_true ("row " ^ p) (contains md p))
          fork_join_procs);
  ]

let suites =
  [
    ("fault.scenario", scenario_tests);
    ("fault.machine_injection", machine_tests);
    ("fault.async_injection", async_tests);
    ("fault.degrade", degrade_tests);
    ("fault.robustness", robustness_tests);
  ]
