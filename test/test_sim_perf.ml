open Helpers
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module B = Dataflow.Block

(* The compiled hot path (precompiled wiring, reusable contexts,
   dirty-set re-evaluation, in-place integration) must be
   observationally *identical* to the straightforward interpretation
   that [Engine.create ~debug:true] preserves: same probe samples to
   the last bit, same event log, same step count.  Every fixture below
   is built twice — once per mode — and the two runs are compared
   structurally ([compare ... = 0], so NaN samples compare equal). *)

(* ------------------------------------------------------------------ *)
(* golden-equivalence machinery *)

let check_same_trace name e_ref e_new =
  let tr_r = Sim.Engine.probe e_ref name and tr_n = Sim.Engine.probe e_new name in
  check_int (name ^ ": sample count") (Sim.Trace.length tr_r) (Sim.Trace.length tr_n);
  let times_r = Sim.Trace.times tr_r and times_n = Sim.Trace.times tr_n in
  let vals_r = Sim.Trace.values tr_r and vals_n = Sim.Trace.values tr_n in
  Array.iteri
    (fun i t ->
      if compare t times_n.(i) <> 0 then
        Alcotest.failf "%s: sample %d at t=%.17g (debug) vs t=%.17g (compiled)" name i t
          times_n.(i);
      if compare vals_r.(i) vals_n.(i) <> 0 then
        Alcotest.failf "%s: values differ at sample %d (t=%.17g)" name i t)
    times_r

(* [build ~debug] must construct a fresh graph + engine (blocks are
   stateful, so the two engines cannot share instances). *)
let check_golden ?(t_end = [ 1. ]) ~probes build =
  let run debug =
    let e = build ~debug in
    List.iter (fun t -> Sim.Engine.run ~t_end:t e) t_end;
    e
  in
  let e_ref = run true in
  let e_new = run false in
  check_true "event logs identical"
    (Sim.Engine.event_log e_ref = Sim.Engine.event_log e_new);
  check_int "step counts identical" (Sim.Engine.steps e_ref) (Sim.Engine.steps e_new);
  check_true "final times identical"
    (compare (Sim.Engine.now e_ref) (Sim.Engine.now e_new) = 0);
  List.iter (fun name -> check_same_trace name e_ref e_new) probes

(* ------------------------------------------------------------------ *)
(* fixtures *)

(* event-dense: two incommensurate clocks, synchronization, divider,
   latch (NaN until the first event) and a discrete PID loop — the
   bench's sim_hot_loop_events diagram *)
let build_event_dense ~debug =
  let g = G.create () in
  let clock_fast = G.add g (E.clock ~period:0.01 ()) in
  let clock_slow = G.add g (E.clock ~period:0.013 ()) in
  let sync = G.add g (E.synchronization ~inputs:2 ()) in
  let div3 = G.add g (E.divider ~factor:3 ()) in
  let counter = G.add g (E.event_counter ()) in
  let latch = G.add g (E.event_latch_time ()) in
  let reference = G.add g (C.constant [| 1. |]) in
  let wave = G.add g (C.sine_source ~freq_hz:0.5 ()) in
  let sh_y = G.add g (C.sample_hold 1) in
  let pid =
    G.add g
      (C.pid
         (Control.Pid.create ~gains:{ Control.Pid.kp = 2.; ki = 1.; kd = 0. } ~ts:0.01 ()))
  in
  let sh_u = G.add g (C.sample_hold 1) in
  let delay = G.add g (C.unit_delay [| 0. |]) in
  G.connect_data g ~src:(wave, 0) ~dst:(sh_y, 0);
  G.connect_data g ~src:(reference, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sh_y, 0) ~dst:(pid, 1);
  G.connect_data g ~src:(pid, 0) ~dst:(sh_u, 0);
  G.connect_data g ~src:(sh_u, 0) ~dst:(delay, 0);
  G.connect_event g ~src:(clock_fast, 0) ~dst:(sync, 0);
  G.connect_event g ~src:(clock_slow, 0) ~dst:(sync, 1);
  G.connect_event g ~src:(sync, 0) ~dst:(div3, 0);
  G.connect_event g ~src:(div3, 0) ~dst:(counter, 0);
  G.connect_event g ~src:(sync, 0) ~dst:(latch, 0);
  List.iter
    (fun b -> G.connect_event g ~src:(clock_fast, 0) ~dst:(b, 0))
    [ sh_y; pid; sh_u ];
  G.connect_event g ~src:(clock_slow, 0) ~dst:(delay, 0);
  let e = Sim.Engine.create ~debug g in
  Sim.Engine.add_probe e ~name:"u" ~block:sh_u ~port:0;
  Sim.Engine.add_probe e ~name:"count" ~block:counter ~port:0;
  Sim.Engine.add_probe e ~name:"latch" ~block:latch ~port:0;
  e

(* ODE-dense: sampled PID on a continuous 2-state DC motor (RKF45) *)
let build_ode_loop ~debug =
  let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
  let ts = 0.05 in
  let g = G.create () in
  let p = G.add g (C.lti_continuous ~x0:[| 0.; 0. |] plant) in
  let r = G.add g (C.constant [| 1. |]) in
  let sh = G.add g (C.sample_hold 1) in
  let pid =
    G.add g
      (C.pid (Control.Pid.create ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. } ~ts ()))
  in
  let hold = G.add g (C.sample_hold 1) in
  let clock = G.add g (E.clock ~period:ts ()) in
  G.connect_data g ~src:(p, 0) ~dst:(sh, 0);
  G.connect_data g ~src:(r, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sh, 0) ~dst:(pid, 1);
  G.connect_data g ~src:(pid, 0) ~dst:(hold, 0);
  G.connect_data g ~src:(hold, 0) ~dst:(p, 0);
  List.iter (fun b -> G.connect_event g ~src:(clock, 0) ~dst:(b, 0)) [ sh; pid; hold ];
  let e = Sim.Engine.create ~debug g in
  Sim.Engine.add_probe e ~name:"y" ~block:p ~port:0;
  e

(* zero-crossing: the canonical bouncing ball *)
let bouncing_ball ~h0 ~restitution =
  let rest = ref false in
  B.make ~name:"ball" ~out_widths:[| 1 |] ~cstate0:[| h0; 0. |] ~always_active:true
    ~derivatives:(fun ctx -> if !rest then [| 0.; 0. |] else [| ctx.B.cstate.(1); -9.81 |])
    ~surfaces:1
    ~crossings:(fun ctx -> if !rest then [| 1. |] else [| ctx.B.cstate.(0) |])
    ~on_crossing:(fun ctx ~surface:_ ~rising ->
      if rising then []
      else begin
        let v = ctx.B.cstate.(1) in
        let v' = -.restitution *. v in
        if v' < 0.05 then begin
          rest := true;
          [ B.Set_cstate [| 0.; 0. |] ]
        end
        else [ B.Set_cstate [| 1e-9; v' |] ]
      end)
    ~reset:(fun () -> rest := false)
    (fun ctx -> [| [| ctx.B.cstate.(0) |] |])

let build_bouncing_ball ~debug =
  let g = G.create () in
  let ball = G.add g (bouncing_ball ~h0:1. ~restitution:0.8) in
  let counter = G.add g (E.event_counter ()) in
  let zc = G.add g (E.zero_cross ~direction:`Falling ()) in
  G.connect_data g ~src:(ball, 0) ~dst:(zc, 0);
  G.connect_event g ~src:(zc, 0) ~dst:(counter, 0);
  let e = Sim.Engine.create ~debug g in
  Sim.Engine.add_probe e ~name:"h" ~block:ball ~port:0;
  Sim.Engine.add_probe e ~name:"bounces" ~block:counter ~port:0;
  e

(* drift regression: the output of a feedthrough block that is *not*
   always-active (the gain) drifts between events because its input is
   an integrator state.  The sampler must see the fresh value at each
   tick even though no event ever targets the gain. *)
let build_drift_chain ~debug =
  let g = G.create () in
  let src = G.add g (C.constant [| 1. |]) in
  let integ = G.add g (C.integrator [| 0. |]) in
  let gain = G.add g (C.gain 2.) in
  let sh = G.add g (C.sample_hold 1) in
  let clock = G.add g (E.clock ~period:0.25 ()) in
  G.connect_data g ~src:(src, 0) ~dst:(integ, 0);
  G.connect_data g ~src:(integ, 0) ~dst:(gain, 0);
  G.connect_data g ~src:(gain, 0) ~dst:(sh, 0);
  G.connect_event g ~src:(clock, 0) ~dst:(sh, 0);
  let e = Sim.Engine.create ~debug g in
  Sim.Engine.add_probe e ~name:"held" ~block:sh ~port:0;
  e

(* randomised event graphs: parameters drawn by QCheck, diagram built
   deterministically from them (twice — once per engine mode) *)
let build_random (p1, p2, factor, freq, fanout) ~debug =
  let g = G.create () in
  let c1 = G.add g (E.clock ~period:p1 ()) in
  let c2 = G.add g (E.clock ~period:p2 ()) in
  let sync = G.add g (E.synchronization ~inputs:2 ()) in
  let div_ = G.add g (E.divider ~factor ()) in
  let counter = G.add g (E.event_counter ()) in
  let latch = G.add g (E.event_latch_time ()) in
  let wave = G.add g (C.sine_source ~freq_hz:freq ()) in
  let sh = G.add g (C.sample_hold 1) in
  let delay = G.add g (C.unit_delay [| 0. |]) in
  G.connect_data g ~src:(wave, 0) ~dst:(sh, 0);
  G.connect_data g ~src:(sh, 0) ~dst:(delay, 0);
  G.connect_event g ~src:(c1, 0) ~dst:(sync, 0);
  G.connect_event g ~src:(c2, 0) ~dst:(sync, 1);
  G.connect_event g ~src:(sync, 0) ~dst:(div_, 0);
  G.connect_event g ~src:(div_, 0) ~dst:(counter, 0);
  G.connect_event g ~src:((if fanout then sync else div_), 0) ~dst:(latch, 0);
  G.connect_event g ~src:(c1, 0) ~dst:(sh, 0);
  G.connect_event g ~src:(c2, 0) ~dst:(delay, 0);
  let e = Sim.Engine.create ~debug g in
  Sim.Engine.add_probe e ~name:"sh" ~block:sh ~port:0;
  Sim.Engine.add_probe e ~name:"count" ~block:counter ~port:0;
  e

let golden_tests =
  [
    test "event-dense diagram matches debug engine bit-for-bit" (fun () ->
        check_golden ~t_end:[ 10. ] ~probes:[ "u"; "count"; "latch" ] build_event_dense);
    test "sampled PID / DC-motor loop matches debug engine bit-for-bit" (fun () ->
        check_golden ~t_end:[ 5. ] ~probes:[ "y" ] build_ode_loop);
    test "continuation runs (two horizons) match debug engine" (fun () ->
        check_golden ~t_end:[ 2.; 4. ] ~probes:[ "y" ] build_ode_loop);
    test "bouncing ball (zero-crossings) matches debug engine bit-for-bit" (fun () ->
        check_golden ~t_end:[ 3. ] ~probes:[ "h"; "bounces" ] build_bouncing_ball);
    test "reset + rerun matches a fresh debug run" (fun () ->
        let e_new = build_event_dense ~debug:false in
        Sim.Engine.run ~t_end:3. e_new;
        Sim.Engine.reset e_new;
        Sim.Engine.run ~t_end:3. e_new;
        let e_ref = build_event_dense ~debug:true in
        Sim.Engine.run ~t_end:3. e_ref;
        check_true "event logs identical"
          (Sim.Engine.event_log e_ref = Sim.Engine.event_log e_new);
        List.iter
          (fun name -> check_same_trace name e_ref e_new)
          [ "u"; "count"; "latch" ]);
    test "drifting feedthrough chain is re-sampled correctly" (fun () ->
        check_golden ~t_end:[ 1. ] ~probes:[ "held" ] build_drift_chain;
        (* and the absolute values are right: x(t)=t, gain 2, tick 0.25 *)
        let e = build_drift_chain ~debug:false in
        Sim.Engine.run ~t_end:1. e;
        match Sim.Trace.last (Sim.Engine.probe e "held") with
        | Some (_, v) -> check_float ~eps:1e-6 "held = 2 t" 2. v.(0)
        | None -> Alcotest.fail "no samples");
    qtest "random event diagrams match debug engine bit-for-bit" ~count:30
      QCheck2.Gen.(
        tup5 (float_range 0.004 0.05) (float_range 0.004 0.05) (int_range 1 4)
          (float_range 0.1 2.) bool)
      (fun params ->
        check_golden ~t_end:[ 0.5 ] ~probes:[ "sh"; "count" ] (build_random params);
        true);
  ]

(* ------------------------------------------------------------------ *)
(* in-place integrator vs allocating integrator, directly *)

let vdp t x =
  ignore t;
  [| x.(1); (0.8 *. (1. -. (x.(0) *. x.(0))) *. x.(1)) -. x.(0) |]

let vdp_ip t x ~dx =
  ignore t;
  dx.(0) <- x.(1);
  dx.(1) <- (0.8 *. (1. -. (x.(0) *. x.(0))) *. x.(1)) -. x.(0)

let ode_tests =
  let check_method name meth =
    test (name ^ ": integrate_inplace is bit-for-bit integrate") (fun () ->
        let x0 = [| 2.; 0. |] in
        let obs_a = ref [] and obs_b = ref [] in
        let xa =
          Numerics.Ode.integrate ~meth
            ~observer:(fun t x -> obs_a := (t, Array.copy x) :: !obs_a)
            vdp ~t0:0. ~t1:2. x0
        in
        let xb = Array.copy x0 in
        let ws = Numerics.Ode.workspace 2 in
        Numerics.Ode.integrate_inplace ~meth
          ~observer:(fun t x -> obs_b := (t, Array.copy x) :: !obs_b)
          ~ws vdp_ip ~t0:0. ~t1:2. xb;
        check_true "final states identical" (compare xa xb = 0);
        check_true "observed trajectories identical" (compare !obs_a !obs_b = 0))
  in
  [
    check_method "euler" Numerics.Ode.Euler;
    check_method "rk2" Numerics.Ode.Rk2;
    check_method "rk4" Numerics.Ode.Rk4;
    check_method "rkf45" Numerics.Ode.default_method;
    test "workspace dimension is checked" (fun () ->
        let ws = Numerics.Ode.workspace 3 in
        check_int "dim" 3 (Numerics.Ode.workspace_dim ws);
        check_raises_invalid "mismatch" (fun () ->
            Numerics.Ode.integrate_inplace ~ws vdp_ip ~t0:0. ~t1:1. [| 1.; 0. |]));
  ]

(* ------------------------------------------------------------------ *)
(* steady-state allocation budget *)

let alloc_tests =
  [
    test "event loop allocates below budget per delivered event" (fun () ->
        let e = build_event_dense ~debug:false in
        (* warm up: first-eval validation, trace growth, queue sizing *)
        Sim.Engine.run ~t_end:10. e;
        let s0 = Sim.Engine.steps e in
        let w0 = Gc.minor_words () in
        Sim.Engine.run ~t_end:20. e;
        let dw = Gc.minor_words () -. w0 in
        let ds = Sim.Engine.steps e - s0 in
        check_true "progress" (ds > 500);
        let per_step = dw /. float_of_int ds in
        (* a delivered event costs the handler's action list, the trace
           samples of the instant and a handful of boxed floats — the
           seed engine's full sweep was an order of magnitude above
           this bound *)
        if per_step > 200. then
          Alcotest.failf "%.1f minor words per event delivery (budget 200)" per_step);
  ]

(* ------------------------------------------------------------------ *)
(* event queue space behaviour (satellite: pop leak fix, clear) *)

let weak_live w =
  let live = ref 0 in
  for i = 0 to Weak.length w - 1 do
    if Weak.check w i then incr live
  done;
  !live

let queue_space_tests =
  [
    test "pop does not retain churned payloads" (fun () ->
        let q = Sim.Event_queue.create () in
        let w = Weak.create 64 in
        (* a far-future sentinel keeps the queue non-empty throughout *)
        Sim.Event_queue.push q ~time:1e9 ~priority:0 [| -1. |];
        let fill () =
          for i = 0 to 63 do
            let payload = Array.make 3 (float_of_int i) in
            Weak.set w i (Some payload);
            Sim.Event_queue.push q ~time:(float_of_int i) ~priority:0 payload
          done
        in
        fill ();
        for _ = 1 to 64 do
          ignore (Sim.Event_queue.pop q)
        done;
        Gc.full_major ();
        check_int "popped payloads collected" 0 (weak_live w);
        check_int "sentinel still queued" 1 (Sim.Event_queue.length q));
    test "clear drops the backing array" (fun () ->
        let q = Sim.Event_queue.create () in
        let w = Weak.create 32 in
        let fill () =
          for i = 0 to 31 do
            let payload = Array.make 3 (float_of_int i) in
            Weak.set w i (Some payload);
            Sim.Event_queue.push q ~time:(float_of_int i) ~priority:0 payload
          done
        in
        fill ();
        Sim.Event_queue.clear q;
        Gc.full_major ();
        check_int "cleared payloads collected" 0 (weak_live w);
        check_true "queue empty" (Sim.Event_queue.is_empty q));
  ]

(* ------------------------------------------------------------------ *)
(* validation hoisting (satellite: shapes checked once, debug always) *)

(* returns the right shape twice, then a wrong width *)
let flaky_block () =
  let calls = ref 0 in
  B.make ~name:"flaky" ~out_widths:[| 1 |] ~event_inputs:1
    ~on_event:(fun _ ~port:_ -> [])
    ~reset:(fun () -> calls := 0)
    (fun _ ->
      incr calls;
      if !calls >= 3 then [| [| 9.; 9. |] |] else [| [| 1. |] |])

let build_flaky ~debug =
  let g = G.create () in
  let flaky = G.add g (flaky_block ()) in
  let clock = G.add g (E.clock ~period:0.1 ()) in
  G.connect_event g ~src:(clock, 0) ~dst:(flaky, 0);
  Sim.Engine.create ~debug g

let validation_tests =
  [
    test "debug mode validates output shapes at every call" (fun () ->
        let e = build_flaky ~debug:true in
        match Sim.Engine.run ~t_end:1. e with
        | exception Failure msg ->
            check_true "mentions the block" (Helpers.contains msg "flaky")
        | () -> Alcotest.fail "expected a width failure");
    test "compiled mode validates output shapes once" (fun () ->
        let e = build_flaky ~debug:false in
        (* the wrong-width call happens only on re-evaluation after the
           first validated one — the compiled engine trusts the block *)
        Sim.Engine.run ~t_end:1. e;
        check_true "ran to completion" (Sim.Engine.steps e > 5));
  ]

let suites =
  [
    ("sim_perf.golden", golden_tests);
    ("sim_perf.ode_inplace", ode_tests);
    ("sim_perf.alloc", alloc_tests);
    ("sim_perf.queue_space", queue_space_tests);
    ("sim_perf.validation", validation_tests);
  ]
