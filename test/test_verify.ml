(* The static design-rule checker: every catalogued rule ID must fire
   on a known-bad fixture and stay silent on the seed designs, and the
   schedule pass must agree exactly with Schedule.make's own
   validation (the QCheck properties at the bottom). *)

open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Diag = Verify.Diag

let rules_of diags = List.map (fun (d : Diag.t) -> d.Diag.rule) diags
let has_rule rule diags = List.mem rule (rules_of diags)

let check_has_rule msg rule diags =
  if not (has_rule rule diags) then
    Alcotest.failf "%s: expected a %s diagnostic, got [%s]" msg rule
      (String.concat "; " (List.map Diag.to_string diags))

let check_no_errors msg diags =
  match Diag.errors diags with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: expected no errors, got [%s]" msg
        (String.concat "; " (List.map Diag.to_string errs))

(* a construction-time rule: the library raises Invalid_argument with
   the "[RULE]" prefix the Diag layer recovers *)
let check_raises_rule rule f =
  match f () with
  | exception Invalid_argument msg ->
      Alcotest.(check (option string))
        (Printf.sprintf "raised message carries [%s]" rule)
        (Some rule) (Diag.rule_prefix msg)
  | exception e ->
      Alcotest.failf "expected Invalid_argument [%s], got %s" rule (Printexc.to_string e)
  | _ -> Alcotest.failf "expected Invalid_argument [%s], got a result" rule

(* ------------------------------------------------------------------ *)
(* diagnostics core *)

let diag_tests =
  [
    test "of_invalid_arg recovers the rule identifier" (fun () ->
        let d = Diag.of_invalid_arg ~artifact:"schedule" "[SCHED003] slots overlap" in
        Alcotest.(check string) "rule" "SCHED003" d.Diag.rule;
        Alcotest.(check string) "message" "slots overlap" d.Diag.message);
    test "of_invalid_arg falls back to VER001 on untagged messages" (fun () ->
        let d = Diag.of_invalid_arg ~artifact:"x" "plain failure" in
        Alcotest.(check string) "rule" "VER001" d.Diag.rule;
        check_true "is an error" (d.Diag.severity = Diag.Error));
    test "render sorts errors first and summary counts severities" (fun () ->
        let diags =
          [
            Diag.info ~rule:"SCHED009" ~artifact:"schedule" ~location:"P1" "idle";
            Diag.error ~rule:"GRAPH001" ~artifact:"dataflow" ~location:"b.0" "unwired";
          ]
        in
        check_true "errors lead" (contains (Diag.render diags) "error[GRAPH001]");
        Alcotest.(check string) "summary" "1 error, 0 warnings, 1 info" (Diag.summary diags));
    test "to_json emits one object per diagnostic" (fun () ->
        let diags =
          [ Diag.error ~rule:"ALG001" ~artifact:"algorithm" ~location:"a.0" "unwired" ]
        in
        let json = Diag.to_json diags in
        check_true "rule field" (contains json "\"rule\": \"ALG001\"");
        check_true "severity field" (contains json "\"severity\": \"error\""));
    test "rule catalogue lists every identifier once" (fun () ->
        let ids = List.map (fun (r : Verify.Rules.rule) -> r.Verify.Rules.id) Verify.Rules.all in
        check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids));
        check_true "markdown table header"
          (contains (Verify.Rules.markdown_table ()) "| ID | Severity |"));
    test "catalogue matches the ids declared by every pass (no drift)" (fun () ->
        let declared =
          List.sort_uniq compare
            (Verify.Graph_rules.ids @ Verify.Flow_rules.ids @ Verify.Algo_rules.ids
           @ Verify.Sched_rules.ids @ Verify.Temporal_rules.ids @ Verify.Cgen_rules.ids
           @ Verify.Recovery_rules.ids @ Verify.Media_rules.ids
            @ [ "VER001"; "VER002" ])
        in
        let catalogued =
          List.sort_uniq compare
            (List.map (fun (r : Verify.Rules.rule) -> r.Verify.Rules.id) Verify.Rules.all)
        in
        let missing = List.filter (fun id -> not (List.mem id catalogued)) declared in
        let stale = List.filter (fun id -> not (List.mem id declared)) catalogued in
        if missing <> [] || stale <> [] then
          Alcotest.failf "catalogue drift: missing [%s], stale [%s]"
            (String.concat "; " missing) (String.concat "; " stale));
  ]

(* ------------------------------------------------------------------ *)
(* dataflow graph rules *)

let graph_tests =
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  [
    test "GRAPH001 unwired input (pass and raise)" (fun () ->
        let g = G.create () in
        let _gain = G.add g (C.gain ~name:"g" 2.) in
        check_has_rule "pass" "GRAPH001" (Verify.Graph_rules.check g);
        check_raises_rule "GRAPH001" (fun () -> G.validate g));
    test "GRAPH002 double wiring raises" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"c" [| 1. |]) in
        let s = G.add g (C.gain ~name:"g" 1.) in
        G.connect_data g ~src:(c, 0) ~dst:(s, 0);
        check_raises_rule "GRAPH002" (fun () -> G.connect_data g ~src:(c, 0) ~dst:(s, 0)));
    test "GRAPH003 width mismatch raises" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"c" [| 1.; 2. |]) in
        let s = G.add g (C.gain ~name:"g" 1.) in
        check_raises_rule "GRAPH003" (fun () -> G.connect_data g ~src:(c, 0) ~dst:(s, 0)));
    test "GRAPH004 nonexistent port raises" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"c" [| 1. |]) in
        let s = G.add g (C.gain ~name:"g" 1.) in
        check_raises_rule "GRAPH004" (fun () -> G.connect_data g ~src:(c, 3) ~dst:(s, 0)));
    test "GRAPH005 algebraic loop through feedthrough blocks" (fun () ->
        let g = G.create () in
        let a = G.add g (C.gain ~name:"a" 1.) in
        let b = G.add g (C.gain ~name:"b" 1.) in
        G.connect_data g ~src:(a, 0) ~dst:(b, 0);
        G.connect_data g ~src:(b, 0) ~dst:(a, 0);
        check_has_rule "pass" "GRAPH005" (Verify.Graph_rules.check g);
        check_raises_rule "GRAPH005" (fun () -> ignore (G.eval_order g)));
    test "GRAPH006 unreachable event-driven block warns" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"c" [| 1. |]) in
        let sh = G.add g (C.sample_hold ~name:"sh" 1) in
        G.connect_data g ~src:(c, 0) ~dst:(sh, 0);
        let diags = Verify.Graph_rules.check g in
        check_has_rule "pass" "GRAPH006" diags;
        check_no_errors "warning only" diags;
        (* the exemption the lifecycle build path relies on: a promised
           post-build clock silences the warning *)
        check_true "expect_activated silences"
          (Verify.Graph_rules.check ~expect_activated:[ sh ] g = []));
    test "GRAPH007 shared stateful block record warns" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"c" [| 1. |]) in
        let shared = C.unit_delay ~name:"z" [| 0. |] in
        let d1 = G.add g shared in
        let d2 = G.add g shared in
        G.connect_data g ~src:(c, 0) ~dst:(d1, 0);
        G.connect_data g ~src:(c, 0) ~dst:(d2, 0);
        check_has_rule "pass" "GRAPH007"
          (Verify.Graph_rules.check ~expect_activated:[ d1; d2 ] g));
  ]

(* ------------------------------------------------------------------ *)
(* algorithm / architecture / mapping rules *)

let chain_alg () =
  let alg = Alg.create ~name:"chain" ~period:1.0 in
  let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(a, 0);
  (alg, s, a)

let algo_tests =
  [
    test "ALG001 unwired operation input" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let _a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        ignore s;
        check_has_rule "pass" "ALG001" (Verify.Algo_rules.check_algorithm alg);
        check_raises_rule "ALG001" (fun () -> Alg.validate alg));
    test "ALG002 intra-iteration cycle" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let c1 = Alg.add_op alg ~name:"c1" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        let c2 = Alg.add_op alg ~name:"c2" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        Alg.depend alg ~src:(c1, 0) ~dst:(c2, 0);
        Alg.depend alg ~src:(c2, 0) ~dst:(c1, 0);
        check_has_rule "pass" "ALG002" (Verify.Algo_rules.check_algorithm alg);
        check_raises_rule "ALG002" (fun () -> ignore (Alg.topological_order alg)));
    test "ALG003 condition without a source" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let _c =
          Alg.add_op alg ~name:"c" ~kind:Alg.Compute
            ~cond:{ Alg.var = "m"; value = 0 } ()
        in
        check_has_rule "pass" "ALG003" (Verify.Algo_rules.check_algorithm alg);
        check_raises_rule "ALG003" (fun () -> Alg.validate alg));
    test "ALG004 dependency width mismatch raises" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 2 |] () in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        check_raises_rule "ALG004" (fun () -> Alg.depend alg ~src:(s, 0) ~dst:(a, 0)));
    test "ALG005 missing sensors and actuators warn" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let _c = Alg.add_op alg ~name:"c" ~kind:Alg.Compute () in
        let diags = Verify.Algo_rules.check_algorithm alg in
        check_int "two warnings" 2
          (List.length (List.filter (fun r -> r = "ALG005") (rules_of diags)));
        check_no_errors "warnings only" diags);
    test "ARCH001 empty and disconnected architectures" (fun () ->
        check_has_rule "empty" "ARCH001"
          (Verify.Algo_rules.check_architecture (Arch.create ~name:"empty"));
        let arch = Arch.create ~name:"split" in
        let _p0 = Arch.add_operator arch ~name:"P0" in
        let _p1 = Arch.add_operator arch ~name:"P1" in
        check_has_rule "disconnected" "ARCH001" (Verify.Algo_rules.check_architecture arch);
        check_raises_rule "ARCH001" (fun () -> Arch.validate arch));
    test "ARCH002 degenerate point-to-point medium raises" (fun () ->
        let arch = Arch.create ~name:"x" in
        let p0 = Arch.add_operator arch ~name:"P0" in
        let p1 = Arch.add_operator arch ~name:"P1" in
        let p2 = Arch.add_operator arch ~name:"P2" in
        check_raises_rule "ARCH002" (fun () ->
            ignore
              (Arch.add_medium arch ~name:"link" ~kind:Arch.Point_to_point
                 ~time_per_word:0.001 [ p0; p1; p2 ])));
    test "DUR001 negative WCET raises" (fun () ->
        let d = Dur.create () in
        check_raises_rule "DUR001" (fun () -> Dur.set d ~op:"s" ~operator:"P0" (-1.)));
    test "DUR002 BCET without or above the WCET raises" (fun () ->
        let d = Dur.create () in
        check_raises_rule "DUR002" (fun () -> Dur.set_bcet d ~op:"s" ~operator:"P0" 0.1);
        Dur.set d ~op:"s" ~operator:"P0" 0.1;
        check_raises_rule "DUR002" (fun () -> Dur.set_bcet d ~op:"s" ~operator:"P0" 0.2));
    test "MAP001 operation with no capable operator" (fun () ->
        let alg, _, _ = chain_alg () in
        check_has_rule "pass" "MAP001"
          (Verify.Algo_rules.check_mapping ~algorithm:alg
             ~architecture:(Arch.single ()) ~durations:(Dur.create ())));
    test "MAP002 unroutable dependency" (fun () ->
        let alg, _, _ = chain_alg () in
        let arch = Arch.create ~name:"split" in
        let _p0 = Arch.add_operator arch ~name:"P0" in
        let _p1 = Arch.add_operator arch ~name:"P1" in
        let d = Dur.create () in
        Dur.set d ~op:"s" ~operator:"P0" 0.1;
        Dur.set d ~op:"a" ~operator:"P1" 0.1;
        check_has_rule "pass" "MAP002"
          (Verify.Algo_rules.check_mapping ~algorithm:alg ~architecture:arch ~durations:d));
    test "MAP003 WCET beyond the period warns" (fun () ->
        let alg, _, _ = chain_alg () in
        let d = Dur.create () in
        Dur.set d ~op:"s" ~operator:"P0" 2.0;
        Dur.set d ~op:"a" ~operator:"P0" 0.1;
        let diags =
          Verify.Algo_rules.check_mapping ~algorithm:alg ~architecture:(Arch.single ())
            ~durations:d
        in
        check_has_rule "pass" "MAP003" diags;
        check_no_errors "warning only" diags);
  ]

(* ------------------------------------------------------------------ *)
(* schedule rules: forged Schedule.t records per rule *)

let cs op operator start dur =
  { Sched.cs_op = op; cs_operator = operator; cs_start = start; cs_duration = dur }

let forge ~algorithm ~architecture ~comp ~comm =
  let makespan =
    List.fold_left (fun m (s : Sched.comp_slot) -> Float.max m (s.cs_start +. s.cs_duration))
      0. comp
    |> fun m ->
    List.fold_left (fun m (c : Sched.comm_slot) -> Float.max m (c.cm_start +. c.cm_duration))
      m comm
  in
  { Sched.algorithm; architecture; comp; comm; makespan }

(* chain on one operator: s [0, 0.1] then a [0.1, 0.2] *)
let single_case () =
  let alg, s, a = chain_alg () in
  let arch = Arch.single () in
  let p0 = List.hd (Arch.operators arch) in
  (alg, arch, p0, s, a)

(* chain across a two-operator bus with one transfer *)
let duo_case () =
  let alg, s, a = chain_alg () in
  let arch = Arch.bus_topology ~latency:0.05 ~time_per_word:0.05 [ "P0"; "P1" ] in
  let p0 = Option.get (Arch.find_operator arch "P0") in
  let p1 = Option.get (Arch.find_operator arch "P1") in
  let bus = List.hd (Arch.media arch) in
  let comm start =
    {
      Sched.cm_src = (s, 0);
      cm_dst = (a, 0);
      cm_medium = bus;
      cm_from = p0;
      cm_to = p1;
      cm_hop = 0;
      cm_start = start;
      cm_duration = 0.1;
      cm_read = start +. 0.1;
    }
  in
  (alg, arch, p0, p1, s, a, comm)

let sched_fixture rule build =
  test (Printf.sprintf "%s fires on its fixture" rule) (fun () ->
      let sched, expect_make_error = build () in
      let diags = Verify.Sched_rules.check sched in
      check_has_rule "pass" rule diags;
      if expect_make_error then
        check_raises_invalid "make rejects it too" (fun () ->
            Sched.make ~algorithm:sched.Sched.algorithm
              ~architecture:sched.Sched.architecture ~comp:sched.Sched.comp
              ~comm:sched.Sched.comm)
      else begin
        check_no_errors "accepted by make, so no errors" diags;
        ignore
          (Sched.make ~algorithm:sched.Sched.algorithm ~architecture:sched.Sched.architecture
             ~comp:sched.Sched.comp ~comm:sched.Sched.comm)
      end)

let sched_tests =
  [
    sched_fixture "SCHED001" (fun () ->
        let alg, arch, p0, s, a = single_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs s p0 0.2 0.1; cs a p0 0.4 0.1 ]
            ~comm:[],
          true ));
    sched_fixture "SCHED002" (fun () ->
        let alg, arch, p0, s, _a = single_case () in
        (forge ~algorithm:alg ~architecture:arch ~comp:[ cs s p0 0. 0.1 ] ~comm:[], true));
    sched_fixture "SCHED003" (fun () ->
        let alg, arch, p0, s, a = single_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.2; cs a p0 0.1 0.1 ]
            ~comm:[],
          true ));
    sched_fixture "SCHED004" (fun () ->
        let alg, arch, p0, p1, s, a, comm = duo_case () in
        ignore p1;
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p1 0.5 0.1 ]
            ~comm:[ comm 0.1; comm 0.15 ],
          true ));
    sched_fixture "SCHED005" (fun () ->
        let alg, arch, p0, p1, s, a, _comm = duo_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p1 0.5 0.1 ]
            ~comm:[],
          true ));
    sched_fixture "SCHED006" (fun () ->
        let alg, arch, p0, p1, s, a, comm = duo_case () in
        let broken = { (comm 0.1) with Sched.cm_hop = 1 } in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p1 0.5 0.1 ]
            ~comm:[ broken ],
          true ));
    sched_fixture "SCHED007" (fun () ->
        let alg, arch, p0, p1, s, a, comm = duo_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p1 0.15 0.1 ]
            ~comm:[ comm 0.1 ],
          true ));
    sched_fixture "SCHED008" (fun () ->
        (* overruns the period but is structurally sound: make accepts
           it and the pass only warns *)
        let alg, arch, p0, s, a = single_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.7; cs a p0 0.7 0.8 ]
            ~comm:[],
          false ));
    sched_fixture "SCHED009" (fun () ->
        let alg, arch, p0, p1, s, a, _comm = duo_case () in
        ignore p1;
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p0 0.1 0.1 ]
            ~comm:[],
          false ));
    sched_fixture "SCHED011" (fun () ->
        let alg, arch, p0, s, a = single_case () in
        ( forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 (-0.2) 0.1; cs a p0 0.1 0.1 ]
            ~comm:[],
          true ));
    test "SCHED010 reports uncovered single failures" (fun () ->
        let alg, arch, p0, p1, s, a, _comm = duo_case () in
        ignore p1;
        let d = Dur.create () in
        Dur.set d ~op:"s" ~operator:"P0" 0.1;
        Dur.set d ~op:"a" ~operator:"P0" 0.1;
        let sched =
          forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p0 0.1 0.1 ]
            ~comm:[]
        in
        let diags = Verify.Sched_rules.failover_coverage ~durations:d sched in
        check_has_rule "pass" "SCHED010" diags;
        check_no_errors "warning only" diags);
    test "failover coverage is silent on a replicable mapping" (fun () ->
        let alg, arch, p0, p1, s, a, _comm = duo_case () in
        ignore p1;
        let d = Dur.create () in
        Dur.set_everywhere d ~op:"s" ~operators:[ "P0"; "P1" ] 0.1;
        Dur.set_everywhere d ~op:"a" ~operators:[ "P0"; "P1" ] 0.1;
        let sched =
          forge ~algorithm:alg ~architecture:arch
            ~comp:[ cs s p0 0. 0.1; cs a p0 0.1 0.1 ]
            ~comm:[]
        in
        check_true "no warnings"
          (Verify.Sched_rules.failover_coverage ~durations:d sched = []));
  ]

(* ------------------------------------------------------------------ *)
(* temporal-model rules: forged static records *)

let temporal_tests =
  let static ?(period = 1.) ?(makespan = 0.5) ?(fits = true) ~sampling ~actuation () =
    {
      Translator.Temporal_model.period;
      makespan;
      fits_period = fits;
      sampling_offsets = sampling;
      actuation_offsets = actuation;
    }
  in
  [
    test "TEMP001 inconsistent static model" (fun () ->
        let alg, s, a = chain_alg () in
        check_has_rule "non-positive period" "TEMP001"
          (Verify.Temporal_rules.check ~algorithm:alg
             (static ~period:0. ~sampling:[ (s, 0.1) ] ~actuation:[ (a, 0.2) ] ()));
        check_has_rule "contradictory fits_period" "TEMP001"
          (Verify.Temporal_rules.check ~algorithm:alg
             (static ~makespan:2. ~fits:true ~sampling:[ (s, 0.1) ]
                ~actuation:[ (a, 0.2) ] ())));
    test "TEMP002 latency beyond the period warns" (fun () ->
        let alg, s, a = chain_alg () in
        let diags =
          Verify.Temporal_rules.check ~algorithm:alg
            (static ~makespan:0.9 ~sampling:[ (s, 1.5) ] ~actuation:[ (a, 1.6) ] ())
        in
        check_has_rule "pass" "TEMP002" diags;
        check_no_errors "warnings only" diags);
    test "TEMP003 actuation precedes its sampling" (fun () ->
        let alg, s, a = chain_alg () in
        check_has_rule "pass" "TEMP003"
          (Verify.Temporal_rules.check ~algorithm:alg
             (static ~sampling:[ (s, 0.5) ] ~actuation:[ (a, 0.2) ] ())));
    test "temporal pass accepts a real schedule's model" (fun () ->
        let alg, s, a = chain_alg () in
        ignore s;
        ignore a;
        let d = Dur.create () in
        Dur.set d ~op:"s" ~operator:"P0" 0.1;
        Dur.set d ~op:"a" ~operator:"P0" 0.1;
        let sched =
          Aaa.Adequation.run ~algorithm:alg ~architecture:(Arch.single ()) ~durations:d ()
        in
        check_true "silent"
          (Verify.Temporal_rules.check ~algorithm:alg
             (Translator.Temporal_model.of_schedule sched)
          = []));
  ]

(* ------------------------------------------------------------------ *)
(* generated-code rules: forged executives *)

let duo_schedule () =
  let alg, s, a = chain_alg () in
  let arch = Arch.bus_topology ~latency:0.05 ~time_per_word:0.05 [ "P0"; "P1" ] in
  let d = Dur.create () in
  Dur.set d ~op:"s" ~operator:"P0" 0.1;
  Dur.set d ~op:"a" ~operator:"P1" 0.1;
  let sched =
    Aaa.Adequation.run ~pins:[ ("s", "P0"); ("a", "P1") ] ~algorithm:alg ~architecture:arch
      ~durations:d ()
  in
  (sched, s, a)

let cgen_tests =
  let module Cg = Aaa.Codegen in
  [
    test "cgen pass accepts the generated executive" (fun () ->
        let sched, _, _ = duo_schedule () in
        check_true "silent" (Verify.Cgen_rules.check (Cg.generate sched) = []));
    test "CGEN002 dropped send breaks pairing" (fun () ->
        let sched, _, _ = duo_schedule () in
        let exe = Cg.generate sched in
        let programs =
          List.map
            (fun (operator, program) ->
              (operator, List.filter (function Cg.Send _ -> false | _ -> true) program))
            exe.Cg.programs
        in
        check_has_rule "pass" "CGEN002"
          (Verify.Cgen_rules.check { exe with Cg.programs }));
    test "CGEN003 media order must match the schedule" (fun () ->
        let sched, _, _ = duo_schedule () in
        let exe = Cg.generate sched in
        check_has_rule "pass" "CGEN003"
          (Verify.Cgen_rules.check { exe with Cg.media_programs = [] }));
    test "CGEN004 send hoisted before its producer" (fun () ->
        let sched, _, _ = duo_schedule () in
        let exe = Cg.generate sched in
        let hoist program =
          let sends = List.filter (function Cg.Send _ -> true | _ -> false) program in
          let rest = List.filter (function Cg.Send _ -> false | _ -> true) program in
          match rest with
          | Cg.Wait_period :: tail -> (Cg.Wait_period :: sends) @ tail
          | _ -> sends @ rest
        in
        let programs =
          List.map (fun (operator, program) -> (operator, hoist program)) exe.Cg.programs
        in
        check_has_rule "pass" "CGEN004"
          (Verify.Cgen_rules.check { exe with Cg.programs }));
    test "CGEN001 emitted C references an undeclared buffer" (fun () ->
        let sched, _, _ = duo_schedule () in
        let exe = Cg.generate sched in
        (* strip the consumer's program down to the bare send of remote
           data: the emitted file then uses the transfer's buffer
           without any Exec/Recv to declare it *)
        let transfer = List.hd sched.Sched.comm in
        let consumer = transfer.Sched.cm_to in
        let programs =
          List.map
            (fun (operator, program) ->
              if operator = consumer then
                (operator, [ Cg.Wait_period; Cg.Send transfer ])
              else (operator, program))
            exe.Cg.programs
        in
        check_has_rule "pass" "CGEN001"
          (Verify.Cgen_rules.check { exe with Cg.programs }));
  ]

(* ------------------------------------------------------------------ *)
(* whole-design runs: silent on seeds, staged on broken designs *)

let dc_motor_design () =
  Lifecycle.Design.pid_loop ~name:"dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
    ~ts:0.05 ~reference:1. ~horizon:1. ()

let run_all_tests =
  [
    test "run_all is error-free on the seed pid loop" (fun () ->
        check_no_errors "single operator" (Verify.run_all (dc_motor_design ()));
        let arch = Arch.bus_topology ~time_per_word:0.002 ~latency:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        List.iter
          (fun (op, w) -> Dur.set_everywhere d ~op ~operators:[ "P0"; "P1" ] w)
          [ ("reference", 0.001); ("sample_y", 0.004); ("pid", 0.012); ("hold_u", 0.004) ];
        check_no_errors "two operators"
          (Verify.run_all ~architecture:arch ~durations:d (dc_motor_design ())));
    test "run_all stops at the first failing stage" (fun () ->
        (* an unbuildable design reports the dataflow stage only *)
        let design =
          Lifecycle.Design.make ~name:"broken" ~ts:0.05 ~horizon:1.
            ~cost:(fun _ -> 0.)
            (fun () -> invalid_arg "[GRAPH003] width mismatch somewhere")
        in
        let diags = Verify.run_all design in
        check_int "one diagnostic" 1 (List.length diags);
        check_has_rule "stage 1" "GRAPH003" diags);
    test "run_all surfaces infeasible adequation as MAP001" (fun () ->
        (* durations name an operator the architecture lacks *)
        let d = Dur.create () in
        List.iter
          (fun op -> Dur.set d ~op ~operator:"P7" 0.001)
          [ "reference"; "sample_y"; "pid"; "hold_u" ];
        let diags = Verify.run_all ~durations:d (dc_motor_design ()) in
        check_has_rule "mapping error" "MAP001" diags);
    test "markdown_section renders the summary and bullets" (fun () ->
        let section =
          Verify.markdown_section
            [ Diag.error ~rule:"ALG001" ~artifact:"algorithm" ~location:"a.0" "unwired" ]
        in
        check_true "title" (contains section "## Static verification");
        check_true "bullet" (contains section "`ALG001`"));
  ]

(* ------------------------------------------------------------------ *)
(* properties: the schedule pass agrees exactly with Schedule.make *)

let random_adequation seed =
  let rng = Numerics.Rng.create seed in
  let procs = [ "P0"; "P1"; "P2" ] in
  let alg, d =
    Aaa.Workloads.layered ~rng
      ~layers:(2 + Numerics.Rng.int rng 3)
      ~width:(1 + Numerics.Rng.int rng 3)
      ~operators:procs ()
  in
  let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 procs in
  let sched = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (rng, sched)

let mutate rng (sched : Sched.t) =
  let nth_comp i = List.nth sched.Sched.comp i in
  let n = List.length sched.Sched.comp in
  match Numerics.Rng.int rng 4 with
  | 0 ->
      (* duplicate a computation slot *)
      let s = nth_comp (Numerics.Rng.int rng n) in
      (s :: sched.Sched.comp, sched.Sched.comm)
  | 1 ->
      (* drop a computation slot *)
      let k = Numerics.Rng.int rng n in
      (List.filteri (fun i _ -> i <> k) sched.Sched.comp, sched.Sched.comm)
  | 2 ->
      (* negate a slot's start *)
      let k = Numerics.Rng.int rng n in
      ( List.mapi
          (fun i (s : Sched.comp_slot) ->
            if i = k then { s with Sched.cs_start = -.s.cs_start -. 0.001 } else s)
          sched.Sched.comp,
        sched.Sched.comm )
  | _ ->
      (* pull a slot to time zero, likely overlapping or outrunning
         its inputs *)
      let k = Numerics.Rng.int rng n in
      ( List.mapi
          (fun i (s : Sched.comp_slot) -> if i = k then { s with Sched.cs_start = 0. } else s)
          sched.Sched.comp,
        sched.Sched.comm )

let property_tests =
  [
    qtest "adequation schedules pass the schedule rules with zero errors" ~count:50
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let _, sched = random_adequation seed in
        not (Diag.has_errors (Verify.Sched_rules.check sched)));
    qtest "the schedule pass agrees with Schedule.make on mutated schedules" ~count:100
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng, sched = random_adequation seed in
        let comp, comm = mutate rng sched in
        let forged =
          forge ~algorithm:sched.Sched.algorithm ~architecture:sched.Sched.architecture
            ~comp ~comm
        in
        let make_accepts =
          match
            Sched.make ~algorithm:sched.Sched.algorithm
              ~architecture:sched.Sched.architecture ~comp ~comm
          with
          | _ -> true
          | exception Invalid_argument _ -> false
        in
        make_accepts = not (Diag.has_errors (Verify.Sched_rules.check forged)));
  ]

let suites =
  [
    ("verify.diag", diag_tests);
    ("verify.graph", graph_tests);
    ("verify.algo", algo_tests);
    ("verify.sched", sched_tests);
    ("verify.temporal", temporal_tests);
    ("verify.cgen", cgen_tests);
    ("verify.run_all", run_all_tests);
    ("verify.props", property_tests);
  ]
