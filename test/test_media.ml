open Helpers
module Bus = Media.Bus
module Load = Media.Load
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Adq = Aaa.Adequation
module Machine = Exec.Machine
module Async = Exec.Async
module Scenario = Fault.Scenario

(* The distributed sense → law → act chain of test_exec/test_fault:
   sense and act on P0, law on P1, two transfers per iteration over the
   shared bus named "bus". *)
let chain () =
  let alg = Alg.create ~name:"chain" ~period:0.1 in
  let s = Alg.add_op alg ~name:"sense" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let c = Alg.add_op alg ~name:"law" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
  Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
  let arch = Arch.bus_topology ~time_per_word:0.002 [ "P0"; "P1" ] in
  let d = Dur.create () in
  Dur.set d ~op:"sense" ~operator:"P0" 0.01;
  Dur.set d ~op:"law" ~operator:"P1" 0.01;
  Dur.set d ~op:"act" ~operator:"P0" 0.01;
  let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (arch, sched, Aaa.Codegen.generate sched)

let chain_fixture = lazy (chain ())
let chain_exe () = let _, _, exe = Lazy.force chain_fixture in exe
let chain_arch () = let arch, _, _ = Lazy.force chain_fixture in arch
let chain_sched () = let _, sched, _ = Lazy.force chain_fixture in sched

(* ------------------------------------------------------------------ *)
(* bus: arbitration, retries, starvation, validation *)

let bus_tests =
  [
    test "an empty bus replays fixed durations bit-for-bit" (fun () ->
        let b = Bus.create (Bus.make ~name:"b" ~time_per_word:0.001 ()) in
        let c1 = Bus.transmit b ~ident:300 ~node:0 ~release:0.5 ~duration:0.2 in
        check_float "start at release" 0.5 c1.Bus.c_start;
        check_float "finish = start + duration" 0.7 c1.Bus.c_finish;
        check_int "one attempt" 1 c1.Bus.c_attempts;
        check_false "kept" c1.Bus.c_dropped;
        (* released while the bus is busy: queues behind, nothing else *)
        let c2 = Bus.transmit b ~ident:301 ~node:1 ~release:0.1 ~duration:0.05 in
        check_float "waits for the bus" 0.7 c2.Bus.c_start;
        check_float "then its exact duration" 0.75 c2.Bus.c_finish;
        check_int "log holds both" 2 (List.length (Bus.log b));
        check_float "busy time" 0.25 (Bus.busy_time b));
    test "lower identifiers win arbitration, higher ones yield" (fun () ->
        (* one high-priority background frame at t = 0 (0.1 s long) *)
        let hp = [ Load.periodic ~node:1000 ~ident:10 ~words:100 ~period:10. () ] in
        let b = Bus.create (Bus.make ~name:"b" ~time_per_word:0.001 ~load:hp ()) in
        let c = Bus.transmit b ~ident:300 ~node:0 ~release:0. ~duration:0.02 in
        check_float "foreground loses the first arbitration" 0.1 c.Bus.c_start;
        check_float "then transmits" 0.12 c.Bus.c_finish;
        (* same race against a low-priority frame: foreground first *)
        let lp = [ Load.periodic ~node:1000 ~ident:2000 ~words:100 ~period:10. () ] in
        let b2 = Bus.create (Bus.make ~name:"b" ~time_per_word:0.001 ~load:lp ()) in
        let c2 = Bus.transmit b2 ~ident:300 ~node:0 ~release:0. ~duration:0.02 in
        check_float "foreground wins" 0. c2.Bus.c_start;
        Bus.drain b2 ~until:1.;
        (match List.filter (fun c -> c.Bus.c_background) (Bus.log b2) with
        | [ bg ] -> check_float "loser follows" 0.02 bg.Bus.c_start
        | l -> Alcotest.failf "expected 1 background completion, got %d" (List.length l)));
    test "corrupted frames occupy the bus, retry, then drop at the limit" (fun () ->
        let always =
          { Bus.no_faults with
            Bus.f_corrupted = (fun ~ident:_ ~node:_ ~attempt:_ ~seq:_ -> true) } in
        let b =
          Bus.create
            (Bus.make ~name:"b" ~time_per_word:0.001 ~retry_limit:2 ~faults:always ()) in
        let c = Bus.transmit b ~ident:300 ~node:0 ~release:0. ~duration:0.1 in
        check_int "initial attempt + 2 retries" 3 c.Bus.c_attempts;
        check_true "payload dropped" c.Bus.c_dropped;
        check_float "last attempt starts after two failed ones" 0.2 c.Bus.c_start;
        check_float "three attempts of bus time" 0.3 (Bus.busy_time b);
        (* corrupting only the first attempt: the retry delivers *)
        let once =
          { Bus.no_faults with
            Bus.f_corrupted = (fun ~ident:_ ~node:_ ~attempt ~seq:_ -> attempt = 1) } in
        let b2 =
          Bus.create
            (Bus.make ~name:"b" ~time_per_word:0.001 ~retry_limit:2 ~faults:once ()) in
        let c2 = Bus.transmit b2 ~ident:300 ~node:0 ~release:0. ~duration:0.1 in
        check_int "one retry" 2 c2.Bus.c_attempts;
        check_false "recovered" c2.Bus.c_dropped;
        check_float "delivered on the second attempt" 0.2 c2.Bus.c_finish);
    test "a bus-off node's frames never occupy the bus" (fun () ->
        let off =
          { Bus.no_faults with
            Bus.f_node_off = (fun ~node ~time:_ -> node = 1000) } in
        let load = [ Load.periodic ~node:1000 ~ident:10 ~words:50 ~period:0.1 ~until_t:1. () ] in
        let b =
          Bus.create (Bus.make ~name:"b" ~time_per_word:0.001 ~load ~faults:off ()) in
        check_true "interface reported off" (Bus.node_off b ~node:1000 ~time:0.);
        let c = Bus.transmit b ~ident:300 ~node:0 ~release:0. ~duration:0.02 in
        check_float "no contention from the silenced node" 0. c.Bus.c_start;
        Bus.drain b ~until:1.;
        check_int "only the foreground frame in the log" 1 (List.length (Bus.log b));
        check_float "no background occupancy" 0.02 (Bus.busy_time b));
    test "a starved sender aborts after max_wait on an overloaded bus" (fun () ->
        (* utilization 2: the ident-1 stream outranks everything forever *)
        let load = [ Load.periodic ~node:1000 ~ident:1 ~words:100 ~period:0.05 () ] in
        let b =
          Bus.create (Bus.make ~name:"b" ~time_per_word:0.001 ~max_wait:0.3 ~load ()) in
        let c = Bus.transmit b ~ident:300 ~node:0 ~release:0. ~duration:0.01 in
        check_true "gave up" c.Bus.c_dropped;
        check_false "still a foreground frame" c.Bus.c_background;
        check_float "abort is instantaneous" c.Bus.c_start c.Bus.c_finish;
        check_true "waited at least max_wait"
          (c.Bus.c_finish -. c.Bus.c_release >= 0.3));
    test "constructor validation rejects malformed configs with [MEDIA004]" (fun () ->
        check_raises_invalid "zero word time" (fun () ->
            ignore (Bus.make ~name:"b" ~time_per_word:0. ()));
        check_raises_invalid "negative overhead" (fun () ->
            ignore (Bus.make ~name:"b" ~time_per_word:0.001 ~frame_overhead:(-1.) ()));
        check_raises_invalid "negative retry limit" (fun () ->
            ignore (Bus.make ~name:"b" ~time_per_word:0.001 ~retry_limit:(-1) ()));
        check_raises_invalid "zero max wait" (fun () ->
            ignore (Bus.make ~name:"b" ~time_per_word:0.001 ~max_wait:0. ()));
        check_raises_invalid "non-positive stream period" (fun () ->
            ignore (Load.periodic ~node:0 ~ident:1 ~words:1 ~period:0. ()));
        check_raises_invalid "jitter above 1" (fun () ->
            ignore (Load.periodic ~jitter_frac:1.5 ~node:0 ~ident:1 ~words:1 ~period:0.1 ()));
        check_raises_invalid "empty stream window" (fun () ->
            ignore
              (Load.periodic ~from_t:1. ~until_t:1. ~node:0 ~ident:1 ~words:1 ~period:0.1 ()));
        match Bus.make ~name:"b" ~time_per_word:0. () with
        | exception Invalid_argument msg ->
            check_true "rule prefix" (contains msg "[MEDIA004]")
        | _ -> Alcotest.fail "expected Invalid_argument");
    (let contended seed =
       let load =
         [
           Load.periodic ~jitter_frac:0.5 ~node:1000 ~ident:100 ~words:3 ~period:0.01 ();
           Load.periodic ~jitter_frac:0.25 ~node:1001 ~ident:50 ~words:2 ~period:0.013 ();
         ]
       in
       let b =
         Bus.create
           (Bus.make ~name:"b" ~time_per_word:0.001 ~frame_overhead:0.002 ~seed ~load ())
       in
       for k = 0 to 19 do
         ignore
           (Bus.transmit b ~ident:300 ~node:0 ~release:(0.005 *. float_of_int k)
              ~duration:0.004)
       done;
       Bus.drain b ~until:0.5;
       Bus.log b
     in
     qtest ~count:40 "same seed, same contention: completion traces are identical"
       QCheck2.Gen.(int_range 0 100_000)
       (fun seed -> contended seed = contended seed));
  ]

(* ------------------------------------------------------------------ *)
(* executive integration: empty-bus equivalence and contention *)

let machine_run ?(iterations = 20) ?(comm_jitter_frac = 0.) ?(seed = 9) bus_models =
  Machine.run
    ~config:
      { Machine.default_config with iterations; comm_jitter_frac; seed; bus_models }
    (chain_exe ())

let exec_tests =
  [
    test "an empty bus model leaves the executive bit-for-bit unchanged" (fun () ->
        let fixed = machine_run ~comm_jitter_frac:0.3 [] in
        let empty =
          machine_run ~comm_jitter_frac:0.3
            [ ("bus", Bus.make ~name:"bus" ~time_per_word:0.002 ()) ]
        in
        check_true "same operations" (fixed.Machine.ops = empty.Machine.ops);
        check_true "same transfers" (fixed.Machine.comms = empty.Machine.comms);
        check_true "same iteration ends"
          (fixed.Machine.iteration_end = empty.Machine.iteration_end);
        check_true "bus log present" (empty.Machine.bus_log <> []));
    qtest ~count:15 "empty-bus equivalence holds for any machine seed"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let fixed = machine_run ~iterations:10 ~comm_jitter_frac:0.4 ~seed [] in
        let empty =
          machine_run ~iterations:10 ~comm_jitter_frac:0.4 ~seed
            [ ("bus", Bus.make ~name:"bus" ~time_per_word:0.002 ()) ]
        in
        fixed.Machine.comms = empty.Machine.comms
        && fixed.Machine.iteration_end = empty.Machine.iteration_end);
    test "the async executive is equally unchanged by an empty bus" (fun () ->
        let run bus_models =
          Async.run
            ~config:
              {
                Async.default_config with
                iterations = 20;
                comm_jitter_frac = 0.3;
                seed = 5;
                bus_models;
              }
            (chain_exe ())
        in
        let fixed = run [] in
        let empty = run [ ("bus", Bus.make ~name:"bus" ~time_per_word:0.002 ()) ] in
        check_int "violations" fixed.Async.violations empty.Async.violations;
        check_int "remote reads" fixed.Async.remote_consumptions
          empty.Async.remote_consumptions;
        check_int "overruns" fixed.Async.overruns empty.Async.overruns;
        check_true "latencies"
          (fixed.Async.actuation_latencies = empty.Async.actuation_latencies));
    test "a contended bus delays transfers but keeps the schedule order" (fun () ->
        let load = [ Load.periodic ~node:1000 ~ident:1 ~words:10 ~period:0.05 () ] in
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 ~seed:3 ~load () in
        let quiet = machine_run [] in
        let busy = machine_run [ ("bus", cfg) ] in
        let delayed =
          List.exists2
            (fun (q : Machine.comm_exec) (b : Machine.comm_exec) ->
              b.Machine.ce_finish > q.Machine.ce_finish +. 1e-12)
            quiet.Machine.comms busy.Machine.comms
        in
        check_true "some transfer lost an arbitration" delayed;
        check_true "order still conformant" (Machine.order_conformant busy);
        match List.assoc_opt "bus" busy.Machine.bus_log with
        | Some log ->
            check_true "background frames in the log"
              (List.exists (fun c -> c.Bus.c_background) log)
        | None -> Alcotest.fail "no bus log");
  ]

(* ------------------------------------------------------------------ *)
(* scenarios: bus-level fault events *)

let scenario_tests =
  [
    test "bus event validation rejects malformed events" (fun () ->
        check_raises_invalid "corruption prob > 1" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [ Scenario.Bus_corruption { medium = None; prob = 1.5 } ]));
        check_raises_invalid "babbling period <= 0" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [
                   Scenario.Babbling_idiot
                     { medium = "bus"; ident = 1; words = 1; period = 0.;
                       from_t = 0.; until_t = 1. };
                 ]));
        check_raises_invalid "negative bus-off time" (fun () ->
            ignore
              (Scenario.make ~name:"x" ~seed:0
                 [ Scenario.Bus_off { operator = "P0"; at = -1. } ])));
    test "a bus-only scenario compiles to the null structural injection" (fun () ->
        let s =
          Scenario.make ~name:"emi" ~seed:4
            [ Scenario.Bus_corruption { medium = None; prob = 0.5 } ]
        in
        let inj = Scenario.injection s ~architecture:(chain_arch ()) in
        check_true "physically none" (Exec.Injection.is_none inj));
    test "apply_bus folds corruption, babbling and bus-off into the model" (fun () ->
        let s =
          Scenario.make ~name:"storm" ~seed:8
            [
              Scenario.Bus_corruption { medium = Some "bus"; prob = 1. };
              Scenario.Babbling_idiot
                { medium = "bus"; ident = 1; words = 2; period = 0.01;
                  from_t = 0.; until_t = 0.5 };
              Scenario.Bus_off { operator = "P1"; at = 0.25 };
            ]
        in
        let base = Bus.make ~name:"bus" ~time_per_word:0.002 () in
        (match Scenario.apply_bus s ~architecture:(chain_arch ()) [ ("bus", base) ] with
        | [ ("bus", cfg) ] ->
            check_true "babbler appended on a synthetic node"
              (List.exists
                 (fun (st : Load.stream) -> st.Load.l_node >= 1000 && st.Load.l_ident = 1)
                 cfg.Bus.b_load);
            check_true "prob-1 corruption always fires"
              (cfg.Bus.b_faults.Bus.f_corrupted ~ident:300 ~node:0 ~attempt:1 ~seq:42);
            check_false "P1 on the bus before the fault"
              (cfg.Bus.b_faults.Bus.f_node_off ~node:1 ~time:0.2);
            check_true "P1 silenced from the fault instant"
              (cfg.Bus.b_faults.Bus.f_node_off ~node:1 ~time:0.3);
            check_false "P0 untouched"
              (cfg.Bus.b_faults.Bus.f_node_off ~node:0 ~time:0.3)
        | _ -> Alcotest.fail "expected the single model back");
        (* models the scenario does not touch pass through physically *)
        let s_off = Scenario.make ~name:"one" ~seed:1
            [ Scenario.Bus_off { operator = "P0"; at = 0. } ] in
        match Scenario.apply_bus s_off ~architecture:(chain_arch ()) [] with
        | [] -> ()
        | _ -> Alcotest.fail "no models in, no models out");
    test "apply_bus rejects names the architecture does not have" (fun () ->
        let arch = chain_arch () in
        let base = Bus.make ~name:"bus" ~time_per_word:0.002 () in
        check_raises_invalid "unknown medium" (fun () ->
            ignore
              (Scenario.apply_bus
                 (Scenario.make ~name:"x" ~seed:0
                    [
                      Scenario.Babbling_idiot
                        { medium = "can7"; ident = 1; words = 1; period = 0.01;
                          from_t = 0.; until_t = 1. };
                    ])
                 ~architecture:arch [ ("bus", base) ]));
        check_raises_invalid "unknown operator" (fun () ->
            ignore
              (Scenario.apply_bus
                 (Scenario.make ~name:"x" ~seed:0
                    [ Scenario.Bus_off { operator = "P9"; at = 0. } ])
                 ~architecture:arch [ ("bus", base) ])));
    test "scenario corruption decisions are a pure function of the seed" (fun () ->
        let mk () =
          let s =
            Scenario.make ~name:"emi" ~seed:21
              [ Scenario.Bus_corruption { medium = None; prob = 0.5 } ]
          in
          match
            Scenario.apply_bus s ~architecture:(chain_arch ())
              [ ("bus", Bus.make ~name:"bus" ~time_per_word:0.002 ()) ]
          with
          | [ (_, cfg) ] ->
              List.init 64 (fun i ->
                  cfg.Bus.b_faults.Bus.f_corrupted ~ident:300 ~node:(i mod 2)
                    ~attempt:(1 + (i mod 3)) ~seq:i)
          | _ -> Alcotest.fail "expected one model"
        in
        check_true "two compilations agree" (mk () = mk ());
        check_true "prob 0.5 actually flips" (List.exists Fun.id (mk ())
                                              && not (List.for_all Fun.id (mk ()))));
  ]

(* ------------------------------------------------------------------ *)
(* static rules: MEDIA001..MEDIA005 *)

let has_rule rule diags = List.exists (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = rule) diags

let rules_tests =
  [
    test "a deployable model passes without errors" (fun () ->
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 () in
        let diags = Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("bus", cfg) ] in
        check_false "no errors" (Verify.Diag.has_errors diags));
    test "an overloaded bus is flagged MEDIA001" (fun () ->
        let load = [ Load.periodic ~node:1000 ~ident:1 ~words:100 ~period:0.01 () ] in
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 ~load () in
        let diags = Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("bus", cfg) ] in
        check_true "MEDIA001" (has_rule "MEDIA001" diags);
        check_true "as an error" (Verify.Diag.has_errors diags));
    test "utilization above the bound warns MEDIA002" (fun () ->
        let load = [ Load.periodic ~node:1000 ~ident:1 ~words:20 ~period:0.1 () ] in
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 ~load () in
        let diags =
          Verify.Media_rules.check ~util_bound:0.1 ~schedule:(chain_sched ())
            [ ("bus", cfg) ]
        in
        check_true "MEDIA002" (has_rule "MEDIA002" diags);
        check_false "warning, not error" (Verify.Diag.has_errors diags));
    test "duplicate identifiers warn MEDIA003" (fun () ->
        let load =
          [
            Load.periodic ~node:1000 ~ident:500 ~words:1 ~period:1. ();
            Load.periodic ~node:1001 ~ident:500 ~words:1 ~period:1. ();
          ]
        in
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 ~load () in
        let diags = Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("bus", cfg) ] in
        check_true "MEDIA003" (has_rule "MEDIA003" diags));
    test "unknown media and forged configs are MEDIA004 errors, not raises" (fun () ->
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 () in
        let diags = Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("can7", cfg) ] in
        check_true "unknown medium" (has_rule "MEDIA004" diags);
        let forged = { cfg with Bus.b_time_per_word = 0. } in
        let diags2 =
          Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("bus", forged) ]
        in
        check_true "forged config recovered to MEDIA004" (has_rule "MEDIA004" diags2);
        check_true "as errors" (Verify.Diag.has_errors diags2));
    test "a frame missing its consumer's read offset warns MEDIA005" (fun () ->
        (* 40-word frames at ident 1: every executive frame can be
           blocked/preempted by 0.08 s of traffic, far beyond the slack
           of a tightly packed 0.1 s schedule — yet utilization stays
           at 0.4, so the response-time analysis runs *)
        let load = [ Load.periodic ~node:1000 ~ident:1 ~words:40 ~period:0.2 () ] in
        let cfg = Bus.make ~name:"bus" ~time_per_word:0.002 ~load () in
        let diags = Verify.Media_rules.check ~schedule:(chain_sched ()) [ ("bus", cfg) ] in
        check_true "MEDIA005" (has_rule "MEDIA005" diags);
        check_false "still only warnings" (Verify.Diag.has_errors diags));
  ]

let suites =
  [
    ("media.bus", bus_tests);
    ("media.exec", exec_tests);
    ("media.scenario", scenario_tests);
    ("media.rules", rules_tests);
  ]
