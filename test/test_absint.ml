(* The value-flow analysis: interval-domain algebra, fixpoint
   behaviour on feedback loops (finite bounds for contractions,
   honest top for divergence), and the soundness property the whole
   subsystem rests on — every simulated sample lies inside the
   statically inferred interval of its port. *)

open Helpers
module I = Dataflow.Interval
module B = Dataflow.Block
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module A = Verify.Absint

let check_in msg iv x =
  if not (I.contains iv x) then
    Alcotest.failf "%s: %g not in %s" msg x (I.to_string iv)

let check_subset msg a b =
  if not (I.subset a b) then
    Alcotest.failf "%s: %s not within %s" msg (I.to_string a) (I.to_string b)

(* ------------------------------------------------------------------ *)
(* the interval domain *)

let interval_tests =
  [
    test "construction normalises NaN and reversed bounds" (fun () ->
        check_true "nan lo becomes -inf" (I.is_top (I.v Float.nan Float.nan));
        let r = I.v 3. 1. in
        check_float "reversed lo" 1. r.I.lo;
        check_float "reversed hi" 3. r.I.hi);
    test "NaN is a member of top only" (fun () ->
        check_true "top has nan" (I.contains I.top Float.nan);
        check_false "bounded has no nan" (I.contains (I.v (-1.) 1.) Float.nan);
        check_false "half-bounded has no nan" (I.contains (I.v 0. infinity) Float.nan));
    test "affine arithmetic covers the endpoints" (fun () ->
        let a = I.v (-1.) 2. and b = I.v 3. 5. in
        check_subset "add" (I.v 2. 7.) (I.add a b);
        check_subset "sub" (I.v (-6.) (-1.)) (I.sub a b);
        let n = I.neg a in
        check_float "neg lo" (-2.) n.I.lo;
        check_float "neg hi" 1. n.I.hi;
        let s = I.scale (-2.) a in
        check_float "scale lo" (-4.) s.I.lo;
        check_float "scale hi" 2. s.I.hi);
    test "scale by zero collapses even infinite intervals" (fun () ->
        check_true "0 * top = {0}" (I.equal (I.point 0.) (I.scale 0. I.top)));
    test "multiplication uses Moore corners with 0 * inf = 0" (fun () ->
        let m = I.mul (I.v (-2.) 3.) (I.v (-1.) 4.) in
        check_float "mul lo" (-8.) m.I.lo;
        check_float "mul hi" 12. m.I.hi;
        let z = I.mul (I.point 0.) I.top in
        check_true "0 * top = {0}" (I.equal (I.point 0.) z));
    test "division by a zero-straddling interval is top" (fun () ->
        check_true "straddling" (I.is_top (I.div (I.point 1.) (I.v (-1.) 1.)));
        check_true "zero endpoint" (I.is_top (I.div (I.point 1.) (I.v 0. 2.)));
        let q = I.div (I.v 1. 2.) (I.v 2. 4.) in
        check_float "quotient lo" 0.25 q.I.lo;
        check_float "quotient hi" 1. q.I.hi);
    test "clamp, sqrt and log respect their domains" (fun () ->
        let c = I.clamp ~lo:(-1.) ~hi:1. (I.v (-5.) 0.5) in
        check_float "clamp lo" (-1.) c.I.lo;
        check_float "clamp hi" 0.5 c.I.hi;
        let s = I.sqrt_ (I.v (-4.) 9.) in
        check_float "sqrt lo clamps to 0" 0. s.I.lo;
        check_float "sqrt hi" 3. s.I.hi;
        check_true "sqrt of all-negative is top" (I.is_top (I.sqrt_ (I.v (-2.) (-1.))));
        let l = I.log_ (I.v 0. 1.) in
        check_true "log touches -inf" (l.I.lo = neg_infinity);
        check_float "log hi" 0. l.I.hi;
        check_true "log of nonpositive is top" (I.is_top (I.log_ (I.v (-2.) 0.))));
    test "join, meet, hull and subset agree" (fun () ->
        let a = I.v 0. 2. and b = I.v 1. 5. in
        check_true "join" (I.equal (I.v 0. 5.) (I.join a b));
        (match I.meet a b with
        | Some m -> check_true "meet" (I.equal (I.v 1. 2.) m)
        | None -> Alcotest.fail "meet of overlapping intervals");
        check_true "disjoint meet is None" (I.meet (I.v 0. 1.) (I.v 2. 3.) = None);
        check_true "hull covers" (I.equal (I.v (-3.) 7.) (I.hull [| 7.; -3.; 0. |]));
        check_true "subset" (I.subset a (I.v (-1.) 3.));
        check_false "not subset" (I.subset b a));
  ]

(* ------------------------------------------------------------------ *)
(* fixtures: clocked feedback loops x' = k.x + u through a delay *)

let feedback_graph ?(init = 0.) ?(saturate = None) ~k ~u () =
  let g = G.create () in
  let clock = G.add g (E.clock ~period:0.1 ()) in
  let src = G.add g (C.constant [| u |]) in
  let sum = G.add g (C.sum [| 1.; 1. |]) in
  let delay = G.add g (C.unit_delay [| init |]) in
  let fb = G.add g (C.gain k) in
  G.connect_data g ~src:(src, 0) ~dst:(sum, 0);
  let loop_out =
    match saturate with
    | Some (lo, hi) ->
        let sat = G.add g (C.saturation ~lo ~hi ()) in
        G.connect_data g ~src:(sum, 0) ~dst:(sat, 0);
        (sat, 0)
    | None -> (sum, 0)
  in
  G.connect_data g ~src:loop_out ~dst:(delay, 0);
  G.connect_data g ~src:(delay, 0) ~dst:(fb, 0);
  G.connect_data g ~src:(fb, 0) ~dst:(sum, 1);
  G.connect_event g ~src:(clock, 0) ~dst:(delay, 0);
  (g, delay, sum)

let fixpoint_tests =
  [
    test "contractive loop gets a finite bound covering the limit" (fun () ->
        let g, delay, sum = feedback_graph ~k:0.9 ~u:1. () in
        let r = A.analyze g in
        check_true "converged" (A.converged r);
        let d = A.range r (delay, 0) in
        check_true "delay output bounded" (I.bounded d);
        (* the trajectory climbs from 0 toward u/(1-k) = 10 *)
        check_in "limit covered" d 10.;
        check_in "start covered" d 0.;
        check_true "sum bounded too" (I.bounded (A.range r (sum, 0))));
    test "divergent loop is honestly unbounded and flagged FLOW003" (fun () ->
        let g, delay, _ = feedback_graph ~k:1.5 ~u:1. () in
        let r = A.analyze g in
        check_true "converged" (A.converged r);
        check_false "unbounded" (I.bounded (A.range r (delay, 0)));
        let _, diags = Verify.Flow_rules.check ~result:r g in
        check_true "FLOW003 raised"
          (List.exists (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = "FLOW003") diags));
    test "a saturation inside the loop restores the bound" (fun () ->
        let g, delay, _ = feedback_graph ~saturate:(Some (-2., 2.)) ~k:1.5 ~u:1. () in
        let r = A.analyze g in
        check_subset "delay confined" (A.range r (delay, 0)) (I.v (-2.) 2.);
        let _, diags = Verify.Flow_rules.check ~result:r g in
        check_false "no FLOW003"
          (List.exists (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = "FLOW003") diags));
    test "integrator bounds follow the derivative's sign" (fun () ->
        let g = G.create () in
        let src = G.add g (C.constant [| 0.5 |]) in
        let integ = G.add g (C.integrator [| 1. |]) in
        G.connect_data g ~src:(src, 0) ~dst:(integ, 0);
        let r = A.analyze g in
        let iv = A.range r (integ, 0) in
        check_float "lower bound stays at x0" 1. iv.I.lo;
        check_true "upper bound open" (iv.I.hi = infinity));
    test "opaque blocks yield top, statics their declared range" (fun () ->
        let g = G.create () in
        let plant =
          G.add g
            (C.lti_continuous ~x0:[| 0.; 0. |]
               (Control.Plants.dc_motor Control.Plants.default_dc_motor))
        in
        let sine = G.add g (C.sine_source ~amplitude:2.5 ~freq_hz:1. ()) in
        G.connect_data g ~src:(sine, 0) ~dst:(plant, 0);
        let r = A.analyze g in
        check_true "plant output is top" (I.is_top (A.range r (plant, 0)));
        check_true "sine is its amplitude"
          (I.equal (I.v (-2.5) 2.5) (A.range r (sine, 0))));
    test "fixpoint reached on every example design" (fun () ->
        List.iter
          (fun (design : Lifecycle.Design.t) ->
            let built = design.Lifecycle.Design.build () in
            let r = A.analyze built.Lifecycle.Design.graph in
            check_true (design.Lifecycle.Design.name ^ " converged") (A.converged r))
          [
            Lifecycle.Design.pid_loop ~name:"dc_motor"
              ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
              ~x0:[| 0.; 0. |]
              ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
              ~ts:0.05 ~reference:1. ~horizon:2.0 ();
          ]);
    test "markdown table lists every port" (fun () ->
        let g, _, _ = feedback_graph ~k:0.5 ~u:1. () in
        let table = A.markdown_table (A.analyze g) in
        check_true "header" (contains table "| block | port | range |");
        check_true "delay row" (contains table "unit_delay"));
  ]

(* ------------------------------------------------------------------ *)
(* the FLOW rules, one seeded defect each *)

let flow_check ?probes g = snd (Verify.Flow_rules.check ?probes g)

let flow_has rule diags =
  List.exists (fun (d : Verify.Diag.t) -> d.Verify.Diag.rule = rule) diags

let consume g port =
  (* park the signal in a probe-free sink so FLOW004 stays quiet *)
  let sink = G.add g (C.gain 1.) in
  G.connect_data g ~src:port ~dst:(sink, 0)

let flow_tests =
  [
    test "FLOW001: divisor interval straddling zero" (fun () ->
        let g = G.create () in
        let num = G.add g (C.constant [| 1. |]) in
        let den = G.add g (C.sine_source ~amplitude:2. ~freq_hz:1. ()) in
        let div = G.add g (C.divide ()) in
        G.connect_data g ~src:(num, 0) ~dst:(div, 0);
        G.connect_data g ~src:(den, 0) ~dst:(div, 1);
        consume g (div, 0);
        check_true "flagged" (flow_has "FLOW001" (flow_check g));
        let g2 = G.create () in
        let num = G.add g2 (C.constant [| 1. |]) in
        let den = G.add g2 (C.constant [| 4. |]) in
        let div = G.add g2 (C.divide ()) in
        G.connect_data g2 ~src:(num, 0) ~dst:(div, 0);
        G.connect_data g2 ~src:(den, 0) ~dst:(div, 1);
        consume g2 (div, 0);
        check_false "nonzero divisor is clean" (flow_has "FLOW001" (flow_check g2)));
    test "FLOW002: range exceeds the declared machine format" (fun () ->
        let g = G.create () in
        let big = G.add g (B.with_format B.Float32 (C.constant [| 1e39 |])) in
        consume g (big, 0);
        check_true "flagged" (flow_has "FLOW002" (flow_check g));
        let g2 = G.create () in
        let ok = G.add g2 (B.with_format B.Float32 (C.constant [| 1e3 |])) in
        consume g2 (ok, 0);
        check_false "in-range is clean" (flow_has "FLOW002" (flow_check g2)));
    test "FLOW004: unconsumed output is info, probed output is not" (fun () ->
        let g = G.create () in
        let dangling = G.add g (C.constant [| 1. |]) in
        let diags = flow_check g in
        check_true "flagged" (flow_has "FLOW004" diags);
        check_true "as info"
          (List.for_all
             (fun (d : Verify.Diag.t) ->
               d.Verify.Diag.rule <> "FLOW004"
               || d.Verify.Diag.severity = Verify.Diag.Info)
             diags);
        check_false "probed is clean"
          (flow_has "FLOW004" (flow_check ~probes:[ ("y", (dangling, 0)) ] g)));
    test "FLOW005: saturation pinned by its input range" (fun () ->
        let g = G.create () in
        let src = G.add g (C.constant [| 5. |]) in
        let sat = G.add g (C.saturation ~lo:(-1.) ~hi:1. ()) in
        G.connect_data g ~src:(src, 0) ~dst:(sat, 0);
        consume g (sat, 0);
        check_true "flagged" (flow_has "FLOW005" (flow_check g)));
    test "FLOW006: sqrt and log fed possibly-invalid domains" (fun () ->
        let g = G.create () in
        let sine = G.add g (C.sine_source ~amplitude:2. ~freq_hz:1. ()) in
        let sq = G.add g (C.sqrt_op ()) in
        G.connect_data g ~src:(sine, 0) ~dst:(sq, 0);
        consume g (sq, 0);
        check_true "sqrt flagged" (flow_has "FLOW006" (flow_check g));
        let g2 = G.create () in
        let zero = G.add g2 (C.constant [| 0. |]) in
        let lg = G.add g2 (C.log_op ()) in
        G.connect_data g2 ~src:(zero, 0) ~dst:(lg, 0);
        consume g2 (lg, 0);
        check_true "log flagged" (flow_has "FLOW006" (flow_check g2));
        let g3 = G.create () in
        let pos = G.add g3 (C.constant [| 4. |]) in
        let sq3 = G.add g3 (C.sqrt_op ()) in
        G.connect_data g3 ~src:(pos, 0) ~dst:(sq3, 0);
        consume g3 (sq3, 0);
        check_false "positive domain is clean" (flow_has "FLOW006" (flow_check g3)));
    test "FLOW007: initial condition outside the steady input range" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:0.1 ()) in
        let src = G.add g (C.constant [| 0.5 |]) in
        let delay = G.add g (C.unit_delay [| 5. |]) in
        G.connect_data g ~src:(src, 0) ~dst:(delay, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(delay, 0);
        consume g (delay, 0);
        check_true "flagged" (flow_has "FLOW007" (flow_check g)));
    test "FLOW008: quantization error above the stated tolerance" (fun () ->
        let g = G.create () in
        let q =
          G.add g
            (B.with_format ~tolerance:0.01
               (B.Q { int_bits = 3; frac_bits = 2 })
               (C.constant [| 1.5 |]))
        in
        consume g (q, 0);
        check_true "flagged" (flow_has "FLOW008" (flow_check g));
        let g2 = G.create () in
        let fine =
          G.add g2
            (B.with_format ~tolerance:0.01
               (B.Q { int_bits = 3; frac_bits = 12 })
               (C.constant [| 1.5 |]))
        in
        consume g2 (fine, 0);
        check_false "tight format is clean" (flow_has "FLOW008" (flow_check g2)));
  ]

(* ------------------------------------------------------------------ *)
(* soundness: simulated trajectories stay inside the inferred ranges *)

let containment_tests =
  [
    qtest ~count:25 "feedback-loop samples lie inside the inferred intervals"
      QCheck2.Gen.(triple (float_range (-0.95) 0.95) (float_range (-5.) 5.)
          (float_range (-3.) 3.))
      (fun (k, u, init) ->
        let g, _, _ = feedback_graph ~init ~k ~u () in
        let r = A.analyze g in
        let ranges = A.ports r in
        let eng = Sim.Engine.create g in
        List.iteri
          (fun i (id, p, _) ->
            Sim.Engine.add_probe eng ~name:(Printf.sprintf "p%d" i) ~block:id ~port:p)
          ranges;
        Sim.Engine.run ~t_end:10. eng;
        List.for_all
          (fun (i, (_, _, iv)) ->
            let tr = Sim.Engine.probe eng (Printf.sprintf "p%d" i) in
            Array.for_all
              (fun row -> Array.for_all (I.contains iv) row)
              (Sim.Trace.values tr))
          (List.mapi (fun i x -> (i, x)) ranges));
    qtest ~count:10 "DC-motor probes stay inside the inferred intervals"
      QCheck2.Gen.(pair (float_range 10. 100.) (float_range (-2.) 2.))
      (fun (kp, reference) ->
        let design =
          Lifecycle.Design.pid_loop ~name:"dc_motor"
            ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
            ~x0:[| 0.; 0. |]
            ~gains:{ Control.Pid.kp; ki = 20.; kd = 0. }
            ~ts:0.05 ~reference ~horizon:1.0 ()
        in
        (* builds are deterministic, so block ids carry over from the
           analysed build to the simulated one *)
        let built = design.Lifecycle.Design.build () in
        let r = A.analyze built.Lifecycle.Design.graph in
        let eng = Lifecycle.Methodology.simulate_ideal design in
        List.for_all
          (fun (name, port) ->
            let iv = A.range r port in
            let tr = Sim.Engine.probe eng name in
            Array.for_all
              (fun row -> Array.for_all (I.contains iv) row)
              (Sim.Trace.values tr))
          built.Lifecycle.Design.probes);
  ]

let suites =
  [
    ("absint.interval", interval_tests);
    ("absint.fixpoint", fixpoint_tests);
    ("absint.soundness", containment_tests);
  ]
