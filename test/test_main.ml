let () =
  Alcotest.run "scilife"
    (Test_numerics.suites @ Test_control.suites @ Test_freq.suites
   @ Test_dataflow.suites @ Test_sim.suites @ Test_aaa.suites @ Test_exec.suites
   @ Test_translator.suites @ Test_lifecycle.suites @ Test_hybrid.suites
   @ Test_props.suites @ Test_sdx.suites @ Test_diagram.suites @ Test_cgen.suites
   @ Test_fault.suites @ Test_explore.suites @ Test_verify.suites
   @ Test_recovery.suites @ Test_sim_perf.suites @ Test_media.suites
   @ Test_serve.suites @ Test_absint.suites)
