open Helpers
module Pool = Explore.Pool
module Cache = Explore.Cache
module Key = Explore.Key
module Pareto = Explore.Pareto
module Grid = Explore.Grid
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Explorer = Lifecycle.Explorer

(* ------------------------------------------------------------------ *)
(* pool: deterministic parallel mapping *)

(* shared pools, one per domain count the properties quantify over —
   spawned once so the QCheck loops do not fork domains per iteration *)
let pools = Array.init 4 (fun i -> Pool.create ~domains:(i + 1) ())

exception Boom of int

let pool_tests =
  [
    test "map equals List.map whatever the domain count" (fun () ->
        let xs = List.init 100 (fun i -> i) in
        let f x = (x * x) + 3 in
        Array.iter
          (fun pool ->
            Alcotest.(check (list int))
              (Printf.sprintf "%d domain(s)" (Pool.domains pool))
              (List.map f xs) (Pool.map pool f xs))
          pools);
    qtest ~count:100 "map is List.map for every domain count and chunking"
      QCheck2.Gen.(
        triple (list_size (0 -- 40) (int_bound 1000)) (1 -- 4) (1 -- 7))
      (fun (xs, domains, chunk) ->
        let f x = (x * 7) - 1 in
        Pool.map ~chunk pools.(domains - 1) f xs = List.map f xs);
    test "mapi passes input indices" (fun () ->
        let xs = [ "a"; "b"; "c"; "d"; "e" ] in
        Alcotest.(check (list string))
          "indexed"
          (List.mapi (fun i s -> Printf.sprintf "%d:%s" i s) xs)
          (Pool.mapi pools.(2) (fun i s -> Printf.sprintf "%d:%s" i s) xs));
    test "map_reduce folds mapped results in input order" (fun () ->
        let xs = List.init 30 string_of_int in
        (* string concat is not commutative: any reordering would show *)
        Alcotest.(check string)
          "ordered fold"
          (String.concat "," xs)
          (Pool.map_reduce pools.(3) ~map:(fun s -> s)
             ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
             ~init:"" xs));
    test "the exception of the smallest failing index is re-raised" (fun () ->
        let xs = List.init 20 (fun i -> i) in
        match
          Pool.map ~chunk:2 pools.(3) (fun i -> if i >= 7 then raise (Boom i) else i) xs
        with
        | exception Boom i -> check_int "smallest index" 7 i
        | _ -> Alcotest.fail "expected Boom");
    test "reentrant maps fall back to sequential instead of deadlocking" (fun () ->
        let pool = pools.(1) in
        let nested x = List.fold_left ( + ) 0 (Pool.map pool (fun y -> y * 2) [ x; x + 1 ]) in
        Alcotest.(check (list int))
          "nested" (List.map nested [ 1; 2; 3 ])
          (Pool.map pool nested [ 1; 2; 3 ]));
    test "create rejects a non-positive domain count" (fun () ->
        check_raises_invalid "domains:0" (fun () -> ignore (Pool.create ~domains:0 ())));
    test "with_pool returns the result and shutdown is idempotent" (fun () ->
        check_int "result" 42 (Pool.with_pool ~domains:2 (fun _ -> 42));
        let p = Pool.create ~domains:2 () in
        Pool.shutdown p;
        Pool.shutdown p);
    qtest ~count:50 "irregular per-element costs do not disturb determinism"
      QCheck2.Gen.(
        triple (list_size (0 -- 60) (int_bound 500)) (1 -- 4) (1 -- 5))
      (fun (xs, domains, chunk) ->
        (* per-element work varies by orders of magnitude, so chunks
           finish far apart and stealing actually happens *)
        let f x =
          let spin = x mod 7 * 400 in
          let r = ref 0 in
          for i = 1 to spin do
            r := (!r + i) land 0xffff
          done;
          (x * 13) + !r
        in
        Pool.map ~chunk pools.(domains - 1) f xs = List.map f xs);
  ]

(* ------------------------------------------------------------------ *)
(* pool: streamed map-reduce *)

let stream_tests =
  [
    qtest ~count:80
      "map_reduce_seq equals the sequential fold for every domain count and \
       chunking"
      QCheck2.Gen.(
        triple (list_size (0 -- 60) (int_bound 1000)) (1 -- 4) (1 -- 5))
      (fun (xs, domains, chunk) ->
        (* string concat is not commutative nor associative-with-init:
           any reordering or re-chunking of the fold would show *)
        let fm x = string_of_int (x * 3) in
        let reduce acc s = acc ^ "|" ^ s in
        Pool.map_reduce_seq ~chunk pools.(domains - 1) ~map:fm ~reduce ~init:""
          (List.to_seq xs)
        = List.fold_left reduce "" (List.map fm xs));
    test "snapshot cadence and contents are pool-invariant" (fun () ->
        let xs = List.init 23 string_of_int in
        let observe pool =
          let seen = ref [] in
          let acc =
            Pool.map_reduce_seq ~chunk:2 ~snapshot_every:5
              ~snapshot:(fun ~evaluated acc -> seen := (evaluated, acc) :: !seen)
              pool
              ~map:(fun s -> s)
              ~reduce:(fun acc s -> acc ^ s)
              ~init:"" (List.to_seq xs)
          in
          (acc, List.rev !seen)
        in
        let seq = observe pools.(0) and par = observe pools.(2) in
        check_true "same final accumulator" (fst seq = fst par);
        check_true "same snapshots" (snd seq = snd par);
        check_int "four snapshots over 23 elements" 4 (List.length (snd seq));
        check_true "snapshot counts are the cadence"
          (List.map fst (snd seq) = [ 5; 10; 15; 20 ]));
    test "the first raising element in input order wins on the stream path"
      (fun () ->
        let xs = List.init 30 (fun i -> i) in
        Array.iter
          (fun pool ->
            match
              Pool.map_reduce_seq ~chunk:2 pool
                ~map:(fun i -> if i >= 7 then raise (Boom i) else i)
                ~reduce:( + ) ~init:0 (List.to_seq xs)
            with
            | exception Boom i -> check_int "smallest index" 7 i
            | _ -> Alcotest.fail "expected Boom")
          pools);
    test "a 100k-element stream reduces correctly without materialization"
      (fun () ->
        let n = 100_000 in
        let expected = n * (n - 1) / 2 in
        Array.iter
          (fun pool ->
            check_int
              (Printf.sprintf "%d domain(s)" (Pool.domains pool))
              expected
              (Pool.map_reduce_seq ~chunk:64 pool
                 ~map:(fun i -> i)
                 ~reduce:( + ) ~init:0
                 (Seq.take n (Seq.ints 0))))
          [| pools.(0); pools.(1) |]);
    test "an empty sequence yields the init" (fun () ->
        check_int "init" 17
          (Pool.map_reduce_seq pools.(2) ~map:(fun x -> x) ~reduce:( + ) ~init:17
             Seq.empty));
    test "a raising producer is re-raised after the yielded prefix" (fun () ->
        let bad =
          Seq.append (List.to_seq [ 1; 2; 3 ]) (fun () -> raise (Boom 99))
        in
        Array.iter
          (fun pool ->
            let reduced = ref 0 in
            (match
               Pool.map_reduce_seq ~chunk:1 pool
                 ~map:(fun x -> x)
                 ~reduce:(fun acc x ->
                   reduced := !reduced + 1;
                   acc + x)
                 ~init:0 bad
             with
            | exception Boom 99 -> ()
            | exception e -> raise e
            | _ -> Alcotest.fail "expected Boom 99");
            check_int "whole prefix reduced first" 3 !reduced)
          [| pools.(0); pools.(3) |]);
    test "map_reduce_seq validates chunk and snapshot_every" (fun () ->
        check_raises_invalid "chunk:0" (fun () ->
            ignore
              (Pool.map_reduce_seq ~chunk:0 pools.(1) ~map:Fun.id ~reduce:( + )
                 ~init:0 Seq.empty));
        check_raises_invalid "snapshot_every:0" (fun () ->
            ignore
              (Pool.map_reduce_seq ~snapshot_every:0 pools.(1) ~map:Fun.id
                 ~reduce:( + ) ~init:0 Seq.empty)));
  ]

(* ------------------------------------------------------------------ *)
(* cache: memoization and counters *)

let cache_tests =
  [
    test "a miss computes, a hit replays the stored value" (fun () ->
        let c = Cache.create () in
        let v1 = Cache.find_or_add c ~key:"k" (fun () -> ref 1) in
        let v2 = Cache.find_or_add c ~key:"k" (fun () -> ref 2) in
        check_true "physically the stored value" (v1 == v2);
        check_int "contents" 1 !v2;
        let s = Cache.stats c in
        check_int "hits" 1 s.Cache.hits;
        check_int "misses" 1 s.Cache.misses;
        check_int "size" 1 s.Cache.size);
    test "find_opt counts lookups" (fun () ->
        let c = Cache.create () in
        check_true "absent" (Cache.find_opt c ~key:"a" = None);
        Cache.add c ~key:"a" 7;
        check_true "present" (Cache.find_opt c ~key:"a" = Some 7);
        let s = Cache.stats c in
        check_int "one miss" 1 s.Cache.misses;
        check_int "one hit" 1 s.Cache.hits);
    test "eviction is FIFO once capacity is exceeded" (fun () ->
        let c = Cache.create ~capacity:2 () in
        List.iter (fun k -> ignore (Cache.find_or_add c ~key:k (fun () -> k))) [ "a"; "b"; "c" ];
        let s = Cache.stats c in
        check_int "evictions" 1 s.Cache.evictions;
        check_int "live entries" 2 s.Cache.size;
        check_true "oldest gone" (Cache.find_opt c ~key:"a" = None);
        check_true "newest kept" (Cache.find_opt c ~key:"c" = Some "c"));
    test "a raising computation caches nothing" (fun () ->
        let c = Cache.create () in
        (match Cache.find_or_add c ~key:"k" (fun () -> failwith "boom") with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
        check_int "empty" 0 (Cache.stats c).Cache.size;
        check_int "recomputed" 5 (Cache.find_or_add c ~key:"k" (fun () -> 5)));
    test "hit_rate is nan before the first lookup, then hits over lookups" (fun () ->
        let c = Cache.create () in
        check_true "nan" (Float.is_nan (Cache.hit_rate (Cache.stats c)));
        ignore (Cache.find_or_add c ~key:"k" (fun () -> ()));
        ignore (Cache.find_or_add c ~key:"k" (fun () -> ()));
        check_float "0.5" 0.5 (Cache.hit_rate (Cache.stats c)));
    test "reset drops entries and zeroes counters" (fun () ->
        let c = Cache.create () in
        ignore (Cache.find_or_add c ~key:"k" (fun () -> 1));
        Cache.reset c;
        let s = Cache.stats c in
        check_int "size" 0 s.Cache.size;
        check_int "hits" 0 s.Cache.hits;
        check_int "misses" 0 s.Cache.misses);
    test "pp_stats renders the counters" (fun () ->
        let c = Cache.create () in
        ignore (Cache.find_or_add c ~key:"k" (fun () -> 1));
        ignore (Cache.find_or_add c ~key:"k" (fun () -> 1));
        let s = Format.asprintf "%a" Cache.pp_stats (Cache.stats c) in
        check_true "hits shown" (contains s "1 hits / 1 misses");
        check_true "rate shown" (contains s "50.0 % hit rate"));
    test "create rejects a non-positive capacity" (fun () ->
        check_raises_invalid "capacity:0" (fun () -> ignore (Cache.create ~capacity:0 ())));
  ]

(* ------------------------------------------------------------------ *)
(* cache persistence: the append-only backing log *)

let with_log f =
  let path = Filename.temp_file "scilife_cache" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_str ?(capacity = 16) path =
  let c = Cache.create ~capacity () in
  let n = Cache.open_backing c ~path ~encode:Fun.id ~decode:Fun.id in
  (c, n)

let persist_tests =
  [
    test "entries written before close survive a reload" (fun () ->
        with_log (fun path ->
            let c, loaded = open_str path in
            check_int "fresh log" 0 loaded;
            Cache.add c ~key:"a" "1";
            Cache.add c ~key:"b" "value with\nnewlines and \x00 bytes";
            Cache.close c;
            let c2, loaded = open_str path in
            check_int "replayed" 2 loaded;
            check_true "a" (Cache.find_opt c2 ~key:"a" = Some "1");
            check_true "binary-safe"
              (Cache.find_opt c2 ~key:"b" = Some "value with\nnewlines and \x00 bytes");
            Cache.close c2));
    test "a replaced key reloads with its latest value" (fun () ->
        with_log (fun path ->
            let c, _ = open_str path in
            Cache.add c ~key:"k" "old";
            Cache.add c ~key:"k" "new";
            Cache.close c;
            let c2, _ = open_str path in
            check_true "latest wins" (Cache.find_opt c2 ~key:"k" = Some "new");
            check_int "one live entry" 1 (Cache.stats c2).Cache.size;
            Cache.close c2));
    test "replay honours FIFO eviction, converging to the live window" (fun () ->
        with_log (fun path ->
            let c, _ = open_str ~capacity:2 path in
            List.iter (fun k -> Cache.add c ~key:k k) [ "a"; "b"; "c" ];
            Cache.close c;
            let c2, _ = open_str ~capacity:2 path in
            check_true "oldest gone" (Cache.find_opt c2 ~key:"a" = None);
            check_true "window kept"
              (Cache.find_opt c2 ~key:"b" = Some "b"
              && Cache.find_opt c2 ~key:"c" = Some "c");
            Cache.close c2));
    test "a truncated tail record is dropped, earlier records kept" (fun () ->
        with_log (fun path ->
            let c, _ = open_str path in
            Cache.add c ~key:"good" "kept";
            Cache.add c ~key:"casualty" "of the crash";
            Cache.close c;
            (* chop mid-record, as a crash would *)
            let full = In_channel.with_open_bin path In_channel.input_all in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (String.sub full 0 (String.length full - 7)));
            let c2, loaded = open_str path in
            check_int "one survivor" 1 loaded;
            check_true "kept" (Cache.find_opt c2 ~key:"good" = Some "kept");
            check_true "dropped" (Cache.find_opt c2 ~key:"casualty" = None);
            (* the next write after a truncated reload still round-trips *)
            Cache.add c2 ~key:"after" "crash";
            Cache.close c2;
            let c3, _ = open_str path in
            check_true "appended post-crash" (Cache.find_opt c3 ~key:"after" = Some "crash");
            Cache.close c3));
    test "open_backing refuses a non-empty or already-backed cache" (fun () ->
        with_log (fun path ->
            let dirty = Cache.create () in
            Cache.add dirty ~key:"k" "v";
            check_raises_invalid "non-empty" (fun () ->
                ignore (Cache.open_backing dirty ~path ~encode:Fun.id ~decode:Fun.id));
            let c, _ = open_str path in
            check_raises_invalid "double open" (fun () ->
                ignore (Cache.open_backing c ~path ~encode:Fun.id ~decode:Fun.id));
            Cache.close c));
    test "close is idempotent and the cache stays usable in memory" (fun () ->
        with_log (fun path ->
            let c, _ = open_str path in
            Cache.add c ~key:"a" "1";
            Cache.close c;
            Cache.close c;
            Cache.add c ~key:"b" "2";
            check_true "in-memory add works" (Cache.find_opt c ~key:"b" = Some "2");
            let c2, loaded = open_str path in
            check_int "post-close add not persisted" 1 loaded;
            Cache.close c2));
    test "reset truncates the log" (fun () ->
        with_log (fun path ->
            let c, _ = open_str path in
            Cache.add c ~key:"a" "1";
            Cache.reset c;
            Cache.add c ~key:"b" "2";
            Cache.close c;
            let c2, loaded = open_str path in
            check_int "only post-reset entries" 1 loaded;
            check_true "reset entry gone" (Cache.find_opt c2 ~key:"a" = None);
            check_true "kept" (Cache.find_opt c2 ~key:"b" = Some "2");
            Cache.close c2));
    test "flush makes entries durable without closing" (fun () ->
        with_log (fun path ->
            let c, _ = open_str path in
            Cache.add c ~key:"a" "1";
            Cache.flush c;
            (* read the file while the writer still has it open *)
            let c2, loaded = open_str ~capacity:16 path in
            check_int "visible after flush" 1 loaded;
            Cache.close c2;
            Cache.close c));
    test "concurrent writers lose no appends" (fun () ->
        with_log (fun path ->
            let c, _ = open_str ~capacity:512 path in
            let keys = List.init 200 (fun i -> Printf.sprintf "k%03d" i) in
            ignore (Pool.map pools.(3) (fun k -> Cache.add c ~key:k k) keys);
            Cache.close c;
            let c2, loaded = open_str ~capacity:512 path in
            check_int "all 200 records" 200 loaded;
            List.iter
              (fun k -> check_true k (Cache.find_opt c2 ~key:k = Some k))
              keys;
            Cache.close c2));
    test "compact rewrites only the live entries and a reload agrees" (fun () ->
        with_log (fun path ->
            let c, _ = open_str ~capacity:4 path in
            (* bloat the log: replacements and evictions leave dead records *)
            List.iter (fun k -> Cache.add c ~key:k k) [ "a"; "b"; "c"; "d" ];
            List.iter (fun k -> Cache.add c ~key:k (k ^ "2")) [ "a"; "b"; "c"; "d" ];
            List.iter (fun k -> Cache.add c ~key:k k) [ "e"; "f" ];
            Cache.flush c;
            let before = (Unix.stat path).Unix.st_size in
            let written = Cache.compact c in
            check_int "one record per live entry" (Cache.stats c).Cache.size written;
            let after = (Unix.stat path).Unix.st_size in
            check_true "log shrank" (after < before);
            Cache.close c;
            let c2, loaded = open_str ~capacity:4 path in
            check_int "reload sees exactly the live set" written loaded;
            check_true "evicted entries stayed gone"
              (Cache.find_opt c2 ~key:"a" = None && Cache.find_opt c2 ~key:"b" = None);
            check_true "window kept, latest values"
              (Cache.find_opt c2 ~key:"c" = Some "c2"
              && Cache.find_opt c2 ~key:"d" = Some "d2"
              && Cache.find_opt c2 ~key:"e" = Some "e"
              && Cache.find_opt c2 ~key:"f" = Some "f");
            (* appends after a compaction still round-trip *)
            Cache.add c2 ~key:"g" "after";
            Cache.close c2;
            let c3, _ = open_str ~capacity:8 path in
            check_true "post-compaction append survives"
              (Cache.find_opt c3 ~key:"g" = Some "after");
            Cache.close c3));
    test "the threshold triggers compaction on its own" (fun () ->
        with_log (fun path ->
            let c = Cache.create ~capacity:2 () in
            ignore
              (Cache.open_backing ~compact_threshold:64 c ~path ~encode:Fun.id
                 ~decode:Fun.id);
            (* with a 2-entry window every insertion past the threshold
               evicts, so the log would grow without bound uncompacted *)
            for i = 1 to 200 do
              Cache.add c ~key:(Printf.sprintf "k%03d" i) (String.make 8 'x')
            done;
            Cache.flush c;
            let size = (Unix.stat path).Unix.st_size in
            check_true "log stays near the live window, not 200 records"
              (size < 1024);
            Cache.close c;
            let c2, loaded = open_str ~capacity:2 path in
            (* the log holds the last rewrite's live records plus the
               few appends since — far from the 200 inserted *)
            check_true "replay stays near the live window" (loaded < 20);
            check_int "table converges to the window" 2 (Cache.stats c2).Cache.size;
            check_true "newest kept" (Cache.find_opt c2 ~key:"k200" <> None);
            Cache.close c2);
        check_raises_invalid "negative threshold" (fun () ->
            with_log (fun path ->
                ignore
                  (Cache.open_backing ~compact_threshold:(-1) (Cache.create ())
                     ~path ~encode:Fun.id ~decode:Fun.id))));
    test "compact is a no-op on an unbacked or closed cache" (fun () ->
        let c = Cache.create () in
        Cache.add c ~key:"k" "v";
        check_int "unbacked" 0 (Cache.compact c);
        with_log (fun path ->
            let c2, _ = open_str path in
            Cache.add c2 ~key:"k" "v";
            Cache.close c2;
            check_int "closed" 0 (Cache.compact c2)));
  ]

(* ------------------------------------------------------------------ *)
(* key: canonical digests *)

let key_tests =
  [
    test "digests are stable and length-prefixing prevents aliasing" (fun () ->
        Alcotest.(check string)
          "stable" (Key.digest [ "a"; "b" ]) (Key.digest [ "a"; "b" ]);
        check_true "field boundaries matter"
          (Key.digest [ "ab"; "c" ] <> Key.digest [ "a"; "bc" ]);
        check_true "string helper length-prefixes" (Key.string "ab" <> Key.string "b"));
    test "duration digests ignore insertion order" (fun () ->
        let build order =
          let d = Dur.create () in
          List.iter (fun (op, operator, w) -> Dur.set d ~op ~operator w) order;
          Key.durations d
        in
        let entries = [ ("a", "P0", 0.1); ("b", "P0", 0.2); ("a", "P1", 0.3) ] in
        Alcotest.(check string)
          "canonical" (build entries) (build (List.rev entries)));
    test "duration digests see WCET changes" (fun () ->
        let build w =
          let d = Dur.create () in
          Dur.set d ~op:"a" ~operator:"P0" w;
          Key.durations d
        in
        check_true "different tables" (build 0.1 <> build 0.2));
    test "mode digests discriminate the law, fraction and seed" (fun () ->
        let jittered seed =
          Translator.Delay_graph.Jittered
            { law = Exec.Timing_law.Uniform; bcet_frac = 0.4; seed }
        in
        check_true "static vs jittered"
          (Key.mode Translator.Delay_graph.Static_wcet <> Key.mode (jittered 1));
        check_true "seeds" (Key.mode (jittered 1) <> Key.mode (jittered 2)));
    test "algorithm digests see the period and the graph" (fun () ->
        let alg period extra =
          let a = Alg.create ~name:"alg" ~period in
          let s = Alg.add_op a ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
          let c = Alg.add_op a ~name:"c" ~kind:Alg.Compute ~inputs:[| 1 |] () in
          Alg.depend a ~src:(s, 0) ~dst:(c, 0);
          if extra then ignore (Alg.add_op a ~name:"x" ~kind:Alg.Compute ());
          Key.algorithm a
        in
        Alcotest.(check string) "stable" (alg 0.1 false) (alg 0.1 false);
        check_true "period" (alg 0.1 false <> alg 0.2 false);
        check_true "extra op" (alg 0.1 false <> alg 0.1 true));
  ]

(* ------------------------------------------------------------------ *)
(* pareto: non-dominated fronts *)

let pareto_tests =
  [
    test "front matches the hand-computed oracle" (fun () ->
        let points = [ (1., 5.); (2., 4.); (3., 3.); (2., 6.); (4., 3.); (3., 5.) ] in
        let objectives (a, b) = [| a; b |] in
        Alcotest.(check (list (pair (float 0.) (float 0.))))
          "front"
          [ (1., 5.); (2., 4.); (3., 3.) ]
          (Pareto.front ~objectives points));
    test "identical points all survive" (fun () ->
        let points = [ (1., 1.); (1., 1.) ] in
        check_int "both kept" 2
          (List.length (Pareto.front ~objectives:(fun (a, b) -> [| a; b |]) points)));
    test "dominates requires no-worse everywhere and better somewhere" (fun () ->
        check_true "strictly better" (Pareto.dominates [| 1.; 2. |] [| 1.; 3. |]);
        check_false "worse on one" (Pareto.dominates [| 1.; 3. |] [| 2.; 2. |]);
        check_false "equal" (Pareto.dominates [| 1.; 2. |] [| 1.; 2. |]);
        check_raises_invalid "length mismatch" (fun () ->
            ignore (Pareto.dominates [| 1. |] [| 1.; 2. |])));
    test "NaN objectives compare as +inf" (fun () ->
        check_true "nan dominated" (Pareto.dominates [| 0.; 0. |] [| Float.nan; 0. |]);
        let front =
          Pareto.front ~objectives:(fun v -> v) [ [| Float.nan; 0. |]; [| 0.; 0. |] ]
        in
        check_int "finite point only" 1 (List.length front));
    qtest ~count:200 "front keeps exactly the non-dominated points"
      QCheck2.Gen.(list_size (0 -- 25) (pair (0 -- 8) (0 -- 8)))
      (fun points ->
        let objectives (a, b) = [| float_of_int a; float_of_int b |] in
        let front = Pareto.front ~objectives points in
        List.for_all
          (fun p ->
            let dominated =
              List.exists (fun q -> Pareto.dominates (objectives q) (objectives p)) points
            in
            List.mem p front = not dominated)
          points);
    test "sort_by sorts ascending and stably" (fun () ->
        Alcotest.(check (list (pair (float 0.) string)))
          "sorted"
          [ (1., "a"); (1., "b"); (2., "c") ]
          (Pareto.sort_by ~objective:fst [ (2., "c"); (1., "a"); (1., "b") ]));
  ]

(* ------------------------------------------------------------------ *)
(* pareto: incremental front *)

let front_of_list points =
  List.fold_left
    (fun f (a, b) -> Pareto.Front.insert f [| a; b |] (a, b))
    Pareto.Front.empty points

(* reference oracle: the pairwise dominance scan the old front used *)
let oracle_front objectives points =
  List.filter
    (fun p ->
      not
        (List.exists (fun q -> Pareto.dominates (objectives q) (objectives p)) points))
    points

let front_tests =
  [
    test "insert keeps the staircase and evicts dominated points" (fun () ->
        let f =
          front_of_list [ (2., 4.); (1., 5.); (3., 3.); (2., 6.); (1.5, 4.5) ]
        in
        Alcotest.(check (list (pair (float 0.) (float 0.))))
          "survivors in insertion order"
          [ (2., 4.); (1., 5.); (3., 3.); (1.5, 4.5) ]
          (Pareto.Front.elements f);
        check_int "size" 4 (Pareto.Front.size f));
    test "full-vector ties all survive, later dominator evicts the bucket"
      (fun () ->
        let f = front_of_list [ (1., 1.); (1., 1.) ] in
        check_int "both kept" 2 (Pareto.Front.size f);
        let f = Pareto.Front.insert f [| 1.; 0.5 |] (1., 0.5) in
        Alcotest.(check (list (pair (float 0.) (float 0.))))
          "bucket evicted" [ (1., 0.5) ]
          (Pareto.Front.elements f));
    test "NaN objectives are normalized to +inf" (fun () ->
        let f = front_of_list [ (Float.nan, 0.); (0., 0.) ] in
        check_int "finite point only" 1 (Pareto.Front.size f);
        match Pareto.Front.points f with
        | [ (objs, _) ] ->
            check_float "normalized first objective" 0. objs.(0)
        | _ -> Alcotest.fail "expected one survivor");
    test "dimensions other than two fall back to the scan" (fun () ->
        let f =
          List.fold_left
            (fun f v -> Pareto.Front.insert f v v)
            Pareto.Front.empty
            [ [| 1.; 2.; 3. |]; [| 2.; 1.; 3. |]; [| 2.; 2.; 4. |]; [| 1.; 2.; 3. |] ]
        in
        check_int "dominated dropped, tie kept" 3 (Pareto.Front.size f));
    test "insert validates the objective count" (fun () ->
        let f = front_of_list [ (1., 1.) ] in
        check_raises_invalid "3 objectives into a 2-objective front" (fun () ->
            ignore (Pareto.Front.insert f [| 1.; 2.; 3. |] (0., 0.)));
        check_raises_invalid "empty vector" (fun () ->
            ignore (Pareto.Front.insert Pareto.Front.empty [||] ())));
    qtest ~count:300 "incremental front equals the pairwise oracle"
      QCheck2.Gen.(list_size (0 -- 40) (pair (0 -- 8) (0 -- 8)))
      (fun points ->
        let points = List.map (fun (a, b) -> (float_of_int a, float_of_int b)) points in
        let objectives (a, b) = [| a; b |] in
        Pareto.Front.elements (front_of_list points)
        = oracle_front objectives points);
    qtest ~count:200 "merge of split halves equals the front of the whole"
      QCheck2.Gen.(
        pair
          (list_size (0 -- 25) (pair (0 -- 6) (0 -- 6)))
          (list_size (0 -- 25) (pair (0 -- 6) (0 -- 6))))
      (fun (xs, ys) ->
        let fl = List.map (fun (a, b) -> (float_of_int a, float_of_int b)) in
        let xs = fl xs and ys = fl ys in
        Pareto.Front.elements
          (Pareto.Front.merge (front_of_list xs) (front_of_list ys))
        = Pareto.Front.elements (front_of_list (xs @ ys)));
  ]

(* ------------------------------------------------------------------ *)
(* grid: declarative candidate spaces *)

let grid_platform ?(label = "mcu") ?(price = 1.) () =
  let durations_of frac =
    let d = Dur.create () in
    let set op share =
      Dur.set d ~op ~operator:"P0" (share *. frac *. 0.05);
      Dur.set_bcet d ~op ~operator:"P0" (0.4 *. share *. frac *. 0.05)
    in
    set "reference" 0.05;
    set "sample_y" 0.2;
    set "pid" 0.6;
    set "hold_u" 0.15;
    d
  in
  { Grid.label; price; architecture = Arch.single (); durations_of }

let grid_tests =
  [
    test "candidates is the row-major cross-product" (fun () ->
        let cs =
          Grid.candidates
            ~fractions:[ 0.5; 0.9 ]
            ~seeds:[ 1; 2 ]
            ~platforms:[ grid_platform (); grid_platform ~label:"duo" ~price:2. () ]
            ()
        in
        check_int "size" 8 (Grid.size cs);
        let tags = List.map Grid.tag cs in
        Alcotest.(check string) "first" "mcu f=0.5 seed=1" (List.hd tags);
        Alcotest.(check string) "last" "duo f=0.9 seed=2" (List.nth tags 7));
    test "no seeds means one static-WCET candidate per cell" (fun () ->
        let cs = Grid.candidates ~fractions:[ 0.5 ] ~platforms:[ grid_platform () ] () in
        check_int "one" 1 (Grid.size cs);
        check_true "static"
          ((List.hd cs).Grid.mode = Translator.Delay_graph.Static_wcet));
    test "validation rejects empty or out-of-range axes" (fun () ->
        check_raises_invalid "no platforms" (fun () ->
            ignore (Grid.candidates ~platforms:[] ()));
        check_raises_invalid "no fractions" (fun () ->
            ignore (Grid.candidates ~fractions:[] ~platforms:[ grid_platform () ] ()));
        check_raises_invalid "fraction > 1" (fun () ->
            ignore (Grid.candidates ~fractions:[ 1.5 ] ~platforms:[ grid_platform () ] ())));
    test "seq streams the same candidates the list materializes" (fun () ->
        let fractions = [ 0.4; 0.7 ] and seeds = [ 3; 4; 5 ] in
        let platforms = [ grid_platform (); grid_platform ~label:"duo" ~price:2. () ] in
        check_true "same tags"
          (List.of_seq (Seq.map Grid.tag (Grid.seq ~fractions ~seeds ~platforms ()))
          = List.map Grid.tag (Grid.candidates ~fractions ~seeds ~platforms ())));
    test "count sizes the grid without materializing it" (fun () ->
        let platforms = [ grid_platform () ] in
        check_int "static grid" 3 (Grid.count ~platforms ());
        check_int "seeded"
          (2 * 4)
          (Grid.count ~fractions:[ 0.4; 0.7 ] ~seeds:[ 1; 2; 3; 4 ] ~platforms ());
        check_raises_invalid "validated eagerly" (fun () ->
            ignore (Grid.count ~platforms:[] ())));
    test "a million-candidate seq is lazy" (fun () ->
        let platforms = [ grid_platform () ] in
        let seeds = List.init 1_000_000 (fun i -> i) in
        let s = Grid.seq ~fractions:[ 0.5 ] ~seeds ~platforms () in
        check_int "count" 1_000_000 (Grid.count ~fractions:[ 0.5 ] ~seeds ~platforms ());
        (* forcing three elements must not walk the rest *)
        Alcotest.(check (list string))
          "first three"
          [ "mcu f=0.5 seed=0"; "mcu f=0.5 seed=1"; "mcu f=0.5 seed=2" ]
          (List.of_seq (Seq.map Grid.tag (Seq.take 3 s))));
  ]

(* ------------------------------------------------------------------ *)
(* the engine end to end: Explorer, Sweep, Montecarlo, Robustness *)

let dc_design ?(name = "dc_motor") ?(ts = 0.05) () =
  Lifecycle.Design.pid_loop ~name
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
    ~ts ~reference:1. ~horizon:0.5 ()

let small_grid () =
  Grid.candidates
    ~fractions:[ 0.3; 0.8 ]
    ~seeds:[ 11 ]
    ~platforms:[ grid_platform (); grid_platform ~label:"fast" ~price:2. () ]
    ()

let engine_tests =
  [
    test "explorer points are identical through 1- and 2-domain pools" (fun () ->
        let designs = [ dc_design () ] and candidates = small_grid () in
        let seq =
          Pool.with_pool ~domains:1 (fun pool ->
              Explorer.evaluate ~pool ~designs ~candidates ())
        in
        let par =
          Pool.with_pool ~domains:2 (fun pool ->
              Explorer.evaluate ~pool ~designs ~candidates ())
        in
        check_int "point count" 4 (List.length seq);
        check_true "bit-identical" (seq = par));
    test "a shared cache replays the second evaluation" (fun () ->
        let designs = [ dc_design () ] and candidates = small_grid () in
        let cache = Cache.create () in
        let pool = pools.(0) in
        let first = Explorer.evaluate ~pool ~cache ~designs ~candidates () in
        let misses = (Cache.stats cache).Cache.misses in
        let second = Explorer.evaluate ~pool ~cache ~designs ~candidates () in
        let s = Cache.stats cache in
        check_true "same points" (first = second);
        check_true "hits on replay" (s.Cache.hits > 0);
        check_int "no new misses" misses s.Cache.misses);
    test "the pareto front is a subset of the feasible points" (fun () ->
        let points =
          Explorer.evaluate ~pool:pools.(0) ~designs:[ dc_design () ]
            ~candidates:(small_grid ()) ()
        in
        let front = Explorer.pareto points in
        check_true "non-empty" (front <> []);
        let feasible = Explorer.feasible points in
        check_true "subset" (List.for_all (fun p -> List.mem p feasible) front));
    test "markdown section renders the front and the cache stats" (fun () ->
        let cache = Cache.create () in
        let points =
          Explorer.evaluate ~pool:pools.(0) ~cache ~designs:[ dc_design () ]
            ~candidates:(small_grid ()) ()
        in
        let section = Explorer.markdown_section ~cache points in
        check_true "section header" (contains section "## Design-space exploration");
        check_true "front" (contains section "### Pareto front");
        check_true "cache" (contains section "### Evaluation cache");
        check_true "csv rows" (List.length points + 1 = List.length
             (String.split_on_char '\n' (String.trim (Explorer.csv points)))));
    test "Report.markdown splices the exploration section" (fun () ->
        let design = dc_design () in
        let comparison =
          Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
            ~durations:((grid_platform ()).Grid.durations_of 0.5)
            ()
        in
        let report =
          Lifecycle.Report.markdown ~exploration:"## Design-space exploration\nMARKER"
            design comparison
        in
        check_true "spliced" (contains report "MARKER"));
    test "Sweep.latency through the pool equals the sequential sweep" (fun () ->
        let design = dc_design () in
        let durations_of = (grid_platform ()).Grid.durations_of in
        let fractions = [ 0.2; 0.5; 0.8 ] in
        let seq =
          Pool.with_pool ~domains:1 (fun pool ->
              Lifecycle.Sweep.latency ~fractions ~pool ~design
                ~architecture:(Arch.single ()) ~durations_of ())
        in
        let par =
          Pool.with_pool ~domains:3 (fun pool ->
              Lifecycle.Sweep.latency ~fractions ~pool ~design
                ~architecture:(Arch.single ()) ~durations_of ())
        in
        check_true "identical" (seq = par));
    test "Montecarlo surfaces its seeds and is pool-invariant" (fun () ->
        let design = dc_design () in
        let implementation =
          Lifecycle.Methodology.implement ~design ~architecture:(Arch.single ())
            ~durations:((grid_platform ()).Grid.durations_of 0.6)
            ()
        in
        let run pool =
          Lifecycle.Montecarlo.run ~runs:6 ~base_seed:500 ~pool ~design ~implementation ()
        in
        let seq = Pool.with_pool ~domains:1 run in
        let par = Pool.with_pool ~domains:2 run in
        Alcotest.(check (array int))
          "seed array" (Array.init 6 (fun i -> 500 + i)) seq.Lifecycle.Montecarlo.seeds;
        check_true "identical costs"
          (seq.Lifecycle.Montecarlo.costs = par.Lifecycle.Montecarlo.costs);
        (* a shared cache replays every draw of a repeated summary *)
        let cache = Cache.create () in
        let cached () =
          Lifecycle.Montecarlo.run ~runs:6 ~base_seed:500 ~pool:pools.(0) ~cache ~design
            ~implementation ()
        in
        let first = cached () in
        let second = cached () in
        check_true "replayed" (first.Lifecycle.Montecarlo.costs = second.Lifecycle.Montecarlo.costs);
        check_true "hits" ((Cache.stats cache).Cache.hits >= 6));
    test "Robustness.evaluate is pool-invariant" (fun () ->
        let design = dc_design () in
        let architecture =
          Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1" ]
        in
        let durations =
          let d = Dur.create () in
          let set op share =
            List.iter
              (fun operator -> Dur.set d ~op ~operator (share *. 0.6 *. 0.05))
              [ "P0"; "P1" ]
          in
          set "reference" 0.05;
          set "sample_y" 0.2;
          set "pid" 0.6;
          set "hold_u" 0.15;
          d
        in
        let scenarios =
          [
            Fault.Scenario.make ~name:"loss" ~seed:5
              [ Fault.Scenario.Message_loss { medium = None; prob = 0.2 } ];
            Fault.Scenario.make ~name:"p1_down" ~seed:6
              [ Fault.Scenario.Processor_failstop { operator = "P1"; at = 0. } ];
          ]
        in
        let run pool =
          Fault.Robustness.evaluate ~iterations:40 ~pool ~design ~architecture ~durations
            ~scenarios ()
        in
        let seq = Pool.with_pool ~domains:1 run in
        let par = Pool.with_pool ~domains:2 run in
        let strip (s : Fault.Robustness.summary) =
          List.map
            (fun (o : Fault.Robustness.outcome) ->
              (o.Fault.Robustness.cost, o.degradation_pct, o.lost_transfers, o.stale_reads))
            s.Fault.Robustness.outcomes
        in
        check_true "identical outcomes" (strip seq = strip par);
        check_float "same worst" seq.Fault.Robustness.worst_degradation_pct
          par.Fault.Robustness.worst_degradation_pct);
  ]

(* ------------------------------------------------------------------ *)
(* streaming evaluation and engine reuse *)

let seeded_grid ?(fractions = [ 0.3; 0.8 ]) ?(seeds = [ 11; 12; 13 ]) () =
  Grid.candidates ~fractions ~seeds
    ~platforms:[ grid_platform (); grid_platform ~label:"fast" ~price:2. () ]
    ()

let engine_seq_tests =
  [
    test "engine reuse is bit-for-bit equal to rebuild-per-candidate" (fun () ->
        let designs = [ dc_design () ] and candidates = seeded_grid () in
        let eval ~engine_reuse domains =
          Pool.with_pool ~domains (fun pool ->
              Explorer.evaluate ~pool ~engine_reuse ~designs ~candidates ())
        in
        let rebuilt = eval ~engine_reuse:false 1 in
        check_true "reused sequential" (eval ~engine_reuse:true 1 = rebuilt);
        check_true "reused parallel" (eval ~engine_reuse:true 2 = rebuilt));
    qtest ~count:4 "engine reuse equals rebuild on random small grids"
      QCheck2.Gen.(
        triple (1 -- 3) (list_size (1 -- 3) (100 -- 999)) (1 -- 2))
      (fun (nfrac, seeds, domains) ->
        let fractions = List.init nfrac (fun i -> 0.3 +. (0.2 *. float_of_int i)) in
        let candidates = seeded_grid ~fractions ~seeds () in
        let designs = [ dc_design ~ts:0.06 () ] in
        let eval engine_reuse =
          Pool.with_pool ~domains (fun pool ->
              Explorer.evaluate ~pool ~engine_reuse ~designs ~candidates ())
        in
        eval true = eval false);
    test "evaluate_seq agrees with evaluate and samples bit-for-bit" (fun () ->
        let designs = [ dc_design () ] and candidates = seeded_grid () in
        let points =
          Explorer.evaluate ~pool:pools.(0) ~designs ~candidates ()
        in
        let summary =
          Explorer.evaluate_seq ~pool:pools.(0) ~sample_every:2 ~designs
            ~candidates:(List.to_seq candidates) ()
        in
        check_int "evaluated" (List.length points) summary.Explorer.s_evaluated;
        check_int "feasible" (List.length (Explorer.feasible points))
          summary.Explorer.s_feasible;
        check_true "front equals the sorted batch front"
          (summary.Explorer.s_front
          = Pareto.sort_by
              ~objective:(fun (p : Explorer.point) -> p.Explorer.price)
              (Explorer.pareto points));
        let expected_samples =
          List.filteri (fun i _ -> i mod 2 = 0) points
          |> List.mapi (fun k p -> (2 * k, p))
        in
        check_true "samples are the even-indexed points"
          (summary.Explorer.s_samples = expected_samples));
    test "evaluate_seq is pool-invariant including snapshots" (fun () ->
        let designs = [ dc_design () ] and candidates = seeded_grid () in
        let observe pool =
          let snaps = ref [] in
          let s =
            Explorer.evaluate_seq ~pool ~chunk:2 ~snapshot_every:4
              ~snapshot:(fun p -> snaps := p :: !snaps)
              ~sample_every:5 ~designs ~candidates:(List.to_seq candidates) ()
          in
          (s, List.rev !snaps)
        in
        let seq = Pool.with_pool ~domains:1 observe in
        let par = Pool.with_pool ~domains:2 observe in
        check_true "same summary" (fst seq = fst par);
        check_true "same snapshots" (snd seq = snd par);
        check_true "snapshots carry a non-empty running front"
          (match snd seq with
          | p :: _ -> p.Explorer.p_front <> [] && p.Explorer.p_evaluated = 4
          | [] -> false));
    test "a raising candidate stream surfaces the producer exception" (fun () ->
        let candidates =
          Seq.append
            (List.to_seq (seeded_grid ~seeds:[ 7 ] ()))
            (fun () -> failwith "stream torn")
        in
        Array.iter
          (fun pool ->
            match
              Explorer.evaluate_seq ~pool ~designs:[ dc_design () ] ~candidates ()
            with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "expected the producer failure to surface")
          [| pools.(0); pools.(1) |]);
    test "evaluate_seq rejects empty designs" (fun () ->
        check_raises_invalid "no designs" (fun () ->
            ignore
              (Explorer.evaluate_seq ~pool:pools.(0) ~designs:[]
                 ~candidates:Seq.empty ())));
  ]

let suites =
  [
    ("explore.pool", pool_tests);
    ("explore.stream", stream_tests);
    ("explore.cache", cache_tests);
    ("explore.cache_persist", persist_tests);
    ("explore.key", key_tests);
    ("explore.pareto", pareto_tests);
    ("explore.front", front_tests);
    ("explore.grid", grid_tests);
    ("explore.engine", engine_tests);
    ("explore.engine_seq", engine_seq_tests);
  ]
