open Helpers
module Json = Serve.Json
module P = Serve.Protocol

(* one worker pool for every service in this file: spawning domains
   per test would dominate the suite's runtime *)
let pool = lazy (Explore.Pool.create ~domains:2 ())

let sample =
  {|
(lifecycle
  (design (name serve_loop) (ts 0.05) (horizon 2)
          (cost iae y 0 1.0))
  (diagram
    (block (name plant) (type lti) (plant first-order 0.5 1) (x0 0))
    (block (name reference) (type const) (value 1))
    (block (name sample_y) (type sample-hold) (width 1))
    (block (name pid) (type pid) (kp 4) (ki 8) (kd 0) (ts 0.05))
    (block (name hold_u) (type sample-hold) (width 1))
    (link plant 0 sample_y 0)
    (link reference 0 pid 0)
    (link sample_y 0 pid 1)
    (link pid 0 hold_u 0)
    (link hold_u 0 plant 0)
    (members reference sample_y pid hold_u)
    (clocked sample_y pid hold_u)
    (probe y plant 0))
  (architecture (name solo) (operator P0))
  (durations
    (wcet reference P0 0.001)
    (wcet sample_y P0 0.004)
    (wcet pid P0 0.012)
    (wcet hold_u P0 0.004)))
|}

(* ------------------------------------------------------------------ *)
(* json: the hand-rolled codec behind the wire protocol *)

let parse_ok s =
  match Json.parse s with Ok v -> v | Error msg -> Alcotest.failf "parse %S: %s" s msg

let parse_err s =
  match Json.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "parse %S: expected an error" s

let json_tests =
  [
    test "values round-trip through print and parse" (fun () ->
        let v =
          Json.Obj
            [
              ("s", Json.Str "line\nbreak \"quoted\" \\ tab\t");
              ("n", Json.Num 42.);
              ("f", Json.Num 0.1);
              ("neg", Json.Num (-3.5));
              ("big", Json.Num 9.007199254740991e15);
              ("t", Json.Bool true);
              ("nil", Json.Null);
              ("a", Json.Arr [ Json.Num 1.; Json.Str ""; Json.Obj [] ]);
            ]
        in
        Alcotest.(check bool) "round-trip" true (parse_ok (Json.to_string v) = v));
    test "printed JSON never contains a raw newline" (fun () ->
        let v = Json.Obj [ ("k", Json.Str "a\nb\r\nc\x00d") ] in
        check_false "no newline" (contains (Json.to_string v) "\n"));
    test "integral numbers print without a decimal point" (fun () ->
        Alcotest.(check string) "int" "42" (Json.to_string (Json.Num 42.));
        Alcotest.(check string) "neg" "-7" (Json.to_string (Json.Num (-7.))));
    test "non-finite numbers print as null" (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Num nan));
        Alcotest.(check string) "inf" "null" (Json.to_string (Json.Num infinity)));
    test "unicode escapes decode to UTF-8" (fun () ->
        match parse_ok {|"Aé"|} with
        | Json.Str s -> Alcotest.(check string) "decoded" "A\xc3\xa9" s
        | _ -> Alcotest.fail "expected a string");
    test "malformed documents are rejected with a located error" (fun () ->
        List.iter parse_err
          [ "{"; "[1,2"; "tru"; "1 x"; "{\"a\":}"; "\"ctrl\n\""; "{'a':1}"; "" ];
        match Json.parse "[1, ]" with
        | Error msg -> check_true "byte offset" (contains msg "byte")
        | Ok _ -> Alcotest.fail "expected an error");
    test "nesting beyond the depth bound is rejected" (fun () ->
        let deep = String.make 200 '[' ^ String.make 200 ']' in
        parse_err deep);
    test "to_int accepts only integral numbers" (fun () ->
        check_true "integral" (Json.to_int (Json.Num 3.) = Some 3);
        check_true "fractional" (Json.to_int (Json.Num 3.5) = None);
        check_true "string" (Json.to_int (Json.Str "3") = None));
  ]

(* ------------------------------------------------------------------ *)
(* protocol: request parsing and response shapes *)

let req_ok line =
  match P.request_of_line line with
  | Ok r -> r
  | Error (_, msg) -> Alcotest.failf "request %S: %s" line msg

let req_err line =
  match P.request_of_line line with
  | Error (code, _) -> code
  | Ok _ -> Alcotest.failf "request %S: expected an error" line

let protocol_tests =
  [
    test "evaluate with inline source parses" (fun () ->
        match req_ok {|{"kind":"evaluate","id":7,"source":"(x)","montecarlo":5}|} with
        | P.Evaluate { id; submission = P.Inline "(x)"; opts } ->
            check_true "id" (id = Some (Json.Num 7.));
            check_true "runs" (opts.P.montecarlo = Some 5);
            check_true "seed default" (opts.P.base_seed = None)
        | _ -> Alcotest.fail "expected Evaluate");
    test "evaluate with a path parses" (fun () ->
        match req_ok {|{"kind":"evaluate","path":"f.lcs","robustness":false}|} with
        | P.Evaluate { submission = P.Path "f.lcs"; opts; _ } ->
            check_true "robustness" (opts.P.robustness = Some false)
        | _ -> Alcotest.fail "expected Evaluate");
    test "stats, ping and shutdown parse" (fun () ->
        check_true "stats" (match req_ok {|{"kind":"stats"}|} with P.Stats _ -> true | _ -> false);
        check_true "ping" (match req_ok {|{"kind":"ping"}|} with P.Ping _ -> true | _ -> false);
        check_true "shutdown"
          (match req_ok {|{"kind":"shutdown"}|} with P.Shutdown _ -> true | _ -> false));
    test "montecarlo with inline source parses" (fun () ->
        match req_ok {|{"kind":"montecarlo","id":3,"source":"(x)","runs":8,"seed":100}|} with
        | P.Montecarlo { id; submission = P.Inline "(x)"; runs; base_seed } ->
            check_true "id" (id = Some (Json.Num 3.));
            check_true "runs" (runs = Some 8);
            check_true "seed" (base_seed = Some 100)
        | _ -> Alcotest.fail "expected Montecarlo");
    test "montecarlo defaults runs and seed to the service's" (fun () ->
        match req_ok {|{"kind":"montecarlo","path":"f.lcs"}|} with
        | P.Montecarlo { submission = P.Path "f.lcs"; runs = None; base_seed = None; _ } ->
            ()
        | _ -> Alcotest.fail "expected Montecarlo with defaults");
    test "montecarlo violations are typed" (fun () ->
        check_true "no submission" (req_err {|{"kind":"montecarlo"}|} = P.Protocol);
        check_true "both submissions"
          (req_err {|{"kind":"montecarlo","source":"a","path":"b"}|} = P.Protocol);
        check_true "negative runs"
          (req_err {|{"kind":"montecarlo","source":"a","runs":-1}|} = P.Protocol);
        check_true "ill-typed seed"
          (req_err {|{"kind":"montecarlo","source":"a","seed":"x"}|} = P.Protocol));
    test "protocol violations are typed" (fun () ->
        check_true "not json" (req_err "nope" = P.Parse);
        check_true "no kind" (req_err "{}" = P.Protocol);
        check_true "unknown kind" (req_err {|{"kind":"frobnicate"}|} = P.Protocol);
        check_true "no submission" (req_err {|{"kind":"evaluate"}|} = P.Protocol);
        check_true "both submissions"
          (req_err {|{"kind":"evaluate","source":"a","path":"b"}|} = P.Protocol);
        check_true "negative runs"
          (req_err {|{"kind":"evaluate","source":"a","montecarlo":-1}|} = P.Protocol);
        check_true "ill-typed field"
          (req_err {|{"kind":"evaluate","source":"a","seed":"x"}|} = P.Protocol));
    test "unknown fields are ignored" (fun () ->
        match req_ok {|{"kind":"ping","extra":[1,2,3]}|} with
        | P.Ping _ -> ()
        | _ -> Alcotest.fail "expected Ping");
    test "responses carry id, ok and a code" (fun () ->
        let e = P.error_response ~id:(Json.Num 3.) ~code:P.Oversized "too big" in
        check_true "id" (Json.member "id" e = Some (Json.Num 3.));
        check_true "not ok" (Json.member "ok" e = Some (Json.Bool false));
        (match Json.member "error" e with
        | Some err ->
            check_true "code" (Json.member "code" err = Some (Json.Str "oversized"))
        | None -> Alcotest.fail "no error object");
        let o = P.ok_response ~kind:"pong" [] in
        check_true "ok" (Json.member "ok" o = Some (Json.Bool true));
        check_true "kind" (Json.member "kind" o = Some (Json.Str "pong")));
  ]

(* ------------------------------------------------------------------ *)
(* batch: shared-engine scenarios are bit-for-bit the rebuilt ones *)

let batch_design =
  Lifecycle.Design.pid_loop ~name:"serve_batch_dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
    ~ts:0.05 ~reference:1. ~horizon:0.5 ()

let batch_impl =
  let d = Aaa.Durations.create () in
  List.iter
    (fun (op, share) -> Aaa.Durations.set d ~op ~operator:"P0" (share *. 0.6 *. 0.05))
    [ ("reference", 0.05); ("sample_y", 0.2); ("pid", 0.6); ("hold_u", 0.15) ];
  Lifecycle.Methodology.implement ~design:batch_design
    ~architecture:(Aaa.Architecture.single ()) ~durations:d ()

let batch_tests =
  [
    test "montecarlo equals Lifecycle.Montecarlo.run bit for bit" (fun () ->
        let shared =
          Serve.Batch.montecarlo ~runs:6 ~base_seed:500 ~pool:(Lazy.force pool)
            ~design:batch_design ~implementation:batch_impl ()
        in
        let rebuilt =
          Lifecycle.Montecarlo.run ~runs:6 ~base_seed:500 ~pool:(Lazy.force pool)
            ~design:batch_design ~implementation:batch_impl ()
        in
        check_true "costs" (shared.Lifecycle.Montecarlo.costs = rebuilt.Lifecycle.Montecarlo.costs);
        check_true "seeds" (shared.Lifecycle.Montecarlo.seeds = rebuilt.Lifecycle.Montecarlo.seeds);
        check_true "static" (shared.Lifecycle.Montecarlo.static_cost = rebuilt.Lifecycle.Montecarlo.static_cost);
        check_true "mean" (shared.Lifecycle.Montecarlo.mean = rebuilt.Lifecycle.Montecarlo.mean));
    test "one engine serves any seed order, repeatably" (fun () ->
        let b = Serve.Batch.create ~design:batch_design ~implementation:batch_impl () in
        let c7 = Serve.Batch.cost b ~seed:7 in
        let c9 = Serve.Batch.cost b ~seed:9 in
        check_true "distinct seeds differ" (c7 <> c9);
        check_float "seed 7 again" c7 (Serve.Batch.cost b ~seed:7);
        check_float "seed 9 again" c9 (Serve.Batch.cost b ~seed:9));
    test "costs is order-preserving and chunk-independent" (fun () ->
        let seeds = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
        let parallel =
          Serve.Batch.costs ~pool:(Lazy.force pool) ~design:batch_design
            ~implementation:batch_impl seeds
        in
        let b = Serve.Batch.create ~design:batch_design ~implementation:batch_impl () in
        let sequential = List.map (fun seed -> Serve.Batch.cost b ~seed) seeds in
        check_true "equal" (parallel = sequential));
    test "montecarlo rejects non-positive run counts" (fun () ->
        check_raises_invalid "runs" (fun () ->
            Serve.Batch.montecarlo ~runs:0 ~design:batch_design
              ~implementation:batch_impl ()));
  ]

(* ------------------------------------------------------------------ *)
(* service: the evaluation pipeline behind one request *)

let test_config =
  {
    Serve.Service.default_config with
    Serve.Service.montecarlo_runs = 4;
    robustness = false;
  }

let service ?(config = test_config) () =
  Serve.Service.create ~pool:(Lazy.force pool) config

let evaluate_req ?(extra = []) source =
  P.request_of_line
    (Json.to_string
       (Json.Obj
          ([ ("kind", Json.Str "evaluate"); ("source", Json.Str source) ] @ extra)))

let expect_report resp =
  check_true "ok" (Json.member "ok" resp = Some (Json.Bool true));
  match Json.member "report" resp with
  | Some r -> r
  | None -> Alcotest.fail "no report"

let expect_error code resp =
  check_true "not ok" (Json.member "ok" resp = Some (Json.Bool false));
  match Json.member "error" resp with
  | Some err ->
      check_true "code"
        (Json.member "code" err = Some (Json.Str (P.error_code_to_string code)))
  | None -> Alcotest.fail "no error object"

let service_tests =
  [
    test "an evaluation reports costs, lint and schedule" (fun () ->
        let s = service () in
        let resp = Serve.Service.respond s (evaluate_req sample) in
        check_true "not cached" (Json.member "cached" resp = Some (Json.Bool false));
        let report = expect_report resp in
        check_true "design" (Json.member "design" report = Some (Json.Str "serve_loop"));
        check_true "ideal cost"
          (match Json.member "ideal_cost" report with
           | Some (Json.Num c) -> c > 0.
           | _ -> false);
        (match Json.member "montecarlo" report with
        | Some mc -> check_true "runs" (Json.member "runs" mc = Some (Json.Num 4.))
        | None -> Alcotest.fail "no montecarlo");
        (match Json.member "schedule" report with
        | Some sched -> check_true "fits" (Json.member "fits_period" sched <> None)
        | None -> Alcotest.fail "no schedule");
        Serve.Service.close s);
    test "a repeated submission is a cache hit with the same report" (fun () ->
        let s = service () in
        let first = Serve.Service.respond s (evaluate_req sample) in
        let second = Serve.Service.respond s (evaluate_req sample) in
        check_true "hit" (Json.member "cached" second = Some (Json.Bool true));
        check_true "same report"
          (Json.member "report" first = Json.member "report" second);
        (match Serve.Service.stats_json s |> Json.member "cache" with
        | Some cache -> check_true "one hit" (Json.member "hits" cache = Some (Json.Num 1.))
        | None -> Alcotest.fail "no cache stats");
        Serve.Service.close s);
    test "changed evaluation knobs miss the cache" (fun () ->
        let s = service () in
        ignore (Serve.Service.respond s (evaluate_req sample));
        let resp =
          Serve.Service.respond s
            (evaluate_req ~extra:[ ("seed", Json.Num 2024.) ] sample)
        in
        check_true "different key" (Json.member "cached" resp = Some (Json.Bool false));
        Serve.Service.close s);
    test "a malformed submission is a structured error, not a crash" (fun () ->
        let s = service () in
        expect_error P.Submission (Serve.Service.respond s (evaluate_req "(lifecycle"));
        (* the service keeps serving afterwards *)
        ignore (expect_report (Serve.Service.respond s (evaluate_req sample)));
        Serve.Service.close s);
    test "a missing submission file is a submission error" (fun () ->
        let s = service () in
        expect_error P.Submission
          (Serve.Service.respond s
             (P.request_of_line {|{"kind":"evaluate","path":"/nonexistent/x.lcs"}|}));
        Serve.Service.close s);
    test "oversized submissions are rejected by size, not parsed" (fun () ->
        let s =
          service
            ~config:{ test_config with Serve.Service.max_submission_bytes = 64 }
            ()
        in
        expect_error P.Oversized
          (Serve.Service.respond s (evaluate_req (String.make 100 'x')));
        Serve.Service.close s);
    test "a montecarlo request returns the raw batch" (fun () ->
        let s = service () in
        let req =
          P.request_of_line
            (Json.to_string
               (Json.Obj
                  [
                    ("kind", Json.Str "montecarlo");
                    ("source", Json.Str sample);
                    ("runs", Json.Num 5.);
                    ("seed", Json.Num 40.);
                  ]))
        in
        let resp = Serve.Service.respond s req in
        check_true "ok" (Json.member "ok" resp = Some (Json.Bool true));
        check_true "kind" (Json.member "kind" resp = Some (Json.Str "costs"));
        check_true "fresh" (Json.member "cached" resp = Some (Json.Bool false));
        (match Json.member "batch" resp with
        | Some batch ->
            check_true "design" (Json.member "design" batch = Some (Json.Str "serve_loop"));
            check_true "runs" (Json.member "runs" batch = Some (Json.Num 5.));
            (match Json.member "costs" batch with
            | Some (Json.Arr costs) ->
                check_int "one cost per run" 5 (List.length costs);
                check_true "all positive"
                  (List.for_all
                     (function Json.Num c -> c > 0. | _ -> false)
                     costs)
            | _ -> Alcotest.fail "no costs array");
            (match Json.member "seeds" batch with
            | Some (Json.Arr seeds) ->
                check_true "consecutive from the base seed"
                  (seeds = List.init 5 (fun k -> Json.Num (float_of_int (40 + k))))
            | _ -> Alcotest.fail "no seeds array")
        | None -> Alcotest.fail "no batch payload");
        (* a repeat is a cache hit with the identical payload *)
        let second = Serve.Service.respond s req in
        check_true "cached" (Json.member "cached" second = Some (Json.Bool true));
        check_true "same batch" (Json.member "batch" resp = Json.member "batch" second);
        Serve.Service.close s);
    test "a malformed montecarlo submission is a structured error" (fun () ->
        let s = service () in
        expect_error P.Submission
          (Serve.Service.respond s
             (P.request_of_line {|{"kind":"montecarlo","source":"(lifecycle"}|}));
        Serve.Service.close s);
    test "robustness scenarios appear when enabled" (fun () ->
        let s =
          service
            ~config:
              {
                test_config with
                Serve.Service.robustness = true;
                robustness_iterations = 5;
                montecarlo_runs = 0;
              }
            ()
        in
        let report = expect_report (Serve.Service.respond s (evaluate_req sample)) in
        (match Json.member "robustness" report with
        | Some rob ->
            check_true "per-operator scenarios"
              (match Json.member "scenarios" rob with
               | Some (Json.Arr (_ :: _)) -> true
               | _ -> false)
        | None -> Alcotest.fail "no robustness");
        check_true "montecarlo off" (Json.member "montecarlo" report = Some Json.Null);
        Serve.Service.close s);
  ]

(* ------------------------------------------------------------------ *)
(* server: the wire loop, driven synchronously through file fds *)

let with_temp f =
  let path = Filename.temp_file "scilife_serve" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* writes [input] to a file, serves it, returns the outcome and the
   response lines — exactly how a session over a pipe unfolds, minus
   the concurrency *)
let run_session ?(config = test_config) input =
  with_temp (fun in_path ->
      with_temp (fun out_path ->
          Out_channel.with_open_bin in_path (fun oc -> Out_channel.output_string oc input);
          let fd_in = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
          let fd_out = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
          let s = service ~config () in
          let outcome =
            Fun.protect
              ~finally:(fun () ->
                Unix.close fd_in;
                Unix.close fd_out;
                Serve.Service.close s)
              (fun () -> Serve.Server.serve ~service:s ~input:fd_in ~output:fd_out)
          in
          let out = In_channel.with_open_bin out_path In_channel.input_all in
          let lines =
            List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
          in
          (outcome, List.map parse_ok lines)))

let line json = Json.to_string json ^ "\n"

let evaluate_line ?(fields = []) source =
  line (Json.Obj ([ ("kind", Json.Str "evaluate"); ("source", Json.Str source) ] @ fields))

let server_tests =
  [
    test "ping then shutdown ends the session with a bye" (fun () ->
        let outcome, responses =
          run_session {|{"kind":"ping","id":1}
{"kind":"shutdown","id":2}
|}
        in
        check_true "shutdown" (outcome = `Shutdown);
        match responses with
        | [ pong; bye ] ->
            check_true "pong" (Json.member "kind" pong = Some (Json.Str "pong"));
            check_true "bye" (Json.member "kind" bye = Some (Json.Str "bye"));
            check_true "served" (Json.member "served" bye = Some (Json.Num 2.))
        | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length responses));
    test "malformed JSON gets an error and the server keeps serving" (fun () ->
        let outcome, responses = run_session "{not json}\n{\"kind\":\"ping\"}\n" in
        check_true "eof" (outcome = `Eof);
        match responses with
        | [ err; pong ] ->
            expect_error P.Parse err;
            check_true "pong" (Json.member "kind" pong = Some (Json.Str "pong"))
        | _ -> Alcotest.fail "expected 2 responses");
    test "an unknown request kind is a protocol error" (fun () ->
        let _, responses = run_session "{\"kind\":\"frobnicate\"}\n{\"kind\":\"ping\"}\n" in
        match responses with
        | [ err; _pong ] -> expect_error P.Protocol err
        | _ -> Alcotest.fail "expected 2 responses");
    test "an oversized request line is discarded, not buffered" (fun () ->
        (* the line cap is 2x the submission limit + 64 KiB of slack:
           only a line beyond ~66 KiB trips the reader itself *)
        let config = { test_config with Serve.Service.max_submission_bytes = 16 } in
        let big = evaluate_line (String.make 100_000 'x') in
        let outcome, responses = run_session ~config (big ^ "{\"kind\":\"ping\"}\n") in
        check_true "eof" (outcome = `Eof);
        match responses with
        | [ err; pong ] ->
            expect_error P.Oversized err;
            check_true "pong" (Json.member "kind" pong = Some (Json.Str "pong"))
        | _ -> Alcotest.fail "expected 2 responses");
    test "a submission over the service limit is an oversized error" (fun () ->
        let config = { test_config with Serve.Service.max_submission_bytes = 64 } in
        let _, responses = run_session ~config (evaluate_line (String.make 100 'y')) in
        match responses with
        | [ err ] -> expect_error P.Oversized err
        | _ -> Alcotest.fail "expected 1 response");
    test "input ending mid-request is answered then disconnects" (fun () ->
        let outcome, responses =
          run_session "{\"kind\":\"ping\"}\n{\"kind\":\"st"
        in
        check_true "disconnect" (outcome = `Disconnect);
        match responses with
        | [ pong; err ] ->
            check_true "pong" (Json.member "kind" pong = Some (Json.Str "pong"));
            expect_error P.Parse err
        | _ -> Alcotest.fail "expected 2 responses");
    test "a full evaluation flows over the wire, then hits the cache" (fun () ->
        let input = evaluate_line ~fields:[ ("id", Json.Num 1.) ] sample
                    ^ evaluate_line ~fields:[ ("id", Json.Num 2.) ] sample in
        let _, responses = run_session input in
        match responses with
        | [ first; second ] ->
            check_true "first is fresh"
              (Json.member "cached" first = Some (Json.Bool false));
            check_true "second is cached"
              (Json.member "cached" second = Some (Json.Bool true));
            check_true "ids in order"
              (Json.member "id" first = Some (Json.Num 1.)
              && Json.member "id" second = Some (Json.Num 2.))
        | _ -> Alcotest.fail "expected 2 responses");
    test "responses stay ordered past the pending-queue bound" (fun () ->
        let config = { test_config with Serve.Service.max_pending = 2 } in
        let input =
          String.concat ""
            (List.init 7 (fun i ->
                 line (Json.Obj [ ("kind", Json.Str "ping"); ("id", Json.Num (float_of_int i)) ])))
        in
        let _, responses = run_session ~config input in
        check_int "all answered" 7 (List.length responses);
        List.iteri
          (fun i resp ->
            check_true "in order"
              (Json.member "id" resp = Some (Json.Num (float_of_int i))))
          responses);
    test "blank lines between requests are skipped" (fun () ->
        let _, responses = run_session "\n\n{\"kind\":\"ping\"}\n\n" in
        check_int "one response" 1 (List.length responses));
    test "stats over the wire has the full shape" (fun () ->
        let _, responses = run_session "{\"kind\":\"stats\"}\n" in
        match responses with
        | [ resp ] -> (
            match Json.member "stats" resp with
            | Some stats ->
                List.iter
                  (fun field -> check_true field (Json.member field stats <> None))
                  [ "requests"; "evaluations"; "errors"; "cache"; "scenarios"; "uptime_s" ]
            | None -> Alcotest.fail "no stats payload")
        | _ -> Alcotest.fail "expected 1 response");
  ]

let suites =
  [
    ("serve.json", json_tests);
    ("serve.protocol", protocol_tests);
    ("serve.batch", batch_tests);
    ("serve.service", service_tests);
    ("serve.server", server_tests);
  ]
